"""Mergeable client-measured telemetry digests (the fleet plane's data model).

Every observability layer so far measures at the *host*: staleness is
inferred from poll arrival times, which diverges from what a participant
actually experiences once relays re-serve content and held transports
park polls.  This module is the participant side of the fix — a compact,
**mergeable** digest each snippet accumulates locally and piggybacks
upstream inside its existing poll body:

* :class:`LogBucketSketch` — a bounded-size log2-bucketed histogram over
  non-negative integer samples.  At most ~65 sparse buckets regardless
  of sample count; merge is per-bucket addition (associative and
  commutative), so relay tiers can fold their whole subtree into one
  sketch without losing the fleet percentiles.
* :class:`MemberDelta` — one member's counters (polls, applies, resyncs,
  connection errors, bytes seen, per-transport-mode poll counts) plus an
  apply-latency sketch (µs, wall clock) and an end-to-end staleness
  sketch (ms, sim ``now − envelope doc_time`` at apply time).
* :class:`TelemetryDigest` — a set of member deltas with a JSON wire
  encoding and **fold-under-cap**: when the compact encoding exceeds the
  byte cap, per-member records collapse into one aggregate record
  (member id ``*``) that still conserves every counter exactly — the
  blob stays bounded per tier, identity degrades honestly (the fold is
  counted, never silent).
* :class:`ClientTelemetry` — the per-member reporter: accumulates into a
  *pending* digest, snapshots it into an in-flight slot when a poll
  carries it, commits on a 200 and rolls back into pending on any
  failure.  Delta temporality with exactly-once transfer per hop, which
  is what makes ``host totals == Σ member locals`` a testable identity.

Strictly opt-in: nothing here touches the wire unless a reporter is
attached, and an attached reporter with nothing pending adds no bytes.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "FOLDED_ID",
    "ClientTelemetry",
    "LogBucketSketch",
    "MemberDelta",
    "TelemetryDigest",
    "encoded_bytes",
]

#: Digest wire-format version.
DIGEST_VERSION = 1

#: Member id of a fold-under-cap aggregate record.
FOLDED_ID = "*"


def encoded_bytes(blob) -> int:
    """The compact-JSON size of a digest blob — the byte-cap currency
    (the poll body itself may add framing; the cap governs the digest).
    Key order does not change the byte count, so no canonical sort is
    paid on this hot path."""
    return len(json.dumps(blob, separators=(",", ":")))


class LogBucketSketch:
    """Bounded log2-bucketed histogram over non-negative int samples.

    Bucket 0 holds the value 0; bucket ``b`` (>=1) holds values in
    ``[2**(b-1), 2**b)``, so a 64-bit value range needs at most 65
    buckets — the size bound that keeps digests cheap to ship and merge.
    Count, sum, min and max are tracked exactly; percentiles are
    nearest-rank over the buckets with a geometric-midpoint estimate,
    clamped into the exact ``[min, max]`` envelope.
    """

    __slots__ = ("buckets", "count", "total", "min_value", "max_value")

    def __init__(self):
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min_value: Optional[int] = None
        self.max_value: Optional[int] = None

    def record(self, value) -> None:
        """Add one sample (negative values clamp to 0)."""
        v = int(value)
        if v < 0:
            v = 0
        bucket = v.bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += v
        if self.min_value is None or v < self.min_value:
            self.min_value = v
        if self.max_value is None or v > self.max_value:
            self.max_value = v

    def merge(self, other: "LogBucketSketch") -> "LogBucketSketch":
        """Fold ``other`` in (per-bucket addition; order-independent)."""
        for bucket, count in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + count
        self.count += other.count
        self.total += other.total
        if other.min_value is not None and (
            self.min_value is None or other.min_value < self.min_value
        ):
            self.min_value = other.min_value
        if other.max_value is not None and (
            self.max_value is None or other.max_value > self.max_value
        ):
            self.max_value = other.max_value
        return self

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile estimate (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(-(-q * self.count // 100)))  # ceil without floats
        rank = min(rank, self.count)
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= rank:
                estimate = 0.0 if bucket == 0 else 2.0 ** (bucket - 0.5)
                if self.min_value is not None:
                    estimate = max(estimate, float(self.min_value))
                if self.max_value is not None:
                    estimate = min(estimate, float(self.max_value))
                return estimate
        return float(self.max_value or 0)  # pragma: no cover - unreachable

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self, include_buckets: bool = True) -> Optional[Dict[str, object]]:
        """The wire record, or None when empty.  ``include_buckets=False``
        is the deepest fold level: exact count/sum/min/max survive, the
        distribution does not."""
        if self.count == 0:
            return None
        record: Dict[str, object] = {
            "n": self.count,
            "s": self.total,
            "lo": self.min_value,
            "hi": self.max_value,
        }
        if include_buckets:
            record["b"] = [[b, self.buckets[b]] for b in sorted(self.buckets)]
        return record

    @classmethod
    def from_dict(cls, record) -> "LogBucketSketch":
        sketch = cls()
        if not isinstance(record, dict):
            return sketch
        sketch.count = int(record.get("n", 0))
        sketch.total = int(record.get("s", 0))
        lo, hi = record.get("lo"), record.get("hi")
        sketch.min_value = int(lo) if lo is not None else None
        sketch.max_value = int(hi) if hi is not None else None
        for pair in record.get("b") or []:
            bucket, count = int(pair[0]), int(pair[1])
            sketch.buckets[bucket] = sketch.buckets.get(bucket, 0) + count
        return sketch

    def copy(self) -> "LogBucketSketch":
        clone = LogBucketSketch()
        clone.buckets = dict(self.buckets)
        clone.count = self.count
        clone.total = self.total
        clone.min_value = self.min_value
        clone.max_value = self.max_value
        return clone

    def __eq__(self, other):
        if not isinstance(other, LogBucketSketch):
            return NotImplemented
        return (
            self.buckets == other.buckets
            and self.count == other.count
            and self.total == other.total
            and self.min_value == other.min_value
            and self.max_value == other.max_value
        )

    def __repr__(self):
        return "LogBucketSketch(n=%d, sum=%d, %d buckets)" % (
            self.count,
            self.total,
            len(self.buckets),
        )


class MemberDelta:
    """One member's accumulated telemetry (or a folded aggregate).

    ``weight`` counts the member-records this delta represents: 1 for a
    live member's own delta, the collapsed-record count for a
    fold-under-cap aggregate.  Counters are plain sums, so merging is
    associative — the property every conservation test leans on.
    """

    COUNTERS = (
        "polls",
        "content_updates",
        "delta_updates",
        "resyncs",
        "connection_errors",
        "bytes_seen",
    )

    __slots__ = ("member_id", "weight", "counters", "mode_polls", "apply", "staleness")

    def __init__(self, member_id: str, weight: int = 1):
        self.member_id = member_id
        self.weight = weight
        self.counters: Dict[str, int] = {key: 0 for key in self.COUNTERS}
        #: Poll counts per transport mode in effect at send time.
        self.mode_polls: Dict[str, int] = {}
        #: Wall-clock apply latency, microseconds.
        self.apply = LogBucketSketch()
        #: End-to-end staleness at apply time, milliseconds.
        self.staleness = LogBucketSketch()

    def bump(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    def merge_from(self, other: "MemberDelta") -> "MemberDelta":
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value
        for mode, count in other.mode_polls.items():
            self.mode_polls[mode] = self.mode_polls.get(mode, 0) + count
        self.apply.merge(other.apply)
        self.staleness.merge(other.staleness)
        self.weight += other.weight
        return self

    @property
    def is_empty(self) -> bool:
        return (
            not any(self.counters.values())
            and self.apply.count == 0
            and self.staleness.count == 0
        )

    def to_dict(self, include_buckets: bool = True) -> Dict[str, object]:
        record: Dict[str, object] = {"id": self.member_id}
        if self.weight != 1:
            record["w"] = self.weight
        counters = {k: v for k, v in self.counters.items() if v}
        if counters:
            record["c"] = counters
        if self.mode_polls:
            record["m"] = dict(self.mode_polls)
        apply_record = self.apply.to_dict(include_buckets)
        if apply_record is not None:
            record["a"] = apply_record
        staleness_record = self.staleness.to_dict(include_buckets)
        if staleness_record is not None:
            record["s"] = staleness_record
        return record

    @classmethod
    def from_dict(cls, record) -> "MemberDelta":
        if not isinstance(record, dict) or "id" not in record:
            raise ValueError("malformed member delta record")
        delta = cls(str(record["id"]), weight=int(record.get("w", 1)))
        for key, value in (record.get("c") or {}).items():
            delta.counters[str(key)] = int(value)
        for mode, count in (record.get("m") or {}).items():
            delta.mode_polls[str(mode)] = int(count)
        if "a" in record:
            delta.apply = LogBucketSketch.from_dict(record["a"])
        if "s" in record:
            delta.staleness = LogBucketSketch.from_dict(record["s"])
        return delta

    def copy(self) -> "MemberDelta":
        clone = MemberDelta(self.member_id, weight=self.weight)
        clone.counters = dict(self.counters)
        clone.mode_polls = dict(self.mode_polls)
        clone.apply = self.apply.copy()
        clone.staleness = self.staleness.copy()
        return clone

    def __repr__(self):
        return "MemberDelta(%s, polls=%d, applies=%d)" % (
            self.member_id,
            self.counters.get("polls", 0),
            self.counters.get("content_updates", 0),
        )


class TelemetryDigest:
    """A mergeable set of member deltas with a bounded wire encoding."""

    __slots__ = ("members",)

    def __init__(self):
        self.members: Dict[str, MemberDelta] = {}

    @property
    def is_empty(self) -> bool:
        return all(delta.is_empty for delta in self.members.values())

    def member(self, member_id: str) -> MemberDelta:
        """The (created-on-demand) delta for one member id."""
        delta = self.members.get(member_id)
        if delta is None:
            delta = self.members[member_id] = MemberDelta(member_id)
        return delta

    def merge_member(self, delta: MemberDelta) -> None:
        mine = self.members.get(delta.member_id)
        if mine is None:
            self.members[delta.member_id] = delta.copy()
        else:
            mine.merge_from(delta)

    def merge(self, other: "TelemetryDigest") -> "TelemetryDigest":
        for delta in other.members.values():
            self.merge_member(delta)
        return self

    def totals(self) -> MemberDelta:
        """Everything folded into one aggregate (counters conserve)."""
        aggregate = MemberDelta(FOLDED_ID, weight=0)
        for delta in self.members.values():
            aggregate.merge_from(delta)
        return aggregate

    def fold(self) -> "TelemetryDigest":
        """Collapse every member record into one ``*`` aggregate."""
        folded = TelemetryDigest()
        if self.members:
            folded.members[FOLDED_ID] = self.totals()
        return folded

    def copy(self) -> "TelemetryDigest":
        clone = TelemetryDigest()
        for member_id, delta in self.members.items():
            clone.members[member_id] = delta.copy()
        return clone

    def encode(self, byte_cap: Optional[int] = None) -> Dict[str, object]:
        """The JSON-ready blob, folded as needed to honour ``byte_cap``.

        Fold levels, tried in order until the compact encoding fits:
        per-member records; one ``*`` aggregate (counters and sketches
        conserve exactly, identity folds — the record's ``w`` counts the
        collapsed members); the aggregate with bucket lists dropped
        (count/sum/min/max survive, the distribution does not).
        """
        blob = self._encode(self.members.values(), include_buckets=True)
        if byte_cap is None or encoded_bytes(blob) <= byte_cap:
            return blob
        folded = self.fold()
        blob = folded._encode(folded.members.values(), include_buckets=True)
        if encoded_bytes(blob) <= byte_cap:
            return blob
        return folded._encode(folded.members.values(), include_buckets=False)

    @staticmethod
    def _encode(deltas: Iterable[MemberDelta], include_buckets: bool) -> Dict[str, object]:
        members = [
            delta.to_dict(include_buckets)
            for delta in sorted(deltas, key=lambda d: d.member_id)
            if not delta.is_empty
        ]
        return {"v": DIGEST_VERSION, "members": members}

    @classmethod
    def decode(cls, blob) -> "TelemetryDigest":
        """Parse a wire blob; raises ValueError on malformed input."""
        if not isinstance(blob, dict):
            raise ValueError("digest blob must be a dict")
        if blob.get("v") != DIGEST_VERSION:
            raise ValueError("unknown digest version %r" % (blob.get("v"),))
        digest = cls()
        records = blob.get("members")
        if not isinstance(records, list):
            raise ValueError("digest blob has no members list")
        for record in records:
            digest.merge_member(MemberDelta.from_dict(record))
        return digest

    def __repr__(self):
        return "TelemetryDigest(%d members)" % len(self.members)


class ClientTelemetry:
    """The participant-side reporter: accumulate, piggyback, conserve.

    Delta temporality with commit-on-response: records accumulate into
    ``pending``; :meth:`snapshot` moves pending into a token-keyed
    in-flight slot when a poll carries it; :meth:`commit` drops the slot
    on a 200, :meth:`rollback` re-merges it into pending on any failure.
    Several snapshots can be in flight at once (a dedicated action flush
    races a parked long poll), hence the token map rather than a single
    slot.  A relay's reporter doubles as its downstream *sink*: child
    digests arrive via :meth:`ingest` and ride the next upstream poll
    merged with the relay's own delta — one bounded blob per tier.

    ``local`` is the all-time ledger of this member's own records (never
    cleared, never shipped), giving tests the exact conservation
    identity ``host totals + Σ unreported() == Σ locals``.
    """

    def __init__(
        self, member_id: str, byte_cap: int = 2048, flush_interval: float = 2.0
    ):
        self.member_id = member_id
        #: Compact-encoding budget per piggybacked blob.
        self.byte_cap = byte_cap
        #: Minimum seconds between clock-gated flushes (see
        #: :meth:`snapshot`): recording stays cheap counter bumps, and
        #: the encode/decode cost amortizes over many polls.
        self.flush_interval = flush_interval
        self._last_flush: Optional[float] = None
        self.pending = TelemetryDigest()
        #: Own records already acked upstream; :attr:`local` derives the
        #: all-time ledger from this plus pending and in-flight, so the
        #: per-poll recording path bumps a single delta.
        self._shipped = MemberDelta(member_id)
        self._own_cache: Optional[MemberDelta] = None
        self._in_flight: Dict[int, TelemetryDigest] = {}
        self._next_token = 0
        #: Malformed child blobs dropped by :meth:`ingest`.
        self.ingest_errors = 0

    # -- recording (own signals) -------------------------------------------------------

    def _own(self) -> MemberDelta:
        # Cached across calls: snapshot/rollback invalidate; ingest only
        # ever merges *into* an existing own delta, never replaces it.
        own = self._own_cache
        if own is None:
            own = self._own_cache = self.pending.member(self.member_id)
        return own

    def record_poll(self, n_bytes: int, mode: str) -> None:
        """One poll round trip completed: response bytes seen, mode used."""
        own = self._own()
        counters = own.counters
        counters["polls"] += 1
        counters["bytes_seen"] += int(n_bytes)
        own.mode_polls[mode] = own.mode_polls.get(mode, 0) + 1

    def record_apply(
        self, staleness_ms, apply_seconds: float, delta: bool = False
    ) -> None:
        """A content envelope was applied: client-measured staleness at
        apply time (ms) and the in-place update's wall cost (seconds,
        stored as µs)."""
        own = self._own()
        counters = own.counters
        counters["content_updates"] += 1
        if delta:
            counters["delta_updates"] += 1
        own.staleness.record(staleness_ms)
        own.apply.record(int(apply_seconds * 1e6))

    def record_resync(self) -> None:
        """A delta apply failed and forced a full-envelope resync."""
        self._own().counters["resyncs"] += 1

    def record_connection_error(self) -> None:
        self._own().counters["connection_errors"] += 1

    @property
    def local(self) -> MemberDelta:
        """All-time ledger of this member's own records — acked plus
        in-flight plus pending (conservation ground truth, never
        shipped as such)."""
        ledger = self._shipped.copy()
        for digest in self._in_flight.values():
            own = digest.members.get(self.member_id)
            if own is not None:
                ledger.merge_from(own)
        own = self.pending.members.get(self.member_id)
        if own is not None:
            ledger.merge_from(own)
        ledger.weight = 1
        return ledger

    # -- subtree intake (relay sink) ---------------------------------------------------

    def ingest(self, blob, t=None) -> None:
        """Merge a downstream child's digest blob into pending (the
        relay-tier sink half of the duck-typed telemetry interface;
        malformed blobs are counted and dropped, never raised)."""
        try:
            digest = TelemetryDigest.decode(blob)
        except (TypeError, ValueError, KeyError):
            self.ingest_errors += 1
            return
        self.pending.merge(digest)

    # -- transfer (exactly-once per hop) -----------------------------------------------

    def snapshot(
        self, now: Optional[float] = None
    ) -> Optional[Tuple[int, Dict[str, object]]]:
        """``(token, blob)`` moving pending into an in-flight slot, or
        None when nothing is pending (the idle wire stays untouched).

        With a clock (``now``), flushes are throttled to one per
        :attr:`flush_interval` — between flushes the poll pays only this
        time check, keeping the telemetry plane's per-poll cost
        amortized.  The first call always flushes; callers without a
        clock (tests, manual drains) flush on every call.
        """
        if now is not None:
            # Clock gate first: a throttled poll pays one comparison,
            # not a digest scan.
            last = self._last_flush
            if last is not None and now - last < self.flush_interval:
                return None
        if self.pending.is_empty:
            return None
        if now is not None:
            self._last_flush = now
        self._next_token += 1
        token = self._next_token
        digest, self.pending = self.pending, TelemetryDigest()
        self._own_cache = None
        self._in_flight[token] = digest
        return token, digest.encode(self.byte_cap)

    def commit(self, token: int) -> None:
        """The poll carrying ``token``'s snapshot got its 200: fold the
        snapshot's own record into the acked ledger."""
        digest = self._in_flight.pop(token, None)
        if digest is not None:
            own = digest.members.get(self.member_id)
            if own is not None:
                self._shipped.merge_from(own)
                self._shipped.weight = 1

    def rollback(self, token: int) -> None:
        """The poll failed: fold the snapshot back into pending so the
        records ride the next attempt instead of vanishing."""
        digest = self._in_flight.pop(token, None)
        if digest is not None:
            self.pending.merge(digest)
            self._own_cache = None

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)

    def unreported(self) -> TelemetryDigest:
        """Everything recorded or ingested here but not yet committed
        upstream (pending plus every in-flight snapshot)."""
        merged = self.pending.copy()
        for digest in self._in_flight.values():
            merged.merge(digest)
        return merged

    def __repr__(self):
        return "ClientTelemetry(%s, pending=%d members, %d in flight)" % (
            self.member_id,
            len(self.pending.members),
            len(self._in_flight),
        )
