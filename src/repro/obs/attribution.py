"""Wire-byte cost attribution: who pays for every served byte.

The zero-copy serve pipeline (PR 6) ships each response as a list of
buffers; this module labels those bytes.  Every envelope decomposes
into **buckets**:

* ``head`` / ``body`` — the pre-encoded document segments of a full
  envelope (head children vs. top-level body children),
* ``delta`` — the JSON op list of a delta envelope,
* ``userActions`` — the per-member action splice,
* ``docCookies`` — the cookie mirror section,
* ``framing`` — everything else: the XML scaffolding around the
  payloads plus the HTTP status line and headers.

The payload buckets are computed where the bytes are *built* (the
template builders in :mod:`repro.core.xmlformat` and the per-member
splice in :mod:`repro.core.serveplan`); ``framing`` is the residual
computed where the bytes are *shipped* (``serve_connection``), so

    sum(buckets) == bytes actually written to the connection

holds exactly, by construction, for full, delta, long-poll, and push
envelopes alike.  The sink rolls buckets up per member, per relay
tier, and per document state, and keeps a trailing window of
per-member ship events so the SLO engine can grade uplink bytes/s —
the placement signal the ROADMAP's sharding work needs.

Like the tracer, attribution is strictly opt-in (``attribution=None``
everywhere); a disabled session builds no records and ships
byte-identical traffic.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

__all__ = [
    "PAYLOAD_BUCKETS",
    "ByteAttribution",
    "ResponseAttribution",
    "render_attribution_table",
]

#: Bucket names that hold *payload* bytes (everything an envelope
#: carries that is not scaffolding).  ``framing`` is always the
#: residual and never appears in a template's bucket dict.
PAYLOAD_BUCKETS = ("head", "body", "delta", "userActions", "docCookies")

FRAMING = "framing"


class ResponseAttribution:
    """The cost record of one served response.

    Created by the serving agent (which knows the member, the envelope
    kind, and the payload buckets) and finalized by the connection
    layer (which knows how many bytes actually shipped).  The framing
    residual is computed at finalize time, which is what makes the
    conservation invariant exact rather than estimated.
    """

    __slots__ = ("sink", "node", "member", "kind", "doc_time", "buckets", "shipped", "t")

    def __init__(
        self,
        sink: "ByteAttribution",
        node: str,
        member: str,
        kind: str,
        doc_time: int,
        buckets: Optional[Dict[str, int]] = None,
    ):
        self.sink = sink
        #: The serving node (host browser name or relay id).
        self.node = node
        #: The member the response was addressed to.
        self.member = member
        #: Envelope kind: ``full`` / ``delta`` / ``push`` / ``actions`` / ``empty``.
        self.kind = kind
        self.doc_time = doc_time
        self.buckets: Dict[str, int] = dict(buckets or {})
        #: Total bytes written to the connection (set at finalize).
        self.shipped = 0
        self.t = 0.0

    @property
    def payload_bytes(self) -> int:
        return sum(v for k, v in self.buckets.items() if k != FRAMING)

    def finalize(self, t: float, shipped: int) -> "ResponseAttribution":
        """Record the actual shipped size and close the books.

        ``shipped`` must cover the whole response on the wire (status
        line + headers + body buffers); the framing bucket absorbs the
        difference between that and the payload buckets.
        """
        self.t = t
        self.shipped = shipped
        framing = shipped - self.payload_bytes
        if framing:
            self.buckets[FRAMING] = self.buckets.get(FRAMING, 0) + framing
        self.sink.record(self)
        return self

    def __repr__(self):
        return "ResponseAttribution(%s->%s %s@%d: %dB)" % (
            self.node,
            self.member,
            self.kind,
            self.doc_time,
            self.shipped,
        )


def _merge(into: Dict[str, int], buckets: Dict[str, int]) -> None:
    for name, nbytes in buckets.items():
        into[name] = into.get(name, 0) + nbytes


class ByteAttribution:
    """The session-wide sink for :class:`ResponseAttribution` records.

    Shared across the host agent and every relay (like the registry
    and tracer), so a fleet's entire downlink cost lands in one place.
    ``tier_of`` maps a member id to its relay-tree depth (the session
    provides :meth:`~repro.core.session.CoBrowsingSession.member_tier`);
    members the resolver cannot place land in tier ``"?"``.
    """

    def __init__(
        self,
        tier_of: Optional[Callable[[str], Optional[int]]] = None,
        window: float = 30.0,
        max_events: int = 4096,
    ):
        self.tier_of = tier_of
        #: Trailing-window length (sim-seconds) for byte-rate queries.
        self.window = window
        self.responses = 0
        self.total_bytes = 0
        self.totals: Dict[str, int] = {}
        self.per_member: Dict[str, Dict[str, int]] = {}
        self.per_tier: Dict[str, Dict[str, int]] = {}
        self.per_doc_state: Dict[int, Dict[str, int]] = {}
        self.per_kind: Dict[str, int] = {}
        #: Recent ship events per member: ``(t, shipped)`` pairs.
        self._events: Dict[str, Deque[Tuple[float, int]]] = {}
        self._max_events = max_events

    def begin(
        self,
        node: str,
        member: str,
        kind: str,
        doc_time: int,
        buckets: Optional[Dict[str, int]] = None,
    ) -> ResponseAttribution:
        """Open the cost record for one response about to ship."""
        return ResponseAttribution(self, node, member, kind, doc_time, buckets)

    def record(self, record: ResponseAttribution) -> None:
        """Fold a finalized record into every rollup."""
        self.responses += 1
        self.total_bytes += record.shipped
        _merge(self.totals, record.buckets)
        member_row = self.per_member.setdefault(record.member, {})
        _merge(member_row, record.buckets)
        tier = "?"
        if self.tier_of is not None:
            depth = self.tier_of(record.member)
            if depth is not None:
                tier = "tier:%d" % depth
        _merge(self.per_tier.setdefault(tier, {}), record.buckets)
        _merge(self.per_doc_state.setdefault(record.doc_time, {}), record.buckets)
        self.per_kind[record.kind] = self.per_kind.get(record.kind, 0) + record.shipped
        ring = self._events.get(record.member)
        if ring is None:
            ring = self._events[record.member] = deque(maxlen=self._max_events)
        ring.append((record.t, record.shipped))

    # -- queries ------------------------------------------------------------------------

    def member_bytes(self, member: str) -> int:
        return sum(self.per_member.get(member, {}).values())

    def member_rates(self, now: float) -> Dict[str, float]:
        """Per-member downlink bytes/s over the trailing window ending
        at sim-time ``now`` (the SLO engine's uplink-budget feed)."""
        horizon = now - self.window
        out: Dict[str, float] = {}
        for member, ring in self._events.items():
            total = 0
            for t, shipped in reversed(ring):
                if t < horizon:
                    break
                total += shipped
            out[member] = total / self.window if self.window > 0 else 0.0
        return out

    def top_members(self, n: int = 5) -> List[Tuple[str, int]]:
        """Members ranked by total attributed bytes, costliest first.
        Ties break by member id so the ranking is deterministic."""
        ranked = sorted(
            ((member, sum(row.values())) for member, row in self.per_member.items()),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:n]

    def top_tiers(self) -> List[Tuple[str, int]]:
        """Tiers ranked by total attributed bytes, costliest first."""
        return sorted(
            ((tier, sum(row.values())) for tier, row in self.per_tier.items()),
            key=lambda pair: (-pair[1], pair[0]),
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready summary (what the flight recorder embeds)."""
        return {
            "responses": self.responses,
            "total_bytes": self.total_bytes,
            "totals": dict(self.totals),
            "per_kind": dict(self.per_kind),
            "per_member": {m: dict(row) for m, row in sorted(self.per_member.items())},
            "per_tier": {t: dict(row) for t, row in sorted(self.per_tier.items())},
            "per_doc_state": {
                str(d): dict(row) for d, row in sorted(self.per_doc_state.items())
            },
        }

    def __repr__(self):
        return "ByteAttribution(%d responses, %dB, %d members)" % (
            self.responses,
            self.total_bytes,
            len(self.per_member),
        )


def render_attribution_table(attribution: ByteAttribution, limit: int = 10) -> str:
    """A fixed-width per-member cost table, costliest member first."""
    title = "Wire-byte attribution"
    lines = [title, "=" * len(title)]
    if not attribution.responses:
        lines.append("(no attributed responses)")
        return "\n".join(lines)
    names = [b for b in PAYLOAD_BUCKETS if attribution.totals.get(b)] + [FRAMING]
    header = "%-12s %10s" % ("member", "bytes")
    for name in names:
        header += " %12s" % name
    lines.append(header)
    for member, total in attribution.top_members(limit):
        row = attribution.per_member[member]
        line = "%-12s %10d" % (member, total)
        for name in names:
            line += " %12d" % row.get(name, 0)
        lines.append(line)
    total_line = "%-12s %10d" % ("TOTAL", attribution.total_bytes)
    for name in names:
        total_line += " %12d" % attribution.totals.get(name, 0)
    lines.append(total_line)
    return "\n".join(lines)
