"""Structured end-to-end tracing for the co-browsing pipeline.

A *trace* follows one piece of content from the host browser to every
screen that renders it: response generation on the host (paper Fig. 3),
the delta diff, each poll exchange that carried it, every relay tier
that re-served it, and the in-place document update at each participant
(Fig. 5).  Spans are timestamped in **sim-time** — the kernel clock the
whole reproduction runs on — so durations line up exactly with the
simulated network and the M1–M4 metrics; wall-clock compute (M5/M6) is
attached as span tags.

**Minting and propagation.**  Trace IDs are minted at the host: the
first generation of a new document state opens the trace's root span.
Context then travels *with the content*, downstream, in an
``X-RCB-Trace: <trace_id>;<span_id>`` response header carried alongside
the poll response (the HMAC scheme signs method, target, and body, so
the extra header composes cleanly with request authentication).  A
snippet that applies the content records its update span as a child of
the serving span; a relay additionally remembers that apply span as the
parent for its own downstream re-serves.  The result is one connected
tree per document state:

    host.generate
      ├─ host.serve (relay r1 poll)
      │    └─ relay.apply (r1)
      │         └─ relay.serve (leaf p5 poll)
      │              └─ snippet.apply (p5)
      └─ host.serve (leaf p0 poll)
           └─ snippet.apply (p0)

Tracing is strictly opt-in: components default to ``tracer=None``, in
which case no spans are recorded and **no header is emitted** — the
wire format is byte-identical to the untraced protocol.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Union

__all__ = [
    "TRACE_HEADER",
    "Span",
    "SpanContext",
    "Tracer",
    "format_trace_header",
    "parse_trace_header",
]

#: The response header that carries trace context alongside the poll
#: protocol's timestamp and HMAC fields.
TRACE_HEADER = "X-RCB-Trace"


class SpanContext:
    """The portable identity of a span: enough to parent a child."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def __eq__(self, other):
        return (
            isinstance(other, SpanContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
        )

    def __hash__(self):
        return hash((self.trace_id, self.span_id))

    def __repr__(self):
        return "SpanContext(%s;%s)" % (self.trace_id, self.span_id)


def format_trace_header(context: SpanContext) -> str:
    """Serialize a context for the ``X-RCB-Trace`` header."""
    return "%s;%s" % (context.trace_id, context.span_id)


def parse_trace_header(value: Optional[str]) -> Optional[SpanContext]:
    """Parse an ``X-RCB-Trace`` header; None for absent/malformed input
    (a bad header must never break the protocol — it is advisory)."""
    if not value or ";" not in value:
        return None
    trace_id, _, span_id = value.partition(";")
    trace_id = trace_id.strip()
    span_id = span_id.strip()
    if not trace_id or not span_id:
        return None
    return SpanContext(trace_id, span_id)


class Span:
    """One timed pipeline stage inside a trace."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "node",
        "start",
        "end",
        "tags",
        "child_seconds",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        node: str,
        start: float,
        tags: Optional[Dict[str, object]] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        #: Which pipeline node recorded the span (host browser name,
        #: relay id, participant id) — becomes the Chrome trace "thread".
        self.node = node
        #: Sim-time the stage began.
        self.start = start
        #: Sim-time the stage finished (None while open).
        self.end: Optional[float] = None
        self.tags: Dict[str, object] = dict(tags or {})
        #: Sim-time covered by direct children, clipped to this span's
        #: interval — what separates *inclusive* duration from *self*
        #: time.  Filled by :func:`repro.obs.profile.build_profile`
        #: (recording a span costs nothing extra on the hot path).
        self.child_seconds = 0.0

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Sim-seconds the stage spanned (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def self_seconds(self) -> float:
        """Exclusive sim-time: the inclusive duration minus the stretch
        covered by direct children (never negative).  Meaningful once a
        profile pass has filled :attr:`child_seconds`; before that it
        equals the inclusive duration."""
        remainder = self.duration - self.child_seconds
        return remainder if remainder > 0.0 else 0.0

    def finish(self, t: float) -> "Span":
        """Close the span at sim-time ``t``."""
        if self.end is None:
            self.end = t
        return self

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready record (the JSONL export row)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "self": self.self_seconds,
            "tags": dict(self.tags),
        }

    def __repr__(self):
        return "Span(%s;%s %s@%s %.6f+%.6fs)" % (
            self.trace_id,
            self.span_id,
            self.name,
            self.node,
            self.start,
            self.duration,
        )


ParentLike = Union[Span, SpanContext, None]


class Tracer:
    """Mints IDs and collects spans for one deployment.

    Share a single tracer across a session (host agent, relays,
    snippets) so every tier's spans land in one place.  ID minting is a
    plain counter — deterministic across runs, like the kernel itself.
    ``max_spans`` bounds memory on soak-length runs by retiring the
    oldest spans.
    """

    def __init__(self, max_spans: int = 100000):
        self._spans: Deque[Span] = deque(maxlen=max_spans)
        self._next_trace = 0
        self._next_span = 0

    # -- span lifecycle ---------------------------------------------------------------

    def start_span(
        self,
        name: str,
        t: float,
        parent: ParentLike = None,
        node: str = "",
        **tags,
    ) -> Span:
        """Open a span at sim-time ``t``.

        With ``parent`` (a :class:`Span` or :class:`SpanContext`) the
        span joins that trace; without one it roots a brand-new trace.
        """
        if parent is None:
            self._next_trace += 1
            trace_id = "t%d" % self._next_trace
            parent_id: Optional[str] = None
        else:
            context = parent.context if isinstance(parent, Span) else parent
            trace_id = context.trace_id
            parent_id = context.span_id
        self._next_span += 1
        span = Span(trace_id, "s%d" % self._next_span, parent_id, name, node, t, tags)
        self._spans.append(span)
        return span

    # -- queries ----------------------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """Every retained span, in creation order."""
        return list(self._spans)

    def trace_ids(self) -> List[str]:
        """Distinct trace IDs, in first-seen order."""
        seen: List[str] = []
        for span in self._spans:
            if span.trace_id not in seen:
                seen.append(span.trace_id)
        return seen

    def spans_for(self, trace_id: str) -> List[Span]:
        """The spans of one trace, in creation order."""
        return [span for span in self._spans if span.trace_id == trace_id]

    def spans_since(self, t: float) -> List[Span]:
        """Spans that *started* at or after sim-time ``t``.

        Walks the ring from the newest end so a trailing window costs
        O(window), not O(retained).  Spans may be recorded
        retroactively (a serve span opens at poll-*arrival* time), so
        creation order is not monotone in ``start``; the sound stop
        rule uses ``end``: a span always finishes at or after the
        sim-time it was recorded, so the first *finished* span with
        ``end < t`` proves every older span was recorded — and
        therefore started — before ``t``.  Open spans are skipped
        without stopping the walk.
        """
        out: List[Span] = []
        for span in reversed(self._spans):
            end = span.end
            if end is not None and end < t:
                break
            if span.start >= t:
                out.append(span)
        out.reverse()
        return out

    def span_by_id(self, span_id: str) -> Optional[Span]:
        for span in self._spans:
            if span.span_id == span_id:
                return span
        return None

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self):
        return "Tracer(%d spans, %d traces)" % (len(self._spans), len(self.trace_ids()))
