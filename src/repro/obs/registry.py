"""The unified metrics registry: counters, gauges, and histograms.

Every RCB component — the host agent, each Ajax-Snippet, every relay
tier, the delta engine, the session orchestrator — publishes its
statistics here instead of mutating private dicts.  A registry is a flat
namespace of *instruments* keyed by ``(name, labels)``:

* :class:`Counter` — a monotonically growing integer (polls served,
  bytes sent, fallbacks taken).
* :class:`Gauge` — a point-in-time value (last generation seconds,
  current session membership).
* :class:`Histogram` — a sliding-window distribution with exact
  p50/p95/p99 over the retained samples, plus all-time count/sum
  (sync latencies, generation and update times).

``registry.counter("agent_polls", node="bob")`` is get-or-create: the
same (name, labels) pair always returns the same instrument, which is
what lets a relay's replacement upstream snippet keep accumulating into
the histogram its dead predecessor started.

Backwards compatibility is preserved through :class:`StatsFacade`, a
dict-shaped read view (``agent.stats["polls"]``) whose entries are
registry instruments.  Production code mutates through the facade's
``inc``/``set``/``observe`` methods (or the instruments directly), never
through ``stats[...] +=`` item assignment — ``benchmarks/
check_stats_hygiene.py`` enforces that boundary.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple

try:  # pragma: no cover - trivially version-dependent import
    from collections.abc import Mapping
except ImportError:  # pragma: no cover
    from collections import Mapping  # type: ignore

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsFacade",
    "percentile",
]

#: How many recent samples a histogram retains for percentile queries.
DEFAULT_HISTOGRAM_WINDOW = 4096

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def percentile(samples: Iterable[float], p: float) -> float:
    """The ``p``-th percentile (0..100) of ``samples``, by the
    nearest-rank method; 0.0 for an empty sequence."""
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    if p <= 0:
        return ordered[0]
    if p >= 100:
        return ordered[-1]
    rank = max(1, int(-(-len(ordered) * p // 100)))  # ceil(n*p/100)
    return ordered[rank - 1]


class _Instrument:
    """Shared identity: a name plus a frozen label set."""

    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels

    def label_text(self) -> str:
        if not self.labels:
            return ""
        return "{%s}" % ",".join("%s=%s" % pair for pair in self.labels)

    def __repr__(self):
        return "%s(%s%s)" % (type(self).__name__, self.name, self.label_text())


class Counter(_Instrument):
    """A labeled counter.  ``inc`` is the normal mutation; ``set`` exists
    for facade-mediated resets and absolute updates."""

    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelItems):
        super().__init__(name, labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def set(self, value) -> None:
        self.value = value


class Gauge(_Instrument):
    """A labeled point-in-time value."""

    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelItems):
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram(_Instrument):
    """A sliding-window distribution with exact percentiles.

    ``count``/``sum`` cover every observation ever made; percentile
    queries run over the most recent ``window`` samples (bounded memory
    for soak-length runs, recency-weighted answers for dashboards).
    """

    __slots__ = ("count", "sum", "min", "max", "_samples")

    def __init__(self, name: str, labels: LabelItems, window: int = DEFAULT_HISTOGRAM_WINDOW):
        super().__init__(name, labels)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: Deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._samples.append(value)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's retained samples and totals in —
        used to aggregate one relay tier's per-node sync distributions.

        Safe when ``other`` is empty, and when ``other is self`` — the
        sample window is copied before appending, so merging never
        mutates a deque mid-iteration.
        """
        incoming = list(other._samples)
        self.count += other.count
        self.sum += other.sum
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound
        for value in incoming:
            self._samples.append(value)

    @property
    def values(self) -> List[float]:
        """The retained sample window, oldest first."""
        return list(self._samples)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        return percentile(self._samples, p)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def summary_text(self) -> str:
        return "n=%d mean=%.6f p50=%.6f p95=%.6f p99=%.6f" % (
            self.count,
            self.mean,
            self.p50,
            self.p95,
            self.p99,
        )


class MetricsRegistry:
    """Get-or-create home for every instrument in one deployment.

    One registry per co-browsing session (the host agent, every relay
    and snippet, the harness) gives a single place to render, export,
    and assert on; components built standalone make a private one.
    """

    def __init__(self, histogram_window: int = DEFAULT_HISTOGRAM_WINDOW):
        self.histogram_window = histogram_window
        self._instruments: "Dict[Tuple[str, LabelItems], _Instrument]" = {}

    def _get_or_create(self, kind, name: str, labels: Dict[str, str], **kwargs):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = kind(name, key[1], **kwargs)
            self._instruments[key] = instrument
            return instrument
        if not isinstance(instrument, kind):
            raise TypeError(
                "metric %r is already registered as %s, not %s"
                % (name, type(instrument).__name__, kind.__name__)
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels, window=self.histogram_window
        )

    def collect(self) -> List[_Instrument]:
        """Every instrument, sorted by (name, labels) for stable output."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def find(self, name: str, **labels) -> Optional[_Instrument]:
        """The instrument at (name, labels), or None — never creates."""
        return self._instruments.get((name, _label_key(labels)))

    def histograms_named(self, name: str) -> List[Histogram]:
        """Every histogram instrument with ``name``, across all labels."""
        return [
            inst
            for inst in self.collect()
            if inst.name == name and isinstance(inst, Histogram)
        ]

    def snapshot(self) -> List[Dict[str, object]]:
        """A JSON-ready dump of every instrument."""
        rows: List[Dict[str, object]] = []
        for inst in self.collect():
            row: Dict[str, object] = {
                "name": inst.name,
                "labels": dict(inst.labels),
                "type": type(inst).__name__.lower(),
            }
            if isinstance(inst, Histogram):
                row.update(
                    count=inst.count,
                    sum=inst.sum,
                    min=inst.min,
                    max=inst.max,
                    mean=inst.mean,
                    p50=inst.p50,
                    p95=inst.p95,
                    p99=inst.p99,
                )
            else:
                row["value"] = inst.value
            rows.append(row)
        return rows

    def render(self, title: str = "Metrics registry") -> str:
        """A human-readable listing of every instrument."""
        lines = ["%s: %d instruments" % (title, len(self._instruments))]
        for inst in self.collect():
            if isinstance(inst, Histogram):
                lines.append(
                    "  %-44s %s" % (inst.name + inst.label_text(), inst.summary_text())
                )
            else:
                value = inst.value
                rendered = "%.6f" % value if isinstance(value, float) else str(value)
                lines.append("  %-44s %s" % (inst.name + inst.label_text(), rendered))
        return "\n".join(lines)


class StatsFacade(Mapping):
    """A dict-shaped read view over registry instruments.

    Keeps the historical ``component.stats["polls"]`` read API intact
    while the underlying storage moves to the registry.  Mutation goes
    through :meth:`inc` / :meth:`set` / :meth:`observe` so the hygiene
    lint can tell disciplined updates from stray dict pokes; item
    assignment still works (tests and ad-hoc scripts reset counters) and
    routes to the same instruments.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        prefix: str = "",
        labels: Optional[Dict[str, str]] = None,
        counters: Iterable[str] = (),
        gauges: Iterable[str] = (),
        histograms: Iterable[str] = (),
    ):
        self._registry = registry
        self._prefix = prefix
        self._labels = dict(labels or {})
        #: Mapping view: key -> Counter/Gauge (insertion ordered).
        self._instruments: Dict[str, _Instrument] = {}
        #: Histograms live beside the mapping view, not in it, so
        #: ``dict(stats)`` stays the familiar flat numbers-only shape.
        self._histograms: Dict[str, Histogram] = {}
        for key in counters:
            self.declare_counter(key)
        for key in gauges:
            self.declare_gauge(key)
        for key in histograms:
            self.declare_histogram(key)

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    # -- declaration ---------------------------------------------------------------

    def declare_counter(self, key: str) -> Counter:
        counter = self._registry.counter(self._prefix + key, **self._labels)
        self._instruments[key] = counter
        return counter

    def declare_gauge(self, key: str) -> Gauge:
        gauge = self._registry.gauge(self._prefix + key, **self._labels)
        self._instruments[key] = gauge
        return gauge

    def declare_histogram(self, key: str) -> Histogram:
        histogram = self._registry.histogram(self._prefix + key, **self._labels)
        self._histograms[key] = histogram
        return histogram

    # -- mutation ------------------------------------------------------------------

    def inc(self, key: str, amount=1) -> None:
        self._instruments[key].inc(amount)

    def set(self, key: str, value) -> None:
        self._instruments[key].set(value)

    def observe(self, key: str, value: float) -> None:
        self._histograms[key].observe(value)

    # -- instrument access ---------------------------------------------------------

    def instrument(self, key: str) -> _Instrument:
        return self._instruments[key]

    def histogram(self, key: str) -> Histogram:
        return self._histograms[key]

    # -- mapping protocol ----------------------------------------------------------

    def __getitem__(self, key: str):
        return self._instruments[key].value

    def __setitem__(self, key: str, value) -> None:
        instrument = self._instruments.get(key)
        if instrument is None:
            if isinstance(value, float):
                instrument = self.declare_gauge(key)
            else:
                instrument = self.declare_counter(key)
        instrument.set(value)

    def __iter__(self) -> Iterator[str]:
        return iter(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, key) -> bool:
        return key in self._instruments

    def update(self, other=(), **kwargs) -> None:
        """Dict-style bulk assignment (declares unknown keys)."""
        items = other.items() if hasattr(other, "items") else other
        for key, value in items:
            self[key] = value
        for key, value in kwargs.items():
            self[key] = value

    def __repr__(self):
        return "StatsFacade(%s)" % dict(self)
