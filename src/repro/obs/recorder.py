"""The black-box flight recorder: evidence that survives the incident.

An aircraft flight recorder does not wait to be asked: it continuously
retains the last N seconds of everything, and the wreckage is examined
*after* the fact.  This module does the same for a co-browsing
deployment.  A :class:`FlightRecorder` subscribes to the
:class:`~repro.obs.events.EventBus` and continuously retains the most
recent events; on a **triggering condition** it freezes a correlated
JSON "black box":

* the retained event tail (typed, sim-time-stamped records);
* a full metrics-registry snapshot at dump time;
* the spans of every trace referenced by a retained event (when a
  tracer is attached), so the dump alone reconstructs *what happened*,
  *how much it cost*, and *where the time went* for the same incident.

Built-in triggers:

* any event whose type is in ``trigger_types`` (default:
  ``relay.death`` — the failure mode that silently degrades a tier);
* **repeated resyncs** — ``resync_threshold`` ``resync.forced`` events
  within ``resync_window`` sim-seconds (a resync storm means the delta
  win is gone and something is corrupting participant state);
* an explicit :meth:`trigger` call — the SLO engine invokes this on a
  BREACH transition, and ``repro health --dump`` uses it on demand.

Dumps are bounded (``max_dumps``), rate-limited per reason
(``min_dump_interval`` sim-seconds), and size-capped
(``max_dump_bytes``), so a flapping relay cannot fill a soak run's
disk with identical black boxes.  When a profiler / attribution sink
is attached, each box additionally embeds the trailing-window flame
graph and the wire-byte attribution table — the evidence a perf-budget
breach points at.  An over-budget box is trimmed deterministically
(newest events/spans kept, bulky sections dropped last) and flagged
``"truncated": true``; trimming only ever removes list entries or
whole sections, so a capped dump is always valid JSON.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from .events import RELAY_DEATH, RESYNC_FORCED, Event, EventBus

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Continuously retains recent events; dumps a black box on triggers."""

    def __init__(
        self,
        events: EventBus,
        registry=None,
        tracer=None,
        capacity: int = 512,
        trigger_types: Iterable[str] = (RELAY_DEATH,),
        resync_threshold: int = 3,
        resync_window: float = 10.0,
        max_dumps: int = 16,
        min_dump_interval: float = 1.0,
        profiler=None,
        attribution=None,
        fleet=None,
        profile_window: float = 30.0,
        max_dump_bytes: int = 262144,
    ):
        self.events = events
        self.registry = registry
        self.tracer = tracer
        self.trigger_types = frozenset(trigger_types)
        self.resync_threshold = resync_threshold
        self.resync_window = resync_window
        self.max_dumps = max_dumps
        self.min_dump_interval = min_dump_interval
        #: Optional continuous-profiling / byte-attribution feeds; when
        #: attached, every box embeds the trailing-window profile (with
        #: collapsed flame-graph stacks) and the attribution rollups.
        self.profiler = profiler
        self.attribution = attribution
        #: Optional fleet telemetry view; each box embeds the fleet
        #: rollup active at dump time.
        self.fleet = fleet
        self.profile_window = profile_window
        #: Serialized-size budget per box; 0 disables the cap.
        self.max_dump_bytes = max_dump_bytes

        #: The continuously-maintained tail, across all nodes.
        self._tail: Deque[Event] = deque(maxlen=capacity)
        self._resync_times: Deque[float] = deque()
        #: reason -> sim-time of its last dump (rate limiting).
        self._last_dump_at: Dict[str, float] = {}
        #: Retained black boxes, oldest first.
        self.dumps: List[Dict[str, object]] = []
        events.subscribe(self._on_event)

    # -- event intake ------------------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        self._tail.append(event)
        if event.type in self.trigger_types:
            self.trigger("event:%s" % event.type, t=event.t)
        if event.type == RESYNC_FORCED and self.resync_threshold > 0:
            times = self._resync_times
            times.append(event.t)
            while times and times[0] < event.t - self.resync_window:
                times.popleft()
            if len(times) >= self.resync_threshold:
                if self.trigger("repeated-resync", t=event.t) is not None:
                    times.clear()

    # -- dumping -----------------------------------------------------------------------

    def snapshot(self, reason: str, t: Optional[float] = None) -> Dict[str, object]:
        """Build (without retaining) the black-box document."""
        events = sorted(self._tail, key=lambda event: event.seq)
        trace_ids: List[str] = []
        for event in events:
            if event.trace_id is not None and event.trace_id not in trace_ids:
                trace_ids.append(event.trace_id)
        box: Dict[str, object] = {
            "reason": reason,
            "t": t if t is not None else (events[-1].t if events else 0.0),
            "events": [event.to_dict() for event in events],
            "trace_ids": trace_ids,
        }
        if self.registry is not None:
            box["metrics"] = self.registry.snapshot()
        if self.tracer is not None and trace_ids:
            wanted = set(trace_ids)
            box["spans"] = [
                span.to_dict() for span in self.tracer.spans if span.trace_id in wanted
            ]
        if self.profiler is not None:
            profile = self.profiler.window(float(box["t"]), self.profile_window)
            box["profile"] = profile.to_dict()
        if self.attribution is not None:
            box["attribution"] = self.attribution.to_dict()
        if self.fleet is not None:
            box["fleet"] = self.fleet.to_dict()
        return self._enforce_cap(box)

    def _enforce_cap(self, box: Dict[str, object]) -> Dict[str, object]:
        """Trim an over-budget box down to ``max_dump_bytes``.

        Deterministic and JSON-safe: halve the bulky lists (newest
        entries survive — they are closest to the incident), then drop
        whole sections, bulkiest evidence first.  The box dict itself
        is always what gets serialized, so the result is valid JSON at
        every step."""
        limit = self.max_dump_bytes
        if not limit:
            return box

        def oversized() -> bool:
            return len(json.dumps(box, sort_keys=True).encode("utf-8")) > limit

        if not oversized():
            return box
        box["truncated"] = True

        def halve(key: str, container: Dict[str, object]) -> bool:
            entries = container.get(key)
            if isinstance(entries, list) and len(entries) > 4:
                container[key] = entries[len(entries) // 2:]
                return True
            return False

        while oversized():
            if halve("spans", box) or halve("events", box):
                continue
            profile = box.get("profile")
            if isinstance(profile, dict) and (
                halve("collapsed_wall", profile) or halve("collapsed", profile)
            ):
                continue
            for section in ("spans", "profile", "attribution", "fleet", "metrics", "events"):
                if section in box:
                    del box[section]
                    break
            else:
                # Only the incident header is left; the trace-id index
                # is the one remaining list that can still be bulky.
                if not halve("trace_ids", box):
                    return box
        return box

    def trigger(self, reason: str, t: Optional[float] = None) -> Optional[Dict[str, object]]:
        """Dump a black box for ``reason``, honouring rate limits.

        Returns the dump, or None when suppressed (rate limit or the
        ``max_dumps`` cap).
        """
        if len(self.dumps) >= self.max_dumps:
            return None
        stamp = t if t is not None else (self._tail[-1].t if self._tail else 0.0)
        last = self._last_dump_at.get(reason)
        if last is not None and stamp - last < self.min_dump_interval:
            return None
        self._last_dump_at[reason] = stamp
        box = self.snapshot(reason, t=stamp)
        self.dumps.append(box)
        return box

    def dump(self, reason: str = "on-demand", t: Optional[float] = None) -> Dict[str, object]:
        """An unconditional dump (no rate limit, still capped)."""
        box = self.snapshot(reason, t=t)
        if len(self.dumps) < self.max_dumps:
            self.dumps.append(box)
        return box

    @property
    def last_dump(self) -> Optional[Dict[str, object]]:
        return self.dumps[-1] if self.dumps else None

    def write_last(self, path: str) -> bool:
        """Write the most recent black box as JSON; False if none exist."""
        if not self.dumps:
            return False
        with open(path, "w") as handle:
            json.dump(self.dumps[-1], handle, indent=1, sort_keys=True)
            handle.write("\n")
        return True

    def __repr__(self):
        return "FlightRecorder(%d retained events, %d dumps)" % (
            len(self._tail),
            len(self.dumps),
        )
