"""repro.obs — observability: tracing, metrics, events, health, exporters.

The serving substrate every performance claim stands on: structured
spans following content host → relays → participants in sim-time
(:mod:`repro.obs.trace`), labeled counters/gauges/histograms replacing
the old per-component stats dicts (:mod:`repro.obs.registry`), a typed
sim-time-stamped event log with per-component ring buffers
(:mod:`repro.obs.events`), a black-box flight recorder correlating
events + metrics + spans on triggering conditions
(:mod:`repro.obs.recorder`), an SLO engine grading sessions OK / WARN /
BREACH with hysteresis (:mod:`repro.obs.health`), continuous sim-time
profiling with self-vs-inclusive span time (:mod:`repro.obs.profile`),
wire-byte cost attribution (:mod:`repro.obs.attribution`), a fleet
telemetry plane of mergeable client-measured digests piggybacked
upstream (:mod:`repro.obs.digest`) aggregated into a host-side fleet
view (:mod:`repro.obs.fleet`), and JSONL / Chrome trace-event /
flame-graph exports (:mod:`repro.obs.export`).
"""

from .attribution import (
    PAYLOAD_BUCKETS,
    ByteAttribution,
    ResponseAttribution,
    render_attribution_table,
)
from .digest import (
    FOLDED_ID,
    ClientTelemetry,
    LogBucketSketch,
    MemberDelta,
    TelemetryDigest,
    encoded_bytes,
)
from .events import (
    DELTA_APPLY_FAILED,
    DELTA_FALLBACK,
    HMAC_REJECT,
    KNOWN_EVENT_TYPES,
    MEMBER_JOIN,
    MEMBER_LEAVE,
    POLL_SERVED,
    RELAY_DEATH,
    RELAY_REATTACH,
    RESYNC_FORCED,
    SHARD_MIGRATE,
    SHARD_PROMOTE,
    SLO_BREACH,
    SLO_RECOVER,
    TRANSPORT_SWITCH,
    Event,
    EventBus,
)
from .export import (
    chrome_trace,
    collapsed_stacks,
    events_to_jsonl,
    spans_to_jsonl,
    speedscope_profile,
    write_chrome_trace,
    write_collapsed,
    write_events_jsonl,
    write_spans_jsonl,
    write_speedscope,
)
from .fleet import FleetView, render_fleet_view
from .health import (
    BREACH,
    OK,
    WARN,
    HealthMonitor,
    HealthReport,
    SloRule,
    Verdict,
    default_rules,
    fleet_rules,
    perf_budget_rules,
    shard_rules,
    transport_rules,
)
from .profile import (
    FrameStat,
    Profile,
    Profiler,
    build_profile,
    render_profile_summary,
)
from .recorder import FlightRecorder
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsFacade,
    percentile,
)
from .trace import (
    TRACE_HEADER,
    Span,
    SpanContext,
    Tracer,
    format_trace_header,
    parse_trace_header,
)

__all__ = [
    "BREACH",
    "ByteAttribution",
    "ClientTelemetry",
    "Counter",
    "DELTA_APPLY_FAILED",
    "DELTA_FALLBACK",
    "Event",
    "EventBus",
    "FOLDED_ID",
    "FleetView",
    "FlightRecorder",
    "FrameStat",
    "Gauge",
    "HMAC_REJECT",
    "HealthMonitor",
    "HealthReport",
    "Histogram",
    "KNOWN_EVENT_TYPES",
    "LogBucketSketch",
    "MEMBER_JOIN",
    "MEMBER_LEAVE",
    "MemberDelta",
    "MetricsRegistry",
    "OK",
    "PAYLOAD_BUCKETS",
    "POLL_SERVED",
    "Profile",
    "Profiler",
    "RELAY_DEATH",
    "RELAY_REATTACH",
    "RESYNC_FORCED",
    "ResponseAttribution",
    "SHARD_MIGRATE",
    "SHARD_PROMOTE",
    "SLO_BREACH",
    "SLO_RECOVER",
    "SloRule",
    "Span",
    "SpanContext",
    "StatsFacade",
    "TRACE_HEADER",
    "TRANSPORT_SWITCH",
    "TelemetryDigest",
    "Tracer",
    "Verdict",
    "WARN",
    "build_profile",
    "chrome_trace",
    "collapsed_stacks",
    "default_rules",
    "encoded_bytes",
    "events_to_jsonl",
    "fleet_rules",
    "format_trace_header",
    "parse_trace_header",
    "percentile",
    "perf_budget_rules",
    "render_attribution_table",
    "render_fleet_view",
    "render_profile_summary",
    "shard_rules",
    "spans_to_jsonl",
    "speedscope_profile",
    "transport_rules",
    "write_chrome_trace",
    "write_collapsed",
    "write_events_jsonl",
    "write_spans_jsonl",
    "write_speedscope",
]
