"""repro.obs — observability: tracing, metrics, events, health, exporters.

The serving substrate every performance claim stands on: structured
spans following content host → relays → participants in sim-time
(:mod:`repro.obs.trace`), labeled counters/gauges/histograms replacing
the old per-component stats dicts (:mod:`repro.obs.registry`), a typed
sim-time-stamped event log with per-component ring buffers
(:mod:`repro.obs.events`), a black-box flight recorder correlating
events + metrics + spans on triggering conditions
(:mod:`repro.obs.recorder`), an SLO engine grading sessions OK / WARN /
BREACH with hysteresis (:mod:`repro.obs.health`), continuous sim-time
profiling with self-vs-inclusive span time (:mod:`repro.obs.profile`),
wire-byte cost attribution (:mod:`repro.obs.attribution`), and JSONL /
Chrome trace-event / flame-graph exports (:mod:`repro.obs.export`).
"""

from .attribution import (
    PAYLOAD_BUCKETS,
    ByteAttribution,
    ResponseAttribution,
    render_attribution_table,
)
from .events import (
    DELTA_APPLY_FAILED,
    DELTA_FALLBACK,
    HMAC_REJECT,
    KNOWN_EVENT_TYPES,
    MEMBER_JOIN,
    MEMBER_LEAVE,
    POLL_SERVED,
    RELAY_DEATH,
    RELAY_REATTACH,
    RESYNC_FORCED,
    SLO_BREACH,
    SLO_RECOVER,
    TRANSPORT_SWITCH,
    Event,
    EventBus,
)
from .export import (
    chrome_trace,
    collapsed_stacks,
    events_to_jsonl,
    spans_to_jsonl,
    speedscope_profile,
    write_chrome_trace,
    write_collapsed,
    write_events_jsonl,
    write_spans_jsonl,
    write_speedscope,
)
from .health import (
    BREACH,
    OK,
    WARN,
    HealthMonitor,
    HealthReport,
    SloRule,
    Verdict,
    default_rules,
    perf_budget_rules,
    transport_rules,
)
from .profile import (
    FrameStat,
    Profile,
    Profiler,
    build_profile,
    render_profile_summary,
)
from .recorder import FlightRecorder
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsFacade,
    percentile,
)
from .trace import (
    TRACE_HEADER,
    Span,
    SpanContext,
    Tracer,
    format_trace_header,
    parse_trace_header,
)

__all__ = [
    "BREACH",
    "ByteAttribution",
    "Counter",
    "DELTA_APPLY_FAILED",
    "DELTA_FALLBACK",
    "Event",
    "EventBus",
    "FlightRecorder",
    "FrameStat",
    "Gauge",
    "HMAC_REJECT",
    "HealthMonitor",
    "HealthReport",
    "Histogram",
    "KNOWN_EVENT_TYPES",
    "MEMBER_JOIN",
    "MEMBER_LEAVE",
    "MetricsRegistry",
    "OK",
    "PAYLOAD_BUCKETS",
    "POLL_SERVED",
    "Profile",
    "Profiler",
    "RELAY_DEATH",
    "RELAY_REATTACH",
    "RESYNC_FORCED",
    "ResponseAttribution",
    "SLO_BREACH",
    "SLO_RECOVER",
    "SloRule",
    "Span",
    "SpanContext",
    "StatsFacade",
    "TRACE_HEADER",
    "TRANSPORT_SWITCH",
    "Tracer",
    "Verdict",
    "WARN",
    "build_profile",
    "chrome_trace",
    "collapsed_stacks",
    "default_rules",
    "events_to_jsonl",
    "format_trace_header",
    "parse_trace_header",
    "percentile",
    "perf_budget_rules",
    "render_attribution_table",
    "render_profile_summary",
    "spans_to_jsonl",
    "speedscope_profile",
    "transport_rules",
    "write_chrome_trace",
    "write_collapsed",
    "write_events_jsonl",
    "write_spans_jsonl",
    "write_speedscope",
]
