"""repro.obs — observability: tracing, metrics, events, health, exporters.

The serving substrate every performance claim stands on: structured
spans following content host → relays → participants in sim-time
(:mod:`repro.obs.trace`), labeled counters/gauges/histograms replacing
the old per-component stats dicts (:mod:`repro.obs.registry`), a typed
sim-time-stamped event log with per-component ring buffers
(:mod:`repro.obs.events`), a black-box flight recorder correlating
events + metrics + spans on triggering conditions
(:mod:`repro.obs.recorder`), an SLO engine grading sessions OK / WARN /
BREACH with hysteresis (:mod:`repro.obs.health`), and JSONL / Chrome
trace-event exports (:mod:`repro.obs.export`).
"""

from .events import (
    DELTA_APPLY_FAILED,
    DELTA_FALLBACK,
    HMAC_REJECT,
    KNOWN_EVENT_TYPES,
    MEMBER_JOIN,
    MEMBER_LEAVE,
    POLL_SERVED,
    RELAY_DEATH,
    RELAY_REATTACH,
    RESYNC_FORCED,
    SLO_BREACH,
    SLO_RECOVER,
    TRANSPORT_SWITCH,
    Event,
    EventBus,
)
from .export import (
    chrome_trace,
    events_to_jsonl,
    spans_to_jsonl,
    write_chrome_trace,
    write_events_jsonl,
    write_spans_jsonl,
)
from .health import (
    BREACH,
    OK,
    WARN,
    HealthMonitor,
    HealthReport,
    SloRule,
    Verdict,
    default_rules,
    transport_rules,
)
from .recorder import FlightRecorder
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsFacade,
    percentile,
)
from .trace import (
    TRACE_HEADER,
    Span,
    SpanContext,
    Tracer,
    format_trace_header,
    parse_trace_header,
)

__all__ = [
    "BREACH",
    "Counter",
    "DELTA_APPLY_FAILED",
    "DELTA_FALLBACK",
    "Event",
    "EventBus",
    "FlightRecorder",
    "Gauge",
    "HMAC_REJECT",
    "HealthMonitor",
    "HealthReport",
    "Histogram",
    "KNOWN_EVENT_TYPES",
    "MEMBER_JOIN",
    "MEMBER_LEAVE",
    "MetricsRegistry",
    "OK",
    "POLL_SERVED",
    "RELAY_DEATH",
    "RELAY_REATTACH",
    "RESYNC_FORCED",
    "SLO_BREACH",
    "SLO_RECOVER",
    "SloRule",
    "Span",
    "SpanContext",
    "StatsFacade",
    "TRACE_HEADER",
    "TRANSPORT_SWITCH",
    "Tracer",
    "Verdict",
    "WARN",
    "chrome_trace",
    "default_rules",
    "events_to_jsonl",
    "format_trace_header",
    "parse_trace_header",
    "percentile",
    "spans_to_jsonl",
    "transport_rules",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_spans_jsonl",
]
