"""repro.obs — observability: tracing, the metrics registry, exporters.

The serving substrate every performance claim stands on: structured
spans following content host → relays → participants in sim-time
(:mod:`repro.obs.trace`), labeled counters/gauges/histograms replacing
the old per-component stats dicts (:mod:`repro.obs.registry`), and
JSONL / Chrome trace-event exports (:mod:`repro.obs.export`).
"""

from .export import chrome_trace, spans_to_jsonl, write_chrome_trace, write_spans_jsonl
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsFacade,
    percentile,
)
from .trace import (
    TRACE_HEADER,
    Span,
    SpanContext,
    Tracer,
    format_trace_header,
    parse_trace_header,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "StatsFacade",
    "TRACE_HEADER",
    "Tracer",
    "chrome_trace",
    "format_trace_header",
    "parse_trace_header",
    "percentile",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_spans_jsonl",
]
