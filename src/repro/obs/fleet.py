"""The host-side fleet view: merged client-measured telemetry rollups.

The :class:`FleetView` is the terminal sink of the fleet telemetry
plane: every digest blob that reaches the root agent (one bounded blob
per poll, relays having merged their subtrees on the way up) lands in
:meth:`FleetView.ingest`, which accumulates per-member deltas, folded
aggregates, and the plane's own wire cost.  From that it serves:

* fleet-wide / per-tier / per-member rollups with **true
  client-measured** ``staleness_p95`` (ms, at apply time) and
  ``apply_p99`` (µs, wall) — not the host-inferred staleness the SLO
  engine samples from sim attributes;
* the ``telemetry_overhead_ratio`` — digest wire bytes over the content
  bytes members reported seeing, the budget that keeps the reporting
  channel from eating the coherence win it measures;
* straggler detection by **modified z-score** (median/MAD, the robust
  form that one outlier cannot drag) over per-member staleness p95;
* a JSON export (:meth:`to_dict`) and a CLI table
  (:func:`render_fleet_view`) — the ``repro fleet`` command.

Wired into a :class:`~repro.core.session.CoBrowsingSession` via its
``telemetry=`` argument; the session resolves tiers through
``tier_of`` exactly like byte attribution does.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .digest import DIGEST_VERSION, FOLDED_ID, MemberDelta, encoded_bytes

__all__ = ["FleetView", "render_fleet_view"]


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class FleetView:
    """Aggregates piggybacked telemetry digests into fleet rollups."""

    def __init__(
        self,
        byte_cap: int = 2048,
        flush_interval: float = 2.0,
        tier_of: Optional[Callable[[str], Optional[int]]] = None,
        shard_of: Optional[Callable[[str], Optional[str]]] = None,
        straggler_threshold: float = 3.5,
        straggler_min_members: int = 4,
    ):
        #: Compact-encoding budget each reporter folds under; the
        #: session hands this to every member's ClientTelemetry.
        self.byte_cap = byte_cap
        #: Minimum seconds between a reporter's piggybacked flushes
        #: (also handed to every member) — the overhead/freshness knob.
        self.flush_interval = flush_interval
        #: ``member_id -> tier`` resolver (the session wires its
        #: ``member_tier``); None leaves every member untiered.
        self.tier_of = tier_of
        #: ``member_id -> shard id`` resolver (an
        #: :class:`~repro.core.shard.AgentPool` wires its ``shard_of``);
        #: None leaves every member unsharded.
        self.shard_of = shard_of
        #: Modified-z threshold for flagging a straggler (3.5 is the
        #: standard Iglewicz–Hoaglin cut).
        self.straggler_threshold = straggler_threshold
        #: Robust statistics need a minimum population.
        self.straggler_min_members = straggler_min_members

        self._members: Dict[str, MemberDelta] = {}
        #: Fold-under-cap aggregates, identity lost upstream (the record
        #: weight counts the collapsed member-records — reported, never
        #: silent).
        self._folded: Optional[MemberDelta] = None
        self.digests_ingested = 0
        self.ingest_errors = 0
        #: Compact wire bytes of every ingested blob — the numerator of
        #: the overhead ratio and the max-blob cap assertion.
        self.telemetry_wire_bytes = 0
        self.max_blob_bytes = 0
        self.last_ingest_t: Optional[float] = None

    # -- intake ------------------------------------------------------------------------

    def ingest(self, blob, t: Optional[float] = None) -> None:
        """Accumulate one piggybacked digest blob (malformed blobs are
        counted and dropped — a hostile client cannot crash the host)."""
        # Parse every record before merging any, so a malformed blob
        # drops whole instead of landing half its records.
        try:
            if not isinstance(blob, dict) or blob.get("v") != DIGEST_VERSION:
                raise ValueError("bad digest blob")
            records = blob["members"]
            if not isinstance(records, list):
                raise ValueError("digest blob has no members list")
            deltas = [MemberDelta.from_dict(record) for record in records]
        except (TypeError, ValueError, KeyError):
            self.ingest_errors += 1
            return
        size = encoded_bytes(blob)
        self.digests_ingested += 1
        self.telemetry_wire_bytes += size
        if size > self.max_blob_bytes:
            self.max_blob_bytes = size
        if t is not None:
            self.last_ingest_t = t
        for delta in deltas:
            if delta.member_id == FOLDED_ID:
                if self._folded is None:
                    self._folded = MemberDelta(FOLDED_ID, weight=0)
                self._folded.merge_from(delta)
            else:
                mine = self._members.get(delta.member_id)
                if mine is None:
                    mine = self._members[delta.member_id] = MemberDelta(
                        delta.member_id, weight=0
                    )
                mine.merge_from(delta)

    # -- rollups -----------------------------------------------------------------------

    @property
    def member_count(self) -> int:
        return len(self._members)

    @property
    def folded_records(self) -> int:
        """Member-records that arrived collapsed into ``*`` aggregates."""
        return self._folded.weight if self._folded is not None else 0

    def member_ids(self) -> List[str]:
        return sorted(self._members)

    def member(self, member_id: str) -> Optional[MemberDelta]:
        return self._members.get(member_id)

    def totals(self) -> MemberDelta:
        """The fleet aggregate: every member plus folded records.  Pure
        counter/sketch sums, so this equals Σ per-member locals whenever
        nothing is pending or lost in transit."""
        aggregate = MemberDelta("fleet", weight=0)
        for delta in self._members.values():
            aggregate.merge_from(delta)
        if self._folded is not None:
            aggregate.merge_from(self._folded)
        return aggregate

    def staleness_p95(self) -> float:
        """Fleet-wide client-measured staleness p95, milliseconds."""
        return self.totals().staleness.percentile(95)

    def apply_p99(self) -> float:
        """Fleet-wide client-measured apply latency p99, microseconds."""
        return self.totals().apply.percentile(99)

    def member_staleness_p95(self) -> Dict[str, float]:
        """Per-member staleness p95 (ms) for members with apply samples."""
        return {
            member_id: delta.staleness.percentile(95)
            for member_id, delta in self._members.items()
            if delta.staleness.count
        }

    def per_tier(self) -> Dict[Optional[int], MemberDelta]:
        """Member deltas aggregated by relay-tree tier (None: untiered /
        flat members; folded records land in tier None too — their
        member identity, and hence tier, folded away upstream)."""
        tiers: Dict[Optional[int], MemberDelta] = {}
        for member_id, delta in self._members.items():
            tier = self.tier_of(member_id) if self.tier_of is not None else None
            aggregate = tiers.get(tier)
            if aggregate is None:
                aggregate = tiers[tier] = MemberDelta(
                    "tier:%s" % ("?" if tier is None else tier), weight=0
                )
            aggregate.merge_from(delta)
        if self._folded is not None:
            aggregate = tiers.get(None)
            if aggregate is None:
                aggregate = tiers[None] = MemberDelta("tier:?", weight=0)
            aggregate.merge_from(self._folded)
        return tiers

    def per_shard(self) -> Dict[Optional[str], MemberDelta]:
        """Member deltas aggregated by serving instance (None: members
        the resolver does not know, and folded records — their member
        identity, and hence shard, folded away upstream)."""
        shards: Dict[Optional[str], MemberDelta] = {}
        for member_id, delta in self._members.items():
            shard = self.shard_of(member_id) if self.shard_of is not None else None
            aggregate = shards.get(shard)
            if aggregate is None:
                aggregate = shards[shard] = MemberDelta(
                    "shard:%s" % ("?" if shard is None else shard), weight=0
                )
            aggregate.merge_from(delta)
        if self._folded is not None:
            aggregate = shards.get(None)
            if aggregate is None:
                aggregate = shards[None] = MemberDelta("shard:?", weight=0)
            aggregate.merge_from(self._folded)
        return shards

    def telemetry_overhead_ratio(self) -> float:
        """Digest wire bytes over client-reported content bytes seen —
        the plane's own cost, self-measured on the same channel."""
        content = self.totals().counters.get("bytes_seen", 0)
        if not content:
            return 0.0
        return self.telemetry_wire_bytes / content

    # -- stragglers --------------------------------------------------------------------

    def stragglers(self) -> List[Dict[str, object]]:
        """Members whose staleness p95 is a robust outlier against the
        fleet distribution: modified z-score ``0.6745·(x − median)/MAD``
        (falling back to the mean absolute deviation when the MAD
        degenerates to zero), flagged above ``straggler_threshold``.
        Only *lagging* outliers count — unusually fresh members are not
        a problem."""
        p95s = self.member_staleness_p95()
        if len(p95s) < self.straggler_min_members:
            return []
        values = list(p95s.values())
        center = _median(values)
        deviations = [abs(v - center) for v in values]
        mad = _median(deviations)
        flagged: List[Dict[str, object]] = []
        if mad > 0:
            scale = mad / 0.6745
        else:
            mean_ad = sum(deviations) / len(deviations)
            if mean_ad == 0:
                return []
            scale = 1.2533 * mean_ad
        for member_id, value in p95s.items():
            score = (value - center) / scale
            if score >= self.straggler_threshold:
                flagged.append(
                    {
                        "member": member_id,
                        "staleness_p95_ms": value,
                        "score": score,
                    }
                )
        flagged.sort(key=lambda row: -float(row["score"]))
        return flagged

    # -- export ------------------------------------------------------------------------

    def _delta_row(self, delta: MemberDelta) -> Dict[str, object]:
        return {
            "counters": dict(delta.counters),
            "mode_polls": dict(delta.mode_polls),
            "staleness_p95_ms": delta.staleness.percentile(95),
            "apply_p99_us": delta.apply.percentile(99),
            "apply_samples": delta.apply.count,
        }

    def to_dict(self) -> Dict[str, object]:
        """The JSON export (``repro fleet --json``, flight-recorder
        ``fleet`` section)."""
        fleet = self.totals()
        members = {}
        for member_id in self.member_ids():
            delta = self._members[member_id]
            row = self._delta_row(delta)
            if self.tier_of is not None:
                row["tier"] = self.tier_of(member_id)
            members[member_id] = row
        tiers = {
            str("?" if tier is None else tier): self._delta_row(delta)
            for tier, delta in sorted(
                self.per_tier().items(), key=lambda item: (item[0] is None, item[0] or 0)
            )
        }
        shards = {}
        if self.shard_of is not None:
            shards = {
                "?" if shard is None else shard: self._delta_row(delta)
                for shard, delta in sorted(
                    self.per_shard().items(),
                    key=lambda item: (item[0] is None, item[0] or ""),
                )
            }
        return {
            "byte_cap": self.byte_cap,
            "digests_ingested": self.digests_ingested,
            "ingest_errors": self.ingest_errors,
            "telemetry_wire_bytes": self.telemetry_wire_bytes,
            "max_blob_bytes": self.max_blob_bytes,
            "telemetry_overhead_ratio": self.telemetry_overhead_ratio(),
            "members_reporting": self.member_count,
            "folded_records": self.folded_records,
            "fleet": self._delta_row(fleet),
            "tiers": tiers,
            "shards": shards,
            "members": members,
            "stragglers": self.stragglers(),
        }

    def __repr__(self):
        return "FleetView(%d members, %d digests, %d wire bytes)" % (
            self.member_count,
            self.digests_ingested,
            self.telemetry_wire_bytes,
        )


def _fmt_ms(value: float) -> str:
    if value >= 10000:
        return "%.1fs" % (value / 1000.0)
    return "%dms" % round(value)


def _fmt_us(value: float) -> str:
    if value >= 1000:
        return "%.1fms" % (value / 1000.0)
    return "%dus" % round(value)


def _dominant_mode(delta: MemberDelta) -> str:
    if not delta.mode_polls:
        return "-"
    return max(sorted(delta.mode_polls), key=lambda mode: delta.mode_polls[mode])


def render_fleet_view(view: FleetView, title: str = "Fleet telemetry") -> str:
    """The ``repro fleet`` table: one row per reporting member, a tier
    rollup block, and the fleet footer with the overhead ratio.  (Named
    apart from :func:`repro.metrics.report.render_fleet_table`, which
    renders the host-inferred ``repro top`` view.)"""
    lines = [
        "%s — %d members reporting, %d digests, cap %dB (max blob %dB)"
        % (
            title,
            view.member_count,
            view.digests_ingested,
            view.byte_cap,
            view.max_blob_bytes,
        )
    ]
    header = "%-12s %5s %7s %8s %7s %10s %10s %10s %-8s" % (
        "member",
        "tier",
        "polls",
        "applies",
        "resync",
        "stale p95",
        "apply p99",
        "bytes",
        "mode",
    )
    lines.append(header)
    straggler_ids = {row["member"] for row in view.stragglers()}
    for member_id in view.member_ids():
        delta = view.member(member_id)
        tier = view.tier_of(member_id) if view.tier_of is not None else None
        marker = " <- straggler" if member_id in straggler_ids else ""
        lines.append(
            "%-12s %5s %7d %8d %7d %10s %10s %10d %-8s%s"
            % (
                member_id,
                "-" if tier is None else tier,
                delta.counters.get("polls", 0),
                delta.counters.get("content_updates", 0),
                delta.counters.get("resyncs", 0),
                _fmt_ms(delta.staleness.percentile(95)),
                _fmt_us(delta.apply.percentile(99)),
                delta.counters.get("bytes_seen", 0),
                _dominant_mode(delta),
                marker,
            )
        )
    if view.folded_records:
        folded = view._folded
        lines.append(
            "%-12s %5s %7d %8d %7d %10s %10s %10d %-8s (%d records folded)"
            % (
                "*folded*",
                "-",
                folded.counters.get("polls", 0),
                folded.counters.get("content_updates", 0),
                folded.counters.get("resyncs", 0),
                _fmt_ms(folded.staleness.percentile(95)),
                _fmt_us(folded.apply.percentile(99)),
                folded.counters.get("bytes_seen", 0),
                _dominant_mode(folded),
                view.folded_records,
            )
        )
    for tier, delta in sorted(
        view.per_tier().items(), key=lambda item: (item[0] is None, item[0] or 0)
    ):
        lines.append(
            "%-12s %5s %7d %8d %7d %10s %10s %10d %-8s"
            % (
                delta.member_id,
                "-" if tier is None else tier,
                delta.counters.get("polls", 0),
                delta.counters.get("content_updates", 0),
                delta.counters.get("resyncs", 0),
                _fmt_ms(delta.staleness.percentile(95)),
                _fmt_us(delta.apply.percentile(99)),
                delta.counters.get("bytes_seen", 0),
                _dominant_mode(delta),
            )
        )
    fleet = view.totals()
    lines.append(
        "%-12s %5s %7d %8d %7d %10s %10s %10d %-8s"
        % (
            "fleet",
            "-",
            fleet.counters.get("polls", 0),
            fleet.counters.get("content_updates", 0),
            fleet.counters.get("resyncs", 0),
            _fmt_ms(view.staleness_p95()),
            _fmt_us(view.apply_p99()),
            fleet.counters.get("bytes_seen", 0),
            _dominant_mode(fleet),
        )
    )
    lines.append(
        "telemetry overhead: %d wire bytes / %d content bytes = %.4f"
        % (
            view.telemetry_wire_bytes,
            fleet.counters.get("bytes_seen", 0),
            view.telemetry_overhead_ratio(),
        )
    )
    stragglers = view.stragglers()
    if stragglers:
        lines.append(
            "stragglers: "
            + ", ".join(
                "%s (p95 %s, z=%.1f)"
                % (
                    row["member"],
                    _fmt_ms(float(row["staleness_p95_ms"])),
                    float(row["score"]),
                )
                for row in stragglers
            )
        )
    return "\n".join(lines)
