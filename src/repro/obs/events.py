"""Structured event log: typed, sim-time-stamped, trace-correlated.

Metrics (:mod:`repro.obs.registry`) answer "how much / how fast"; spans
(:mod:`repro.obs.trace`) answer "where did the time go".  Neither
answers "*what happened*, in order" — which poll carried the content a
participant is stale without, which relay died first, which participant
was forced to resync and why.  That is the event log's job.

An :class:`Event` is one discrete occurrence:

* a **type** from a small closed vocabulary (``poll.served``,
  ``delta.fallback``, ``relay.death``, ``relay.reattach``,
  ``hmac.reject``, ``resync.forced``, ``member.join``/``member.leave``,
  ``delta.apply_failed``, ``slo.breach``/``slo.recover``);
* a **sim-time** stamp ``t`` (the kernel clock, so events interleave
  exactly with span start/end times and the simulated network);
* the emitting **node** (host agent name, relay id, participant id);
* optional **trace correlation** — the ``trace_id``/``span_id`` of the
  span that carried the content involved, when tracing is on, so a
  flight-recorder dump lines up event-for-span with the trace tree;
* free-form structured ``data`` (participant, byte counts, reasons).

The :class:`EventBus` is the single emission point a whole deployment
shares.  It keeps one bounded **ring buffer per component** (keyed by
``node``), so a chatty host tier cannot evict a quiet leaf's last
events — exactly the property a post-mortem needs.  Subscribers (the
flight recorder) observe every event synchronously at emission.

The bus is strictly **opt-in**: every component defaults to
``events=None`` and guards emission behind it, so a disabled bus costs
nothing — no objects, no callbacks, and (because events never ride the
protocol) zero wire bytes either way.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

__all__ = [
    "DELTA_APPLY_FAILED",
    "DELTA_FALLBACK",
    "Event",
    "EventBus",
    "HMAC_REJECT",
    "KNOWN_EVENT_TYPES",
    "MEMBER_JOIN",
    "MEMBER_LEAVE",
    "POLL_SERVED",
    "RELAY_DEATH",
    "RELAY_REATTACH",
    "RESYNC_FORCED",
    "SHARD_MIGRATE",
    "SHARD_PROMOTE",
    "SLO_BREACH",
    "SLO_RECOVER",
    "TRANSPORT_SWITCH",
]

#: A content-bearing poll response left an agent/relay.
POLL_SERVED = "poll.served"
#: An agent wanted to answer with a delta but had to send a full
#: envelope (evicted snapshot, or the diff lost to the full envelope).
DELTA_FALLBACK = "delta.fallback"
#: Applying a received delta failed op-by-op (emitted from the delta
#: engine itself, with the failing op).
DELTA_APPLY_FAILED = "delta.apply_failed"
#: A relay died: either injected via the session (node = the dead
#: relay) or observed by an orphan whose upstream stopped answering.
RELAY_DEATH = "relay.death"
#: An orphaned relay re-attached to an ancestor.
RELAY_REATTACH = "relay.reattach"
#: A request failed HMAC verification.
HMAC_REJECT = "hmac.reject"
#: A participant reset its timestamp to force a full-envelope resync.
RESYNC_FORCED = "resync.forced"
#: A participant joined / left an agent's roster.
MEMBER_JOIN = "member.join"
MEMBER_LEAVE = "member.leave"
#: The SLO engine's verdict for a subject crossed into / out of BREACH.
SLO_BREACH = "slo.breach"
SLO_RECOVER = "slo.recover"
#: A member's granted transport mode changed (adaptive controller or
#: an explicit per-member override).
TRANSPORT_SWITCH = "transport.switch"
#: A shard host died and its standby was promoted to acting host for
#: the dead shard's whole key range (node = the promoted instance).
SHARD_PROMOTE = "shard.promote"
#: The session directory moved a member to another serving instance
#: (rebalance or failover; node = the member).
SHARD_MIGRATE = "shard.migrate"

#: The closed vocabulary above (documentation + test assertions; the
#: bus itself accepts any string so extensions stay cheap).
KNOWN_EVENT_TYPES = frozenset(
    {
        POLL_SERVED,
        DELTA_FALLBACK,
        DELTA_APPLY_FAILED,
        RELAY_DEATH,
        RELAY_REATTACH,
        HMAC_REJECT,
        RESYNC_FORCED,
        MEMBER_JOIN,
        MEMBER_LEAVE,
        SLO_BREACH,
        SLO_RECOVER,
        TRANSPORT_SWITCH,
        SHARD_PROMOTE,
        SHARD_MIGRATE,
    }
)


class Event:
    """One discrete occurrence in the co-browsing pipeline."""

    __slots__ = ("seq", "t", "type", "node", "trace_id", "span_id", "data")

    def __init__(
        self,
        seq: int,
        t: float,
        type: str,
        node: str,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        data: Optional[Dict[str, object]] = None,
    ):
        #: Global emission order (strictly increasing per bus) — the
        #: tie-breaker when several events share one sim-time instant.
        self.seq = seq
        self.t = t
        self.type = type
        self.node = node
        self.trace_id = trace_id
        self.span_id = span_id
        self.data: Dict[str, object] = data if data is not None else {}

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready record (the JSONL export / black-box row)."""
        row: Dict[str, object] = {
            "seq": self.seq,
            "t": self.t,
            "type": self.type,
            "node": self.node,
        }
        if self.trace_id is not None:
            row["trace_id"] = self.trace_id
        if self.span_id is not None:
            row["span_id"] = self.span_id
        if self.data:
            row["data"] = dict(self.data)
        return row

    def __repr__(self):
        return "Event(#%d %.3fs %s@%s%s)" % (
            self.seq,
            self.t,
            self.type,
            self.node or "?",
            " " + str(self.data) if self.data else "",
        )


class EventBus:
    """Shared emission point with per-component ring buffers.

    One bus per deployment (the session hands the same instance to the
    host agent, every relay, and every snippet).  Retention is bounded
    *per node*: each component keeps its own ``ring_size`` most recent
    events, so no tier's chatter can evict another tier's evidence.

    ``max_total_events`` additionally bounds retention *globally*: each
    ring's capacity becomes the largest power of two not exceeding
    ``budget / nodes`` (capped by ``ring_size``, floored at 1), so
    total retained events stay within the budget however many
    components emit — the knob that keeps a 10k-member fleet's bus from
    ballooning RSS.  Capacities only shrink as components appear, in
    power-of-two steps, so existing rings are resized O(log budget)
    times over a bus's whole life, not per node.
    """

    def __init__(self, ring_size: int = 1024, max_total_events: Optional[int] = None):
        if ring_size < 1:
            raise ValueError("ring_size must be at least 1")
        if max_total_events is not None and max_total_events < 1:
            raise ValueError("max_total_events must be at least 1")
        self.ring_size = ring_size
        self.max_total_events = max_total_events
        self._allowance = self._ring_allowance(1)
        self._rings: Dict[str, Deque[Event]] = {}
        self._seq = 0
        self._subscribers: List[Callable[[Event], None]] = []
        #: All-time emission count per type (survives ring eviction —
        #: the cheap input for rate-style SLO rules).
        self._totals: Dict[str, int] = {}
        #: All-time eviction count per node — how many events each
        #: component's ring has dropped off its tail.
        self._evicted: Dict[str, int] = {}
        self._registry = None

    # -- emission ----------------------------------------------------------------------

    def emit(
        self,
        type: str,
        t: float,
        node: str = "",
        trace=None,
        **data,
    ) -> Event:
        """Record one event at sim-time ``t``.

        ``trace`` may be a :class:`~repro.obs.trace.Span`, a
        :class:`~repro.obs.trace.SpanContext`, or None — whatever span
        carried the content this event is about.
        """
        trace_id = span_id = None
        if trace is not None:
            context = getattr(trace, "context", trace)
            trace_id = context.trace_id
            span_id = context.span_id
        self._seq += 1
        event = Event(self._seq, t, type, node, trace_id, span_id, data or None)
        ring = self._rings.get(node)
        if ring is None:
            allowance = self._ring_allowance(len(self._rings) + 1)
            if allowance < self._allowance:
                self._allowance = allowance
                self._shrink_rings(allowance)
            ring = self._rings[node] = deque(maxlen=self._allowance)
        if len(ring) == ring.maxlen:
            # The append below pushes the oldest event off the tail:
            # count the loss so post-mortems know the ring was lossy.
            evicted = self._evicted.get(node, 0) + 1
            self._evicted[node] = evicted
            if self._registry is not None:
                self._registry.gauge("events_evicted", node=node).set(evicted)
        ring.append(event)
        self._totals[type] = self._totals.get(type, 0) + 1
        for subscriber in list(self._subscribers):
            subscriber(event)
        return event

    def _ring_allowance(self, node_count: int) -> int:
        """Per-node ring capacity for ``node_count`` components: the
        power-of-two floor of the budget's even share (so the total
        stays under budget whenever nodes <= budget), capped by
        ``ring_size`` and floored at one event per component."""
        if self.max_total_events is None:
            return self.ring_size
        share = self.max_total_events // max(1, node_count)
        allowance = 1
        while allowance * 2 <= share:
            allowance *= 2
        return min(self.ring_size, allowance)

    def _shrink_rings(self, allowance: int) -> None:
        """Resize every existing ring down to ``allowance``, counting
        the events dropped off each tail as evictions."""
        for node, ring in self._rings.items():
            if ring.maxlen is not None and ring.maxlen <= allowance:
                continue
            dropped = len(ring) - allowance
            if dropped > 0:
                evicted = self._evicted.get(node, 0) + dropped
                self._evicted[node] = evicted
                if self._registry is not None:
                    self._registry.gauge("events_evicted", node=node).set(evicted)
            self._rings[node] = deque(ring, maxlen=allowance)

    def attach_registry(self, registry) -> None:
        """Publish per-component eviction counts as ``events_evicted``
        gauges in ``registry`` (idempotent; past counts are published
        immediately, future evictions keep the gauges current)."""
        if registry is None or registry is self._registry:
            return
        self._registry = registry
        for node, evicted in self._evicted.items():
            registry.gauge("events_evicted", node=node).set(evicted)

    # -- subscription ------------------------------------------------------------------

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Observe every subsequent emission synchronously."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    # -- queries -----------------------------------------------------------------------

    def nodes(self) -> List[str]:
        """Components that have emitted at least one retained event."""
        return sorted(self._rings)

    def events(
        self,
        type: Optional[str] = None,
        node: Optional[str] = None,
        since: Optional[float] = None,
        last: Optional[int] = None,
    ) -> List[Event]:
        """Retained events in emission order, optionally filtered.

        ``type``/``node`` filter exactly; ``since`` keeps events with
        ``t >= since``; ``last`` keeps only the newest N after the other
        filters (the "tail" the CLI prints).
        """
        if node is not None:
            rings = [self._rings[node]] if node in self._rings else []
        else:
            rings = list(self._rings.values())
        selected = [
            event
            for ring in rings
            for event in ring
            if (type is None or event.type == type)
            and (since is None or event.t >= since)
        ]
        selected.sort(key=lambda event: event.seq)
        if last is not None and last >= 0:
            selected = selected[len(selected) - min(last, len(selected)):]
        return selected

    def count(
        self,
        type: Optional[str] = None,
        node: Optional[str] = None,
        since: Optional[float] = None,
    ) -> int:
        """How many *retained* events match the filters."""
        return len(self.events(type=type, node=node, since=since))

    def total(self, type: str) -> int:
        """All-time emission count for ``type`` (eviction-proof)."""
        return self._totals.get(type, 0)

    def evicted(self, node: Optional[str] = None) -> int:
        """All-time ring evictions for ``node`` (all nodes when None)."""
        if node is not None:
            return self._evicted.get(node, 0)
        return sum(self._evicted.values())

    def clear(self) -> None:
        """Drop every retained event (all-time totals survive)."""
        self._rings.clear()

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings.values())

    def __repr__(self):
        return "EventBus(%d events across %d nodes)" % (len(self), len(self._rings))
