"""Continuous sim-time profiling: self vs inclusive span time.

The PR-3 tracer answers "where did *this* document state go"; this
module answers the aggregate question the ROADMAP's sharding work
needs: **where does the time go, across every state served** — which
pipeline stage is hot, on which node, and how much of a stage's
inclusive time is really its own.

Two time dimensions ride on every span, and the profiler keeps them
apart:

* **Sim self-time** — the span's sim-clock extent minus the portion
  covered by its direct children (clipped to the parent's interval, so
  a child that outlives its parent credits only the overlap).  A
  ``host.serve`` span that parked a long poll for 20 s carries a
  ``transport.hold`` child for the parked stretch, so its *self* time
  is the actual serving work, not the wait.  Sibling overlap is not
  deduplicated (instantaneous parents make it moot in practice);
  self-time is clamped at zero.
* **Wall compute** — the ``wall_seconds`` tag some spans attach
  (generation, apply).  Spans like ``host.generate`` are
  *instantaneous in sim-time* (the kernel charges CPU separately), so
  their cost only shows up on this axis.  Wall tags are per-span
  exclusive measurements already; no child subtraction applies.

A :class:`Profile` is one aggregation pass over finished spans: a
weighted call tree keyed by span-kind path (``host.generate →
host.serve → relay.apply → ...``), per-kind and per-node rollups, and
collapsed-stack lines ready for the flame-graph exporters in
:mod:`repro.obs.export`.  :class:`Profiler` is the continuous front
end — it wraps a live tracer and snapshots windows of it on demand
(the SLO engine, ``repro top``, and the flight recorder all pull from
one).  Like the tracer itself, everything here is strictly opt-in and
off the wire: profiling a session changes no protocol bytes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .trace import Span, Tracer

__all__ = ["FrameStat", "Profile", "Profiler", "build_profile", "render_profile_summary"]


class FrameStat:
    """One node of the weighted call tree (a span-kind path prefix)."""

    __slots__ = ("name", "count", "inclusive", "self_seconds", "wall_seconds", "children")

    def __init__(self, name: str):
        self.name = name
        #: Finished spans aggregated at this path.
        self.count = 0
        #: Total sim-time the spans covered (children included).
        self.inclusive = 0.0
        #: Total sim-time exclusive of direct children.
        self.self_seconds = 0.0
        #: Total wall compute the spans' ``wall_seconds`` tags reported.
        self.wall_seconds = 0.0
        self.children: Dict[str, "FrameStat"] = {}

    def child(self, name: str) -> "FrameStat":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = FrameStat(name)
        return node

    def to_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "name": self.name,
            "count": self.count,
            "inclusive": self.inclusive,
            "self": self.self_seconds,
            "wall": self.wall_seconds,
        }
        if self.children:
            row["children"] = [
                self.children[name].to_dict() for name in sorted(self.children)
            ]
        return row

    def __repr__(self):
        return "FrameStat(%s: n=%d self=%.6fs wall=%.6fs)" % (
            self.name,
            self.count,
            self.self_seconds,
            self.wall_seconds,
        )


def _span_list(source) -> List[Span]:
    if isinstance(source, Tracer):
        return source.spans
    return list(source)


class Profile:
    """One aggregation pass over a set of finished spans."""

    def __init__(self, spans: Iterable[Span], since: float = 0.0):
        finished = [
            span for span in _span_list(spans) if span.finished and span.start >= since
        ]
        self.since = since
        #: ``(span, sim_self_seconds, wall_seconds)`` per finished span.
        self.records: List[Tuple[Span, float, float]] = []
        by_id: Dict[str, Span] = {span.span_id: span for span in finished}
        by_parent: Dict[str, List[Span]] = {}
        for span in finished:
            if span.parent_id is not None:
                by_parent.setdefault(span.parent_id, []).append(span)
        for span in finished:
            child_overlap = 0.0
            for child in by_parent.get(span.span_id, ()):
                overlap = min(child.end, span.end) - max(child.start, span.start)
                if overlap > 0.0:
                    child_overlap += overlap
            span.child_seconds = child_overlap
            wall = float(span.tags.get("wall_seconds", 0.0) or 0.0)
            self.records.append((span, span.self_seconds, wall))
        #: The weighted call tree, keyed by span-kind path from the root.
        self.root = FrameStat("")
        self._paths: Dict[str, Tuple[str, ...]] = {}
        for span, self_seconds, wall in self.records:
            frame = self.root
            for name in self._path(span, by_id):
                frame = frame.child(name)
            frame.count += 1
            frame.inclusive += span.duration
            frame.self_seconds += self_seconds
            frame.wall_seconds += wall

    def _path(self, span: Span, by_id: Dict[str, Span]) -> Tuple[str, ...]:
        cached = self._paths.get(span.span_id)
        if cached is not None:
            return cached
        names: List[str] = [span.name]
        cursor = span
        # Walk the parent chain; a parent outside the window roots here.
        while cursor.parent_id is not None:
            parent = by_id.get(cursor.parent_id)
            if parent is None:
                break
            names.append(parent.name)
            cursor = parent
        path = tuple(reversed(names))
        self._paths[span.span_id] = path
        return path

    # -- rollups ------------------------------------------------------------------------

    def by_kind(self) -> Dict[str, Dict[str, float]]:
        """Per span-kind totals: ``{name: {count, inclusive, self, wall}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for span, self_seconds, wall in self.records:
            row = out.get(span.name)
            if row is None:
                row = out[span.name] = {
                    "count": 0,
                    "inclusive": 0.0,
                    "self": 0.0,
                    "wall": 0.0,
                }
            row["count"] += 1
            row["inclusive"] += span.duration
            row["self"] += self_seconds
            row["wall"] += wall
        return out

    def by_node(self) -> Dict[str, Dict[str, float]]:
        """Per pipeline-node totals (host, each relay, each member)."""
        out: Dict[str, Dict[str, float]] = {}
        for span, self_seconds, wall in self.records:
            node = span.node or "?"
            row = out.get(node)
            if row is None:
                row = out[node] = {"count": 0, "self": 0.0, "wall": 0.0}
            row["count"] += 1
            row["self"] += self_seconds
            row["wall"] += wall
        return out

    def self_samples(
        self, suffix: str, by_node: bool = True, wall: bool = False
    ) -> Dict[str, List[float]]:
        """Per-span cost samples for spans whose kind ends in ``suffix``,
        grouped by node (the SLO engine's percentile feed).  ``wall``
        selects the wall-compute axis instead of sim self-time."""
        out: Dict[str, List[float]] = {}
        for span, self_seconds, wall_seconds in self.records:
            if not span.name.endswith(suffix):
                continue
            key = (span.node or "?") if by_node else span.name
            out.setdefault(key, []).append(wall_seconds if wall else self_seconds)
        return out

    def stacks(self) -> List[Tuple[Tuple[str, ...], float, float, int]]:
        """Flattened call-tree rows: ``(path, self_s, wall_s, count)``,
        depth-first in sorted child order (deterministic exports)."""
        rows: List[Tuple[Tuple[str, ...], float, float, int]] = []

        def walk(frame: FrameStat, prefix: Tuple[str, ...]) -> None:
            path = prefix + (frame.name,) if frame.name else prefix
            if frame.count and path:
                rows.append((path, frame.self_seconds, frame.wall_seconds, frame.count))
            for name in sorted(frame.children):
                walk(frame.children[name], path)

        walk(self.root, ())
        return rows

    def collapsed(self, wall: bool = False) -> List[str]:
        """Collapsed-stack lines (``frame;frame value``), value in whole
        microseconds — the Brendan-Gregg flame-graph input format."""
        lines: List[str] = []
        for path, self_seconds, wall_seconds, _count in self.stacks():
            value = wall_seconds if wall else self_seconds
            micros = int(round(value * 1e6))
            if micros > 0:
                lines.append("%s %d" % (";".join(path), micros))
        return lines

    def total_self(self) -> float:
        return sum(self_seconds for _s, self_seconds, _w in self.records)

    def total_wall(self) -> float:
        return sum(wall for _s, _self, wall in self.records)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready summary (what the flight recorder embeds)."""
        return {
            "since": self.since,
            "spans": len(self.records),
            "total_self_seconds": self.total_self(),
            "total_wall_seconds": self.total_wall(),
            "kinds": self.by_kind(),
            "collapsed": self.collapsed(),
            "collapsed_wall": self.collapsed(wall=True),
        }

    def __repr__(self):
        return "Profile(%d spans, %.6fs self, %.6fs wall)" % (
            len(self.records),
            self.total_self(),
            self.total_wall(),
        )


def build_profile(source, since: float = 0.0) -> Profile:
    """Aggregate ``source`` (a Tracer or span iterable) into a Profile."""
    if isinstance(source, Tracer) and since > 0.0:
        return Profile(source.spans_since(since), since=since)
    return Profile(_span_list(source), since=since)


class Profiler:
    """The continuous-profiling front end over a live tracer.

    Wraps the session tracer and snapshots :class:`Profile` windows on
    demand; the SLO engine, ``repro top``, and the flight recorder all
    share one instance.  Holding a Profiler costs nothing per span —
    aggregation happens only when a consumer asks.
    """

    def __init__(self, tracer: Tracer):
        self.tracer = tracer

    def profile(self, since: float = 0.0) -> Profile:
        """Aggregate the spans that started at or after ``since``."""
        return build_profile(self.tracer, since=since)

    def window(self, now: float, window: float) -> Profile:
        """The trailing-window profile ending at sim-time ``now``."""
        return self.profile(since=max(0.0, now - window))

    def __repr__(self):
        return "Profiler(%r)" % (self.tracer,)


def render_profile_summary(profile: Profile, title: str = "Profile") -> str:
    """A fixed-width per-kind cost table (the ``repro top`` footer)."""
    lines = [title, "=" * len(title)]
    kinds = profile.by_kind()
    if not kinds:
        lines.append("(no finished spans)")
        return "\n".join(lines)
    lines.append(
        "%-20s %8s %12s %12s %12s" % ("kind", "count", "incl(ms)", "self(ms)", "wall(ms)")
    )
    for name in sorted(kinds, key=lambda k: -kinds[k]["self"]):
        row = kinds[name]
        lines.append(
            "%-20s %8d %12.3f %12.3f %12.3f"
            % (
                name,
                row["count"],
                row["inclusive"] * 1e3,
                row["self"] * 1e3,
                row["wall"] * 1e3,
            )
        )
    return "\n".join(lines)
