"""Span and event exporters: JSONL dumps and Chrome trace-event files.

Formats and audiences:

* **Span JSONL** — one :meth:`~repro.obs.trace.Span.to_dict` object per
  line; trivially greppable/`jq`-able, the format the nightly benchmark
  artifacts keep.
* **Event JSONL** — one :meth:`~repro.obs.events.Event.to_dict` object
  per line, in emission order; the persistent form of ``repro logs``.
* **Chrome trace-event JSON** — loadable in ``chrome://tracing`` /
  Perfetto.  Each span becomes a complete ("X") event; pipeline nodes
  (host, relays, participants) map to named threads so a relayed
  session renders as a per-tier flame chart.  Sim-time seconds map to
  the format's microsecond timestamps.
* **Collapsed stacks** — ``frame;frame value`` lines weighted by span
  *self* time (Brendan Gregg's ``flamegraph.pl`` input), built from a
  :class:`~repro.obs.profile.Profile`'s call tree.
* **Speedscope JSON** — one file, two profiles: the sim self-time axis
  and the wall-compute axis, loadable at https://www.speedscope.app.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .events import EventBus
from .profile import Profile, build_profile
from .trace import Span, Tracer

__all__ = [
    "chrome_trace",
    "collapsed_stacks",
    "events_to_jsonl",
    "spans_to_jsonl",
    "speedscope_profile",
    "write_chrome_trace",
    "write_collapsed",
    "write_events_jsonl",
    "write_spans_jsonl",
    "write_speedscope",
]


def _spans(source) -> List[Span]:
    if isinstance(source, Tracer):
        return source.spans
    return list(source)


def spans_to_jsonl(source) -> str:
    """Serialize spans (a Tracer or iterable) to JSON-lines text."""
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True) for span in _spans(source))


def write_spans_jsonl(source, path: str) -> int:
    """Write the JSONL dump to ``path``; returns the span count."""
    spans = _spans(source)
    with open(path, "w") as handle:
        text = spans_to_jsonl(spans)
        if text:
            handle.write(text + "\n")
    return len(spans)


def _events(source) -> List:
    if isinstance(source, EventBus):
        return source.events()
    return list(source)


def events_to_jsonl(source) -> str:
    """Serialize events (an EventBus or iterable) to JSON-lines text."""
    return "\n".join(
        json.dumps(event.to_dict(), sort_keys=True) for event in _events(source)
    )


def write_events_jsonl(source, path: str) -> int:
    """Write the event JSONL dump to ``path``; returns the event count."""
    events = _events(source)
    with open(path, "w") as handle:
        text = events_to_jsonl(events)
        if text:
            handle.write(text + "\n")
    return len(events)


def chrome_trace(source) -> Dict[str, object]:
    """Build a ``chrome://tracing``-loadable trace-event document.

    All spans share pid 1 (one simulated deployment); each pipeline
    node gets its own tid plus a ``thread_name`` metadata record.  Span
    tags and identity ride along in ``args`` so the original trace tree
    is recoverable from the export alone.
    """
    spans = _spans(source)
    tids: Dict[str, int] = {}
    events: List[Dict[str, object]] = []
    for span in spans:
        node = span.node or "?"
        tid = tids.get(node)
        if tid is None:
            tid = tids[node] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": node},
                }
            )
        args: Dict[str, object] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.tags)
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "name": span.name,
                "cat": span.trace_id,
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(source, path: str) -> int:
    """Write the Chrome trace-event document to ``path``; returns the
    number of span events written (metadata records excluded)."""
    document = chrome_trace(source)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return sum(1 for event in document["traceEvents"] if event["ph"] == "X")


def _profile(source, since: float = 0.0) -> Profile:
    if isinstance(source, Profile):
        return source
    return build_profile(source, since=since)


def collapsed_stacks(source, since: float = 0.0, wall: bool = False) -> str:
    """Collapsed-stack flame-graph text from a Tracer, span iterable,
    or prebuilt :class:`~repro.obs.profile.Profile`.  ``wall`` weights
    frames by wall compute instead of sim self-time."""
    return "\n".join(_profile(source, since).collapsed(wall=wall))


def write_collapsed(source, path: str, since: float = 0.0, wall: bool = False) -> int:
    """Write collapsed stacks to ``path``; returns the line count."""
    lines = _profile(source, since).collapsed(wall=wall)
    with open(path, "w") as handle:
        if lines:
            handle.write("\n".join(lines) + "\n")
    return len(lines)


def speedscope_profile(
    source, since: float = 0.0, name: str = "repro profile"
) -> Dict[str, object]:
    """Build a speedscope-JSON document with both cost axes.

    Profile 0 weights stacks by **sim self-time**, profile 1 by **wall
    compute** (the ``wall_seconds`` tags) — flip between them in the
    speedscope UI.  Weights are whole microseconds; zero-weight stacks
    are dropped per axis.
    """
    profile = _profile(source, since)
    frames: List[Dict[str, str]] = []
    frame_index: Dict[str, int] = {}

    def index_of(frame_name: str) -> int:
        idx = frame_index.get(frame_name)
        if idx is None:
            idx = frame_index[frame_name] = len(frames)
            frames.append({"name": frame_name})
        return idx

    stacks = profile.stacks()
    profiles: List[Dict[str, object]] = []
    for axis_name, wall in (("sim self-time", False), ("wall compute", True)):
        samples: List[List[int]] = []
        weights: List[int] = []
        total = 0
        for path, self_seconds, wall_seconds, _count in stacks:
            micros = int(round((wall_seconds if wall else self_seconds) * 1e6))
            if micros <= 0:
                continue
            samples.append([index_of(frame) for frame in path])
            weights.append(micros)
            total += micros
        profiles.append(
            {
                "type": "sampled",
                "name": axis_name,
                "unit": "microseconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        )
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro.obs.export",
        "shared": {"frames": frames},
        "profiles": profiles,
    }


def write_speedscope(
    source, path: str, since: float = 0.0, name: str = "repro profile"
) -> int:
    """Write the speedscope document to ``path``; returns the total
    sample count across both axes."""
    document = speedscope_profile(source, since=since, name=name)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return sum(len(profile["samples"]) for profile in document["profiles"])
