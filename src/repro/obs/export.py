"""Span and event exporters: JSONL dumps and Chrome trace-event files.

Formats and audiences:

* **Span JSONL** — one :meth:`~repro.obs.trace.Span.to_dict` object per
  line; trivially greppable/`jq`-able, the format the nightly benchmark
  artifacts keep.
* **Event JSONL** — one :meth:`~repro.obs.events.Event.to_dict` object
  per line, in emission order; the persistent form of ``repro logs``.
* **Chrome trace-event JSON** — loadable in ``chrome://tracing`` /
  Perfetto.  Each span becomes a complete ("X") event; pipeline nodes
  (host, relays, participants) map to named threads so a relayed
  session renders as a per-tier flame chart.  Sim-time seconds map to
  the format's microsecond timestamps.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .events import EventBus
from .trace import Span, Tracer

__all__ = [
    "chrome_trace",
    "events_to_jsonl",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_spans_jsonl",
]


def _spans(source) -> List[Span]:
    if isinstance(source, Tracer):
        return source.spans
    return list(source)


def spans_to_jsonl(source) -> str:
    """Serialize spans (a Tracer or iterable) to JSON-lines text."""
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True) for span in _spans(source))


def write_spans_jsonl(source, path: str) -> int:
    """Write the JSONL dump to ``path``; returns the span count."""
    spans = _spans(source)
    with open(path, "w") as handle:
        text = spans_to_jsonl(spans)
        if text:
            handle.write(text + "\n")
    return len(spans)


def _events(source) -> List:
    if isinstance(source, EventBus):
        return source.events()
    return list(source)


def events_to_jsonl(source) -> str:
    """Serialize events (an EventBus or iterable) to JSON-lines text."""
    return "\n".join(
        json.dumps(event.to_dict(), sort_keys=True) for event in _events(source)
    )


def write_events_jsonl(source, path: str) -> int:
    """Write the event JSONL dump to ``path``; returns the event count."""
    events = _events(source)
    with open(path, "w") as handle:
        text = events_to_jsonl(events)
        if text:
            handle.write(text + "\n")
    return len(events)


def chrome_trace(source) -> Dict[str, object]:
    """Build a ``chrome://tracing``-loadable trace-event document.

    All spans share pid 1 (one simulated deployment); each pipeline
    node gets its own tid plus a ``thread_name`` metadata record.  Span
    tags and identity ride along in ``args`` so the original trace tree
    is recoverable from the export alone.
    """
    spans = _spans(source)
    tids: Dict[str, int] = {}
    events: List[Dict[str, object]] = []
    for span in spans:
        node = span.node or "?"
        tid = tids.get(node)
        if tid is None:
            tid = tids[node] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": node},
                }
            )
        args: Dict[str, object] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.tags)
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "name": span.name,
                "cat": span.trace_id,
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(source, path: str) -> int:
    """Write the Chrome trace-event document to ``path``; returns the
    number of span events written (metadata records excluded)."""
    document = chrome_trace(source)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return sum(1 for event in document["traceEvents"] if event["ph"] == "X")
