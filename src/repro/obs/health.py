"""The SLO engine: declarative health rules over a live session.

RCB's whole value proposition is *real time*: a participant whose view
lags the host has silently lost the session even though every poll
returns 200.  Bozdag et al.'s push-vs-pull comparison makes **data
coherence / staleness** the headline metric for exactly this polling
architecture, so health here is defined the same way: how far behind
the host's document state is each member, and is the machinery that
keeps that gap small (deltas, relays) actually winning.

A :class:`SloRule` is declarative — a named windowed statistic, a WARN
threshold, and a BREACH threshold — and yields one value per *subject*
(a member id, a relay tier, or the whole session).  The built-in rules:

* ``staleness_p95`` — per member: the p95 of ``host doc_time − member
  acknowledged doc_time`` (sim-ms), sampled over a sliding sim-time
  window.
* ``resync_rate`` — session-wide: ``resync.forced`` events per minute
  over the window (a resync storm eats the delta win).
* ``delta_fallback_ratio`` — session-wide: fallbacks ÷ content
  responses from the metrics registry.
* ``tier_sync_p95`` — per relay tier: the merged sync-latency p95
  against the tier's delay budget.

The :class:`HealthMonitor` samples and evaluates.  Verdicts are OK /
WARN / BREACH with **breach→recovery hysteresis**: once a subject
breaches, it reports (at least) WARN until the rule has evaluated OK
``recovery_checks`` consecutive times — a flapping metric cannot flap
the verdict.  BREACH/recovery *transitions* are emitted on the event
bus (``slo.breach`` / ``slo.recover``) and a breach fires the flight
recorder, so the black box always contains the evidence window that
produced the verdict.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .events import (
    RESYNC_FORCED,
    SHARD_PROMOTE,
    SLO_BREACH,
    SLO_RECOVER,
    TRANSPORT_SWITCH,
    EventBus,
)
from .registry import percentile

__all__ = [
    "BREACH",
    "HealthMonitor",
    "HealthReport",
    "OK",
    "SloRule",
    "Verdict",
    "WARN",
    "default_rules",
    "fleet_rules",
    "perf_budget_rules",
    "shard_rules",
    "transport_rules",
]

OK = "OK"
WARN = "WARN"
BREACH = "BREACH"

_RANK = {OK: 0, WARN: 1, BREACH: 2}

#: Subject naming: members use their id, tiers "tier:<depth>", and the
#: whole deployment this constant.
SESSION_SUBJECT = "session"


class SloRule:
    """One declarative service-level objective.

    ``values`` is a callable ``(monitor) -> Dict[subject, value]``; each
    subject is judged independently: OK below ``warn``, WARN in
    ``[warn, breach)``, BREACH at or above ``breach`` (all rules are
    "smaller is better", which every built-in statistic is).
    """

    def __init__(
        self,
        name: str,
        values: Callable[["HealthMonitor"], Dict[str, float]],
        warn: float,
        breach: float,
        unit: str = "",
        description: str = "",
    ):
        if breach < warn:
            raise ValueError("breach threshold must be >= warn threshold")
        self.name = name
        self.values = values
        self.warn = warn
        self.breach = breach
        self.unit = unit
        self.description = description

    def grade(self, value: float) -> str:
        if value >= self.breach:
            return BREACH
        if value >= self.warn:
            return WARN
        return OK

    def __repr__(self):
        return "SloRule(%s: warn>=%g, breach>=%g %s)" % (
            self.name,
            self.warn,
            self.breach,
            self.unit,
        )


class Verdict:
    """One (rule, subject) judgement at one check."""

    __slots__ = ("rule", "subject", "level", "value", "warn", "breach", "unit", "t", "detail")

    def __init__(self, rule, subject, level, value, warn, breach, unit, t, detail=""):
        self.rule = rule
        self.subject = subject
        self.level = level
        self.value = value
        self.warn = warn
        self.breach = breach
        self.unit = unit
        self.t = t
        self.detail = detail

    def to_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "rule": self.rule,
            "subject": self.subject,
            "level": self.level,
            "value": self.value,
            "warn": self.warn,
            "breach": self.breach,
            "unit": self.unit,
            "t": self.t,
        }
        if self.detail:
            row["detail"] = self.detail
        return row

    def __repr__(self):
        return "Verdict(%s %s/%s %.3f%s)" % (
            self.level,
            self.rule,
            self.subject,
            self.value,
            self.unit,
        )


class HealthReport:
    """Every verdict from one check, plus the overall level."""

    def __init__(self, t: float, verdicts: List[Verdict]):
        self.t = t
        self.verdicts = verdicts

    @property
    def level(self) -> str:
        worst = OK
        for verdict in self.verdicts:
            if _RANK[verdict.level] > _RANK[worst]:
                worst = verdict.level
        return worst

    @property
    def ok(self) -> bool:
        return self.level == OK

    def breaches(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.level == BREACH]

    def warnings(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.level == WARN]

    def breached_subjects(self) -> List[str]:
        """Affected members/tiers, deduplicated, in verdict order."""
        seen: List[str] = []
        for verdict in self.breaches():
            if verdict.subject not in seen:
                seen.append(verdict.subject)
        return seen

    def to_dict(self) -> Dict[str, object]:
        return {
            "t": self.t,
            "level": self.level,
            "verdicts": [verdict.to_dict() for verdict in self.verdicts],
        }

    def __repr__(self):
        return "HealthReport(%s, %d verdicts at %.3fs)" % (
            self.level,
            len(self.verdicts),
            self.t,
        )


# -- built-in rule statistics ---------------------------------------------------------


def _staleness_values(monitor: "HealthMonitor") -> Dict[str, float]:
    return {
        member: monitor.staleness_p95(member)
        for member in monitor.session.member_times()
    }


def _resync_rate_values(monitor: "HealthMonitor") -> Dict[str, float]:
    now = monitor.now
    window = monitor.window
    if monitor.events is not None:
        count = monitor.events.count(type=RESYNC_FORCED, since=now - window)
        minutes = max(window, 1e-9) / 60.0
    else:
        # No bus: fall back to the registry's all-time resync counters
        # over the whole monitored interval.
        count = sum(
            inst.value
            for inst in monitor.registry.collect()
            if inst.name == "snippet_delta_failures"
        )
        minutes = max(now - monitor.started, 1e-9) / 60.0
    return {SESSION_SUBJECT: count / minutes}


def _delta_fallback_values(monitor: "HealthMonitor") -> Dict[str, float]:
    fallbacks = responses = 0
    for inst in monitor.registry.collect():
        if inst.name == "agent_delta_fallbacks":
            fallbacks += inst.value
        elif inst.name in ("agent_delta_responses", "agent_full_responses"):
            responses += inst.value
    return {SESSION_SUBJECT: fallbacks / responses if responses else 0.0}


def _tier_sync_values(monitor: "HealthMonitor") -> Dict[str, float]:
    if monitor.session.branching is None:
        return {}
    tiers = monitor.session.relay_summary().get("tiers") or {}
    return {
        "tier:%d" % depth: tier.get("sync_p95", 0.0) for depth, tier in tiers.items()
    }


def default_rules(
    staleness_warn_ms: float = 2500.0,
    staleness_breach_ms: float = 5000.0,
    resync_warn_per_min: float = 4.0,
    resync_breach_per_min: float = 10.0,
    fallback_warn_ratio: float = 0.3,
    fallback_breach_ratio: float = 0.6,
    tier_sync_warn_s: float = 2.0,
    tier_sync_breach_s: float = 5.0,
) -> List[SloRule]:
    """The standard rule set; thresholds are keyword-tunable."""
    return [
        SloRule(
            "staleness_p95",
            _staleness_values,
            warn=staleness_warn_ms,
            breach=staleness_breach_ms,
            unit="ms",
            description="p95 member staleness vs the host document state",
        ),
        SloRule(
            "resync_rate",
            _resync_rate_values,
            warn=resync_warn_per_min,
            breach=resync_breach_per_min,
            unit="/min",
            description="forced full-envelope resyncs per minute",
        ),
        SloRule(
            "delta_fallback_ratio",
            _delta_fallback_values,
            warn=fallback_warn_ratio,
            breach=fallback_breach_ratio,
            unit="",
            description="delta fallbacks over content responses",
        ),
        SloRule(
            "tier_sync_p95",
            _tier_sync_values,
            warn=tier_sync_warn_s,
            breach=tier_sync_breach_s,
            unit="s",
            description="per-tier sync latency p95 vs the delay budget",
        ),
    ]


def _transport_switch_values(monitor: "HealthMonitor") -> Dict[str, float]:
    if monitor.events is None:
        return {}
    count = monitor.events.count(
        type=TRANSPORT_SWITCH, since=monitor.now - monitor.window
    )
    minutes = max(monitor.window, 1e-9) / 60.0
    return {SESSION_SUBJECT: count / minutes}


def transport_rules(
    switch_warn_per_min: float = 6.0,
    switch_breach_per_min: float = 20.0,
) -> List[SloRule]:
    """Add-on rules for deployments running the adaptive transport
    controller (append to :func:`default_rules`; not part of it, so
    controller-free sessions see no new subjects).  A controller that
    keeps switching members is itself an SLO violation — dwell
    hysteresis should make switches rare after convergence."""
    return [
        SloRule(
            "transport_switch_rate",
            _transport_switch_values,
            warn=switch_warn_per_min,
            breach=switch_breach_per_min,
            unit="/min",
            description="adaptive transport mode switches per minute",
        ),
    ]


def _serve_self_values(monitor: "HealthMonitor") -> Dict[str, float]:
    if monitor.profiler is None:
        return {}
    profile = monitor.window_profile()
    return {
        node: percentile(samples, 95) * 1e3
        for node, samples in profile.self_samples(".serve").items()
    }


def _generate_wall_values(monitor: "HealthMonitor") -> Dict[str, float]:
    if monitor.profiler is None:
        return {}
    profile = monitor.window_profile()
    return {
        node: percentile(samples, 95) * 1e3
        for node, samples in profile.self_samples(".generate", wall=True).items()
    }


def _member_uplink_values(monitor: "HealthMonitor") -> Dict[str, float]:
    if monitor.attribution is None:
        return {}
    return monitor.attribution.member_rates(monitor.now)


def perf_budget_rules(
    serve_self_warn_ms: float = 100.0,
    serve_self_breach_ms: float = 500.0,
    generate_wall_warn_ms: float = 10.0,
    generate_wall_breach_ms: float = 50.0,
    uplink_warn_bytes_s: float = 65536.0,
    uplink_breach_bytes_s: float = 262144.0,
) -> List[SloRule]:
    """Perf-budget rules over *attributed* quantities — the continuous
    profiler's sim self-times and the byte sink's per-member rates.
    Each statistic yields no subjects when its feed (``profiler`` /
    ``attribution``) is not wired into the monitor, so appending these
    to an unprofiled session changes nothing."""
    return [
        SloRule(
            "serve_self_p95",
            _serve_self_values,
            warn=serve_self_warn_ms,
            breach=serve_self_breach_ms,
            unit="ms",
            description="p95 serve self-time per node (holds excluded)",
        ),
        SloRule(
            "generate_wall_p95",
            _generate_wall_values,
            warn=generate_wall_warn_ms,
            breach=generate_wall_breach_ms,
            unit="ms",
            description="p95 wall compute per generation, per node",
        ),
        SloRule(
            "member_uplink_bytes",
            _member_uplink_values,
            warn=uplink_warn_bytes_s,
            breach=uplink_breach_bytes_s,
            unit="B/s",
            description="attributed downlink bytes/s per member",
        ),
    ]


def _fleet_staleness_values(monitor: "HealthMonitor") -> Dict[str, float]:
    if monitor.fleet is None:
        return {}
    return monitor.fleet.member_staleness_p95()


def _telemetry_overhead_values(monitor: "HealthMonitor") -> Dict[str, float]:
    if monitor.fleet is None:
        return {}
    return {SESSION_SUBJECT: monitor.fleet.telemetry_overhead_ratio()}


def fleet_rules(
    staleness_warn_ms: float = 2500.0,
    staleness_breach_ms: float = 5000.0,
    overhead_warn_ratio: float = 0.02,
    overhead_breach_ratio: float = 0.05,
) -> List[SloRule]:
    """Add-on rules over the fleet telemetry plane's *client-measured*
    digests.  ``client_staleness_p95`` is the true end-to-end staleness
    each member observed at apply time — unlike ``staleness_p95``, which
    infers it host-side and aliases to near-zero under long-poll holds.
    ``telemetry_overhead_ratio`` polices the plane itself: piggybacked
    digest bytes must stay a small fraction of content bytes.  Both
    statistics yield no subjects when the monitor has no fleet view, so
    appending these to a telemetry-free session changes nothing."""
    return [
        SloRule(
            "client_staleness_p95",
            _fleet_staleness_values,
            warn=staleness_warn_ms,
            breach=staleness_breach_ms,
            unit="ms",
            description="client-measured p95 staleness at apply time",
        ),
        SloRule(
            "telemetry_overhead_ratio",
            _telemetry_overhead_values,
            warn=overhead_warn_ratio,
            breach=overhead_breach_ratio,
            unit="",
            description="piggybacked digest bytes over content bytes",
        ),
    ]


def _shard_skew_values(monitor: "HealthMonitor") -> Dict[str, float]:
    if monitor.pool is None:
        return {}
    load = monitor.pool.directory.load()
    members = sum(load.values())
    if not load or not members:
        return {}
    ideal = members / len(load)
    return {
        "shard:%s" % shard_id: count / ideal for shard_id, count in load.items()
    }


def _shard_promote_values(monitor: "HealthMonitor") -> Dict[str, float]:
    if monitor.pool is None or monitor.events is None:
        return {}
    count = monitor.events.count(
        type=SHARD_PROMOTE, since=monitor.now - monitor.window
    )
    minutes = max(monitor.window, 1e-9) / 60.0
    return {SESSION_SUBJECT: count / minutes}


def shard_rules(
    skew_warn_ratio: float = 1.5,
    skew_breach_ratio: float = 2.5,
    promote_warn_per_min: float = 2.0,
    promote_breach_per_min: float = 6.0,
) -> List[SloRule]:
    """Add-on rules for sessions serving through an
    :class:`~repro.core.shard.AgentPool`.  ``shard_load_skew`` grades
    each instance's assigned members against the even share (the
    bounded-load placement should hold it near 1); a promotion storm —
    repeated host-death failovers inside one window — is itself an SLO
    violation.  Both statistics yield no subjects when the monitor has
    no pool, so appending these to a pool-free session changes
    nothing."""
    return [
        SloRule(
            "shard_load_skew",
            _shard_skew_values,
            warn=skew_warn_ratio,
            breach=skew_breach_ratio,
            unit="x",
            description="per-shard members over the even share",
        ),
        SloRule(
            "shard_promote_rate",
            _shard_promote_values,
            warn=promote_warn_per_min,
            breach=promote_breach_per_min,
            unit="/min",
            description="host-death failover promotions per minute",
        ),
    ]


class HealthMonitor:
    """Samples a session's health signals and evaluates the SLO rules.

    ``sample()`` records one staleness observation per member (pruned to
    the sliding sim-time ``window``) and mirrors the current value into
    the registry (``health_staleness_ms`` gauges).  ``check()`` grades
    every rule with hysteresis and returns a :class:`HealthReport`;
    :meth:`run` is a generator process doing both on a cadence.
    """

    def __init__(
        self,
        session,
        events: Optional[EventBus] = None,
        rules: Optional[List[SloRule]] = None,
        window: float = 30.0,
        recorder=None,
        recovery_checks: int = 2,
        sample_interval: float = 0.5,
        profiler=None,
        attribution=None,
        fleet=None,
        pool=None,
    ):
        self.session = session
        self.events = events if events is not None else session.events
        #: Continuous-profiling and byte-attribution feeds for the
        #: perf-budget rules; None keeps those rules subject-free.
        self.profiler = profiler
        self.attribution = (
            attribution
            if attribution is not None
            else getattr(session, "attribution", None)
        )
        #: Fleet telemetry view for the client-measured rules.
        self.fleet = fleet if fleet is not None else getattr(session, "fleet", None)
        #: Agent pool feed for the shard rules (an
        #: :class:`~repro.core.shard.AgentPool` registers itself on the
        #: session as ``session.pool``).
        self.pool = pool if pool is not None else getattr(session, "pool", None)
        if rules is None:
            rules = default_rules()
            if self.profiler is not None or self.attribution is not None:
                rules = rules + perf_budget_rules()
            if self.fleet is not None:
                rules = rules + fleet_rules()
            if self.pool is not None:
                rules = rules + shard_rules()
        self.rules = rules
        self.window = window
        self.recorder = recorder
        self.recovery_checks = recovery_checks
        self.sample_interval = sample_interval
        self.registry = session.metrics
        self.started = session.sim.now
        #: member -> (t, staleness_ms) samples within the window.
        self._staleness: Dict[str, Deque[Tuple[float, float]]] = {}
        #: (rule, subject) -> [breached?, consecutive OK evaluations].
        self._state: Dict[Tuple[str, str], List] = {}
        self.last_report: Optional[HealthReport] = None
        #: The worst level any check has ever produced (what a CI gate
        #: cares about: "did this run ever violate its SLOs").
        self.worst_level = OK
        #: One trailing-window profile per check sim-time (both profile
        #: rules share the aggregation pass).
        self._profile_cache: Optional[Tuple[float, object]] = None

    @property
    def now(self) -> float:
        return self.session.sim.now

    def window_profile(self):
        """The trailing-window :class:`~repro.obs.profile.Profile`,
        built at most once per sim-time (rules share it)."""
        now = self.now
        cached = self._profile_cache
        if cached is not None and cached[0] == now:
            return cached[1]
        profile = self.profiler.window(now, self.window)
        self._profile_cache = (now, profile)
        return profile

    # -- sampling ----------------------------------------------------------------------

    def staleness_ms(self) -> Dict[str, float]:
        """Instantaneous per-member staleness in sim-milliseconds."""
        host_time = self.session.agent.doc_time
        return {
            member: float(max(0, host_time - member_time))
            for member, member_time in self.session.member_times().items()
        }

    def sample(self) -> Dict[str, float]:
        """Record one staleness observation per member at sim-now."""
        now = self.now
        horizon = now - self.window
        current = self.staleness_ms()
        for member, value in current.items():
            ring = self._staleness.get(member)
            if ring is None:
                ring = self._staleness[member] = deque()
            ring.append((now, value))
            while ring and ring[0][0] < horizon:
                ring.popleft()
            self.registry.gauge("health_staleness_ms", node=member).set(value)
        # Members that left stop accumulating and age out of the window.
        for member in list(self._staleness):
            if member not in current:
                ring = self._staleness[member]
                while ring and ring[0][0] < horizon:
                    ring.popleft()
                if not ring:
                    del self._staleness[member]
        return current

    def staleness_p95(self, member: str) -> float:
        """The p95 staleness (ms) over the member's windowed samples.

        Prunes on read as well as on :meth:`sample`: an idle session can
        jump sim-time far past the window between samples (long-poll
        holds, quiet soak stretches), and a direct :meth:`check` must
        not grade on pre-jump observations that only *look* recent
        because nothing evicted them yet.
        """
        ring = self._staleness.get(member)
        if not ring:
            return 0.0
        horizon = self.now - self.window
        while ring and ring[0][0] < horizon:
            ring.popleft()
        if not ring:
            del self._staleness[member]
            return 0.0
        return percentile((value for _t, value in ring), 95)

    # -- evaluation --------------------------------------------------------------------

    def _graded(self, rule: SloRule, subject: str, raw: str) -> Tuple[str, str]:
        """Apply breach→recovery hysteresis; returns (level, detail)."""
        key = (rule.name, subject)
        state = self._state.get(key)
        if state is None:
            state = self._state[key] = [False, 0]
        breached, ok_streak = state
        if raw == BREACH:
            state[0], state[1] = True, 0
            return BREACH, ""
        if not breached:
            return raw, ""
        # Previously breached: hold the subject at WARN until the rule
        # has evaluated OK ``recovery_checks`` consecutive times.
        if raw == OK:
            state[1] = ok_streak + 1
            if state[1] >= self.recovery_checks:
                state[0], state[1] = False, 0
                return OK, ""
        else:
            state[1] = 0
        return WARN, "recovering"

    def check(self) -> HealthReport:
        """Evaluate every rule now; emits transitions, fires the recorder."""
        now = self.now
        previously_breached = {
            key for key, state in self._state.items() if state[0]
        }
        verdicts: List[Verdict] = []
        for rule in self.rules:
            for subject, value in sorted(rule.values(self).items()):
                level, detail = self._graded(rule, subject, rule.grade(value))
                verdicts.append(
                    Verdict(
                        rule.name,
                        subject,
                        level,
                        value,
                        rule.warn,
                        rule.breach,
                        rule.unit,
                        now,
                        detail,
                    )
                )
        report = HealthReport(now, verdicts)
        self.last_report = report
        if _RANK[report.level] > _RANK[self.worst_level]:
            self.worst_level = report.level
        self._emit_transitions(report, previously_breached)
        return report

    def _emit_transitions(self, report: HealthReport, previously_breached) -> None:
        for verdict in report.verdicts:
            key = (verdict.rule, verdict.subject)
            state = self._state.get(key)
            breached_now = bool(state and state[0])
            if breached_now and key not in previously_breached:
                if self.events is not None:
                    self.events.emit(
                        SLO_BREACH,
                        report.t,
                        node=verdict.subject,
                        rule=verdict.rule,
                        value=verdict.value,
                        breach=verdict.breach,
                        unit=verdict.unit,
                    )
                if self.recorder is not None:
                    self.recorder.trigger(
                        "slo-breach:%s@%s" % (verdict.rule, verdict.subject),
                        t=report.t,
                    )
            elif key in previously_breached and not breached_now:
                if self.events is not None:
                    self.events.emit(
                        SLO_RECOVER,
                        report.t,
                        node=verdict.subject,
                        rule=verdict.rule,
                        value=verdict.value,
                    )

    def run(self, interval: Optional[float] = None):
        """Generator process: sample + check forever on a cadence."""
        interval = interval if interval is not None else self.sample_interval
        sim = self.session.sim
        while True:
            self.sample()
            self.check()
            yield sim.timeout(interval)
