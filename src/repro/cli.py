"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``demo``
    A narrated minimal co-browsing session (host + one participant).
``experiment {fig6,fig7,fig8,table1,table2,table4,all}``
    Regenerate one of the paper's figures/tables and print it.
``scenario {maps,shop}``
    Run a usability scenario end-to-end and print the transcript.
``sites``
    List the 20 Table-1 sample sites with sizes and regions.
``trace``
    Run a traced relayed session and print the end-to-end span trees;
    optionally export JSONL / Chrome trace-event / flame-graph files
    (``--collapsed`` for flamegraph.pl, ``--speedscope`` for
    https://www.speedscope.app).
``metrics``
    Run a small instrumented session and dump the metrics registry
    (``--format json`` for the machine-readable snapshot).
``health``
    Run a monitored relayed session, evaluate the SLO rules, and print
    the verdict table.  ``--fail-relay`` injects a mid-session relay
    death; ``--check`` exits nonzero if any check BREACHed; ``--dump`` /
    ``--dump-on-breach`` write the flight recorder's black box;
    ``--format json`` emits the report as JSON.
``top``
    Run the monitored session with continuous profiling and wire-byte
    attribution attached, then print the fleet table: per-node
    self-time, wall compute, downlink bytes/s, transport mode, and
    health grade, plus the per-kind profile and per-member byte
    attribution tables.
``logs``
    Run the same monitored session and print the structured event tail,
    filterable by ``--type`` / ``--node``.
``fleet``
    Run the monitored session with the fleet telemetry plane enabled —
    every member accumulates a client-measured digest (apply latency,
    end-to-end staleness, resyncs, bytes, transport mode) piggybacked
    upstream inside its polls — then print the host-side fleet view:
    per-member / per-tier / fleet-wide rollups, detected stragglers,
    and the telemetry wire overhead.  ``--json PATH`` also writes the
    machine-readable fleet snapshot.
``shards``
    Run a sharded-serving session — an :class:`~repro.core.AgentPool`
    of consistent-hash-placed serving instances behind the session
    directory — and print the per-shard table (members, polls,
    doc_time, state).  ``--fail-shard`` injects a shard host death a
    few seconds in, exercising the standby promotion path.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of RCB: Real-time Collaborative Browsing (USENIX ATC 2009)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("demo", help="run a narrated minimal co-browsing session")

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's figures/tables"
    )
    experiment.add_argument(
        "target",
        choices=["fig6", "fig7", "fig8", "table1", "table2", "table4", "all"],
    )
    experiment.add_argument(
        "--repetitions",
        type=int,
        default=3,
        help="experiment rounds to average (paper: 5; default: 3)",
    )

    scenario = subparsers.add_parser("scenario", help="run a usability scenario")
    scenario.add_argument("which", choices=["maps", "shop"])

    subparsers.add_parser("sites", help="list the Table-1 sample sites")

    trace = subparsers.add_parser(
        "trace", help="trace a relayed co-browsing session end to end"
    )
    trace.add_argument(
        "--participants", type=int, default=6, help="session members (default: 6)"
    )
    trace.add_argument(
        "--branching", type=int, default=2, help="relay fan-out per node (default: 2)"
    )
    trace.add_argument(
        "--jsonl", metavar="PATH", help="write spans as JSON lines to PATH"
    )
    trace.add_argument(
        "--chrome",
        metavar="PATH",
        help="write a chrome://tracing-loadable trace-event file to PATH",
    )
    trace.add_argument(
        "--collapsed",
        metavar="PATH",
        help="write collapsed flame-graph stacks (flamegraph.pl input) to PATH",
    )
    trace.add_argument(
        "--speedscope",
        metavar="PATH",
        help="write a speedscope-JSON profile (both cost axes) to PATH",
    )

    metrics = subparsers.add_parser(
        "metrics", help="run an instrumented session and dump the metrics registry"
    )
    metrics.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default: text)",
    )

    health = subparsers.add_parser(
        "health", help="run a monitored session and print the SLO verdicts"
    )
    _add_monitored_session_args(health)
    health.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default: text)",
    )
    health.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any health check BREACHed during the run",
    )
    health.add_argument(
        "--dump",
        metavar="PATH",
        help="always write the flight recorder's black box (JSON) to PATH",
    )
    health.add_argument(
        "--dump-on-breach",
        metavar="PATH",
        help="write the black box to PATH only when the run BREACHed",
    )

    top = subparsers.add_parser(
        "top", help="run a profiled session and print the fleet cost table"
    )
    _add_monitored_session_args(top)
    top.add_argument(
        "--speedscope",
        metavar="PATH",
        help="also write the trailing-window speedscope profile to PATH",
    )

    logs = subparsers.add_parser(
        "logs", help="run a monitored session and print the structured event tail"
    )
    _add_monitored_session_args(logs)
    logs.add_argument("--type", dest="event_type", help="only events of this type")
    logs.add_argument("--node", help="only events from this component")
    logs.add_argument(
        "--limit", type=int, default=40, help="newest events to keep (default: 40)"
    )
    logs.add_argument(
        "--json", action="store_true", help="print events as JSON lines instead of a table"
    )

    fleet = subparsers.add_parser(
        "fleet", help="run a telemetry-enabled session and print the fleet view"
    )
    _add_monitored_session_args(fleet)
    fleet.add_argument(
        "--byte-cap",
        type=int,
        default=2048,
        help="per-poll telemetry digest byte cap (default: 2048)",
    )
    fleet.add_argument(
        "--json",
        metavar="PATH",
        help="also write the fleet view snapshot as JSON to PATH",
    )

    shards = subparsers.add_parser(
        "shards", help="run a sharded-serving session and print the shard table"
    )
    shards.add_argument(
        "--participants", type=int, default=24, help="session members (default: 24)"
    )
    shards.add_argument(
        "--shards", type=int, default=4, help="serving instances (default: 4)"
    )
    shards.add_argument(
        "--duration",
        type=float,
        default=10.0,
        help="edited sim-seconds after the first sync (default: 10)",
    )
    shards.add_argument(
        "--fail-shard",
        action="store_true",
        help="inject a shard host death a few seconds into the run",
    )
    return parser


def _add_monitored_session_args(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--participants", type=int, default=6, help="session members (default: 6)"
    )
    command.add_argument(
        "--branching", type=int, default=2, help="relay fan-out per node (default: 2)"
    )
    command.add_argument(
        "--duration",
        type=float,
        default=20.0,
        help="monitored sim-seconds after the first sync (default: 20)",
    )
    command.add_argument(
        "--fail-relay",
        action="store_true",
        help="inject a relay death a few seconds into the run",
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _demo()
    if args.command == "experiment":
        return _experiment(args.target, args.repetitions)
    if args.command == "scenario":
        return _scenario(args.which)
    if args.command == "sites":
        return _sites()
    if args.command == "trace":
        return _trace(args)
    if args.command == "metrics":
        return _metrics(args)
    if args.command == "health":
        return _health(args)
    if args.command == "top":
        return _top(args)
    if args.command == "logs":
        return _logs(args)
    if args.command == "fleet":
        return _fleet(args)
    if args.command == "shards":
        return _shards(args)
    return 2  # pragma: no cover - argparse enforces choices


def _demo() -> int:
    from .browser import Browser
    from .core import CoBrowsingSession
    from .net import LAN_PROFILE, Host, Network
    from .sim import Simulator
    from .webserver import OriginServer, StaticSite

    sim = Simulator()
    network = Network(sim)
    site = StaticSite("demo.example.com")
    site.add_page(
        "/",
        "<html><head><title>RCB demo</title></head>"
        "<body><h1>Hello from the host</h1></body></html>",
    )
    OriginServer(network, "demo.example.com", site.handle)
    host = Browser(Host(network, "host-pc", LAN_PROFILE, segment="lan"), name="host")
    guest = Browser(Host(network, "guest-pc", LAN_PROFILE, segment="lan"), name="guest")
    session = CoBrowsingSession(host)
    print("Host started RCB-Agent at %s" % session.agent.url)

    def scenario():
        snippet = yield from session.join(guest, participant_id="guest")
        print("Participant joined (address bar: %s)" % guest.address_bar)
        yield from session.host_navigate("http://demo.example.com/")
        waited = yield from session.wait_until_synced()
        print(
            "Synchronized %r to the participant in %.3f simulated seconds."
            % (guest.page.document.title, waited)
        )
        session.leave(snippet)

    sim.run_until_complete(sim.process(scenario()))
    print("Done. Try: python -m repro experiment fig6")
    return 0


def _sites() -> int:
    from .webserver import TABLE1_SITES, generate_table1_site

    print("%-4s %-16s %10s %-8s %14s" % ("#", "site", "size (KB)", "region", "objects"))
    for spec in TABLE1_SITES:
        site = generate_table1_site(spec)
        print(
            "%-4d %-16s %10.1f %-8s %14d"
            % (spec.index, spec.host, spec.page_kb, spec.region, len(site.objects))
        )
    return 0


def _experiment(target: str, repetitions: int) -> int:
    from .metrics import (
        render_figure_m1_m2,
        render_figure_m3_m4,
        render_table1,
        run_experiment,
    )

    started = time.perf_counter()
    wanted = (
        ["fig6", "fig7", "fig8", "table1", "table2", "table4"]
        if target == "all"
        else [target]
    )

    lan_cache = lan_non_cache = None
    if {"fig6", "fig8", "table1"} & set(wanted):
        lan_cache = run_experiment("lan", cache_mode=True, repetitions=repetitions)
    if {"fig8", "table1"} & set(wanted):
        lan_non_cache = run_experiment("lan", cache_mode=False, repetitions=repetitions)

    if "fig6" in wanted:
        print(render_figure_m1_m2(lan_cache.rows, "LAN"))
    if "fig7" in wanted:
        wan_cache = run_experiment("wan", cache_mode=True, repetitions=repetitions)
        print(render_figure_m1_m2(wan_cache.rows, "WAN"))
    if "fig8" in wanted:
        print(render_figure_m3_m4(lan_non_cache.rows, lan_cache.rows, "LAN"))
    if "table1" in wanted:
        distributions = {
            "M5 non-cache": lan_non_cache.distribution("m5_seconds"),
            "M5 cache": lan_cache.distribution("m5_seconds"),
            "M6": lan_non_cache.distribution("m6_seconds"),
        }
        print(render_table1(lan_non_cache.rows, lan_cache.rows, distributions))
    if "table2" in wanted:
        _run_table2()
    if "table4" in wanted:
        _run_table4()
    print("(%.1f s wall time)" % (time.perf_counter() - started))
    return 0


def _run_table2() -> None:
    from .workloads import ScenarioRunner, build_lan

    testbed = build_lan(deploy_sites=False, with_map=True, with_shop=True)
    runner = ScenarioRunner(testbed)
    results = testbed.run(
        runner.run_session(testbed.host_browser, testbed.participant_browser)
    )
    for task in results:
        print(
            "%-7s %-4s %s"
            % (task.task_id, "ok" if task.completed else "FAIL", task.description)
        )
    print("completed: %d / %d" % (sum(t.completed for t in results), len(results)))


def _run_table4() -> None:
    from .workloads import (
        LIKERT_LEVELS,
        analyze_questionnaire,
        generate_questionnaire_responses,
    )

    summaries = analyze_questionnaire(generate_questionnaire_responses())
    print(("%-4s" + "%22s" * 5 + "%8s %8s") % (("Q",) + LIKERT_LEVELS + ("Median", "Mode")))
    for summary in summaries:
        print(
            ("%-4s" + "%21.1f%%" * 5 + "%8s %8s")
            % ((summary.question,) + summary.percentages + (summary.median, summary.mode))
        )


def _build_traced_world(participants: int):
    """A LAN world with one demo origin and ``participants`` guests."""
    from .browser import Browser
    from .net import LAN_PROFILE, Host, Network
    from .sim import Simulator
    from .webserver import OriginServer, StaticSite

    sim = Simulator()
    network = Network(sim)
    site = StaticSite("traced.example.com")
    site.add_page(
        "/",
        "<html><head><title>Traced RCB session</title></head>"
        "<body><h1>Observability demo</h1>"
        "<p>This document's journey is being traced.</p></body></html>",
    )
    OriginServer(network, "traced.example.com", site.handle)
    host = Browser(Host(network, "host-pc", LAN_PROFILE, segment="lan"), name="host")
    guests = []
    for index in range(participants):
        pc = Host(network, "guest-pc-%d" % index, LAN_PROFILE, segment="lan")
        guests.append(Browser(pc, name="guest-%d" % index))
    return sim, host, guests


def _trace(args) -> int:
    from .core import CoBrowsingSession
    from .metrics import render_trace_summary
    from .obs import (
        Tracer,
        write_chrome_trace,
        write_collapsed,
        write_spans_jsonl,
        write_speedscope,
    )

    sim, host, guests = _build_traced_world(args.participants)
    tracer = Tracer()
    session = CoBrowsingSession(host, tracer=tracer)
    session.fanout_tree(branching=args.branching)

    def scenario():
        for guest in guests:
            yield from session.join(guest)
        yield from session.host_navigate("http://traced.example.com/")
        yield from session.wait_until_synced()

    sim.run_until_complete(sim.process(scenario()))
    if len(tracer) == 0:
        print(
            "repro trace: the session produced no spans "
            "(no content was generated or served — try --participants >= 1)",
            file=sys.stderr,
        )
        session.close()
        return 1
    print(render_trace_summary(tracer))
    if args.jsonl:
        count = write_spans_jsonl(tracer, args.jsonl)
        print("wrote %d spans to %s" % (count, args.jsonl))
    if args.chrome:
        count = write_chrome_trace(tracer, args.chrome)
        print("wrote %d trace events to %s (load in chrome://tracing)" % (count, args.chrome))
    if args.collapsed:
        count = write_collapsed(tracer, args.collapsed)
        axis = "sim self-time"
        if count == 0:
            # A LAN run is sim-instantaneous; the wall-compute axis is
            # where its flame graph lives.
            count = write_collapsed(tracer, args.collapsed, wall=True)
            axis = "wall compute"
        print("wrote %d collapsed stacks to %s (%s)" % (count, args.collapsed, axis))
    if args.speedscope:
        count = write_speedscope(tracer, args.speedscope, name="repro trace")
        print(
            "wrote %d flame-graph samples to %s (load at speedscope.app)"
            % (count, args.speedscope)
        )
    session.close()
    return 0


def _metrics(args) -> int:
    import json as _json

    from .core import CoBrowsingSession

    sim, host, guests = _build_traced_world(2)
    session = CoBrowsingSession(host)

    def scenario():
        for guest in guests:
            yield from session.join(guest)
        yield from session.host_navigate("http://traced.example.com/")
        yield from session.wait_until_synced()

    sim.run_until_complete(sim.process(scenario()))
    if not session.metrics.collect():
        print(
            "repro metrics: the session produced no metrics "
            "(no instrument was ever registered)",
            file=sys.stderr,
        )
        session.close()
        return 1
    if args.format == "json":
        print(_json.dumps(session.metrics.snapshot(), indent=1, sort_keys=True))
    else:
        print(session.metrics.render("Session metrics"))
    session.close()
    return 0


def _run_monitored_session(args, telemetry=None):
    """Run the health/logs scenario: a fanout session with the EventBus,
    tracer, flight recorder, and SLO monitor attached; the host mutates
    its document once per sim-second for ``--duration`` seconds, with an
    optional injected relay death a few seconds in.  ``telemetry`` (a
    :class:`~repro.obs.FleetView`) additionally enables the fleet
    telemetry plane.

    Returns ``(session, monitor, recorder)`` after the run completes.
    """
    from .core import CoBrowsingSession
    from .obs import (
        ByteAttribution,
        EventBus,
        FlightRecorder,
        HealthMonitor,
        Profiler,
        Tracer,
    )

    sim, host, guests = _build_traced_world(args.participants)
    tracer = Tracer()
    events = EventBus()
    attribution = ByteAttribution()
    session = CoBrowsingSession(
        host,
        tracer=tracer,
        events=events,
        attribution=attribution,
        telemetry=telemetry,
    )
    session.fanout_tree(branching=args.branching)
    profiler = Profiler(tracer)
    recorder = FlightRecorder(
        events,
        registry=session.metrics,
        tracer=tracer,
        profiler=profiler,
        attribution=attribution,
        fleet=session.fleet,
    )
    monitor = HealthMonitor(
        session, recorder=recorder, profiler=profiler, attribution=attribution
    )

    def scenario():
        for guest in guests:
            yield from session.join(guest)
        yield from session.host_navigate("http://traced.example.com/")
        yield from session.wait_until_synced()
        sim.process(monitor.run())
        fail_at = 3 if args.fail_relay else None
        for tick in range(max(1, int(args.duration))):
            if fail_at is not None and tick == fail_at:
                victim = next(
                    (rid for rid, r in session.relays.items() if r.participants),
                    next(iter(session.relays), None),
                )
                if victim is not None:
                    print("injecting relay death: %s" % victim)
                    session.fail_relay(victim)
            host.mutate_document(
                lambda doc, tick=tick: setattr(
                    doc.get_elements_by_tag_name("p")[0],
                    "inner_html",
                    "monitored state %d" % tick,
                )
            )
            yield sim.timeout(1.0)
        monitor.sample()
        monitor.check()

    sim.run_until_complete(sim.process(scenario()))
    return session, monitor, recorder


def _health(args) -> int:
    import json as _json

    from .metrics import render_health_summary

    session, monitor, recorder = _run_monitored_session(args)
    if not session.member_times():
        print(
            "repro health: the session produced no members "
            "(nothing to grade — try --participants >= 1)",
            file=sys.stderr,
        )
        session.close()
        return 1
    report = monitor.last_report
    if args.format == "json":
        document = report.to_dict()
        document["worst_level"] = monitor.worst_level
        print(_json.dumps(document, indent=1, sort_keys=True))
    else:
        print(render_health_summary(report))
        print("worst level during run: %s" % monitor.worst_level)
    breached = monitor.worst_level == "BREACH"
    if args.dump:
        recorder.dump("on-demand", t=session.sim.now)
        recorder.write_last(args.dump)
        print("wrote black box to %s" % args.dump)
    if args.dump_on_breach and breached:
        if recorder.last_dump is None:
            recorder.dump("slo-breach", t=session.sim.now)
        recorder.write_last(args.dump_on_breach)
        print("wrote breach black box to %s" % args.dump_on_breach)
    session.close()
    if args.check and breached:
        return 1
    return 0


def _top(args) -> int:
    from .metrics import render_fleet_table, render_health_summary
    from .obs import render_attribution_table, render_profile_summary, write_speedscope

    session, monitor, _recorder = _run_monitored_session(args)
    now = session.sim.now
    profile = monitor.window_profile() if monitor.profiler is not None else None
    print(
        render_fleet_table(
            session,
            profile=profile,
            report=monitor.last_report,
            now=now,
            title="Fleet at t=%.3fs" % now,
        )
    )
    print()
    if profile is not None:
        print(
            render_profile_summary(
                profile, title="Profile (trailing %.0fs)" % monitor.window
            )
        )
        print()
    if session.attribution is not None:
        print(render_attribution_table(session.attribution))
        print()
    print(render_health_summary(monitor.last_report))
    if getattr(args, "speedscope", None) and profile is not None:
        count = write_speedscope(profile, args.speedscope, name="repro top")
        print(
            "wrote %d flame-graph samples to %s (load at speedscope.app)"
            % (count, args.speedscope)
        )
    session.close()
    return 0


def _logs(args) -> int:
    import json as _json

    session, monitor, _recorder = _run_monitored_session(args)
    events = session.events.events(
        type=args.event_type, node=args.node or None, last=args.limit
    )
    if not events:
        print("repro logs: no events matched the filters", file=sys.stderr)
        session.close()
        return 1
    if args.json:
        for event in events:
            print(_json.dumps(event.to_dict(), sort_keys=True))
    else:
        print(
            "%9s %-20s %-14s %-18s %s" % ("t (s)", "type", "node", "trace", "data")
        )
        for event in events:
            print(
                "%9.3f %-20s %-14s %-18s %s"
                % (
                    event.t,
                    event.type,
                    event.node,
                    event.trace_id or "-",
                    event.data or "",
                )
            )
    session.close()
    return 0


def _fleet(args) -> int:
    import json as _json

    from .obs import FleetView, render_fleet_view

    session, _monitor, _recorder = _run_monitored_session(
        args, telemetry=FleetView(byte_cap=args.byte_cap)
    )
    if not session.member_times():
        print(
            "repro fleet: the session produced no members "
            "(no digests to aggregate — try --participants >= 1)",
            file=sys.stderr,
        )
        session.close()
        return 1
    view = session.fleet
    print(
        render_fleet_view(
            view, title="Fleet telemetry at t=%.3fs" % session.sim.now
        )
    )
    if args.json:
        with open(args.json, "w") as handle:
            _json.dump(view.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        print("wrote fleet view to %s" % args.json)
    session.close()
    return 0


def _shards(args) -> int:
    from .core import AgentPool, CoBrowsingSession, render_shard_table
    from .obs import SHARD_MIGRATE, SHARD_PROMOTE, EventBus

    sim, host, guests = _build_traced_world(args.participants)
    events = EventBus(max_total_events=4096)
    session = CoBrowsingSession(host, events=events)
    pool = AgentPool(session, shards=args.shards)

    def scenario():
        yield from pool.start()
        for guest in guests:
            yield from pool.join_browser(guest)
        yield from session.host_navigate("http://traced.example.com/")
        yield from session.wait_until_synced()
        fail_at = 3 if args.fail_shard else None
        for tick in range(max(1, int(args.duration))):
            if fail_at is not None and tick == fail_at and pool.relays:
                victim = sorted(pool.relays)[0]
                print("injecting shard host death: %s" % victim)
                pool.fail_shard(victim)
            host.mutate_document(
                lambda doc, tick=tick: setattr(
                    doc.get_elements_by_tag_name("p")[0],
                    "inner_html",
                    "sharded state %d" % tick,
                )
            )
            yield sim.timeout(1.0)
        yield from session.wait_until_synced()

    sim.run_until_complete(sim.process(scenario()))
    if not session.member_times():
        print(
            "repro shards: the session produced no members "
            "(nothing was served — try --participants >= 1)",
            file=sys.stderr,
        )
        session.close()
        return 1
    print(render_shard_table(pool, title="Shard pool at t=%.3fs" % sim.now))
    print(
        "events: %d shard.promote, %d shard.migrate"
        % (events.total(SHARD_PROMOTE), events.total(SHARD_MIGRATE))
    )
    session.close()
    return 0


def _scenario(which: str) -> int:
    if which == "maps":
        from .workloads import ScenarioRunner, build_lan

        testbed = build_lan(deploy_sites=False, with_map=True, with_shop=True)
        runner = ScenarioRunner(testbed)
        results = testbed.run(
            runner.run_session(testbed.host_browser, testbed.participant_browser)
        )
        for task in results[:10]:  # T1..T5 pairs are the maps half
            print("%-7s %-4s %s" % (task.task_id, "ok" if task.completed else "FAIL", task.detail))
        return 0
    if which == "shop":
        from .workloads import ScenarioRunner, build_lan

        testbed = build_lan(deploy_sites=False, with_map=True, with_shop=True)
        runner = ScenarioRunner(testbed)
        results = testbed.run(
            runner.run_session(testbed.host_browser, testbed.participant_browser)
        )
        for task in results[10:]:
            print("%-7s %-4s %s" % (task.task_id, "ok" if task.completed else "FAIL", task.detail))
        return 0
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
