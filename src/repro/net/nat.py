"""NAT gateway with static port forwarding.

The paper's direct communication model (§3.2.1) notes that a co-browsing
host on a private address inside a LAN can still accept remote
participants by configuring port forwarding on its gateway.  The
:class:`NatGateway` models exactly that: it is a public host whose
forwarded ports resolve to listeners owned by private hosts behind it.
Private hosts (``public=False``) on a NATed segment can initiate outbound
connections but cannot be reached directly from other segments.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .link import LinkProfile
from .socket import Host, ListenSocket, Network, NetworkError

__all__ = ["NatGateway"]


class NatGateway(Host):
    """A publicly reachable router that forwards ports into its segment."""

    def __init__(self, network: Network, name: str, profile: LinkProfile, segment: str):
        super().__init__(network, name, profile, segment=segment, public=True)
        self._forwards: Dict[int, Tuple[str, int]] = {}

    def forward(self, external_port: int, internal_host: str, internal_port: int) -> None:
        """Map ``external_port`` on the gateway to an internal host:port."""
        if not 0 < external_port < 65536:
            raise NetworkError("port out of range: %r" % (external_port,))
        internal = self.network.lookup(internal_host)
        if internal is None:
            raise NetworkError("unknown internal host %r" % (internal_host,))
        if internal.segment != self.segment:
            raise NetworkError(
                "host %r is not behind gateway %r" % (internal_host, self.name)
            )
        self._forwards[external_port] = (internal.name, internal_port)

    def remove_forward(self, external_port: int) -> None:
        """Delete a forwarding rule."""
        self._forwards.pop(external_port, None)

    def listener_on(self, port: int) -> Optional[ListenSocket]:
        """Resolve forwarded ports to the internal host's listener."""
        rule = self._forwards.get(port)
        if rule is not None:
            internal_name, internal_port = rule
            internal = self.network.lookup(internal_name)
            if internal is not None:
                return internal.listener_on(internal_port)
            return None
        return super().listener_on(port)
