"""Latency/bandwidth link model for the simulated network.

Every host owns an :class:`AccessLink` — an asymmetric pair of directional
channels modelling its connection to its local network segment.  Delivery
time of a message is:

    uplink serialization (queued, sender side)
    + propagation latency (sender + receiver, or the intra-LAN latency)
    + downlink serialization (queued, receiver side)

Serialization is queued per direction: a second message handed to a busy
384 Kbps uplink waits for the first to drain, which is exactly the effect
that makes the paper's WAN M2 numbers grow (the host PC's slow uplink is
the bottleneck pushing page content to the participant).

Profiles mirror the paper's two testbeds (§5.1.2): a 100 Mbps campus
Ethernet LAN, and home WAN links with 1.5 Mbps download / 384 Kbps upload.
"""

from __future__ import annotations

from ..sim import Simulator

__all__ = ["DirectionalChannel", "AccessLink", "LinkProfile", "LAN_PROFILE", "WAN_HOME_PROFILE", "SERVER_PROFILE", "MOBILE_WIFI_PROFILE"]


class DirectionalChannel:
    """One direction of a link: queued serialization at fixed bandwidth."""

    def __init__(self, sim: Simulator, bandwidth_bps: float):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self._next_free = 0.0
        self.bytes_carried = 0

    def serialization_delay(self, nbytes: int) -> float:
        """Reserve the channel for ``nbytes`` and return the total delay
        from now until the last byte has been serialized."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        now = self.sim.now
        start = max(now, self._next_free)
        duration = nbytes * 8.0 / self.bandwidth_bps
        self._next_free = start + duration
        self.bytes_carried += nbytes
        return self._next_free - now

    @property
    def busy_until(self) -> float:
        """Simulated time at which the channel's queue drains."""
        return self._next_free


class LinkProfile:
    """Immutable description of an access link's characteristics."""

    __slots__ = ("name", "down_bps", "up_bps", "latency_s")

    def __init__(self, name: str, down_bps: float, up_bps: float, latency_s: float):
        self.name = name
        self.down_bps = down_bps
        self.up_bps = up_bps
        self.latency_s = latency_s

    def __repr__(self) -> str:
        return "LinkProfile(%r, down=%.0f, up=%.0f, latency=%.4f)" % (
            self.name,
            self.down_bps,
            self.up_bps,
            self.latency_s,
        )


#: 100 Mbps campus Ethernet (paper §5.1.2, first experiment set).
LAN_PROFILE = LinkProfile("lan-100mbps", 100e6, 100e6, 0.0002)

#: Slow home broadband: 1.5 Mbps down, 384 Kbps up (paper §5.1.2, WAN set).
WAN_HOME_PROFILE = LinkProfile("wan-home", 1.5e6, 384e3, 0.025)

#: Well-provisioned origin web server data-center uplink.
SERVER_PROFILE = LinkProfile("server-dc", 1e9, 1e9, 0.002)

#: A 2008-era internet tablet on 802.11g Wi-Fi (the paper's Fennec /
#: Nokia N810 port, §6): modest effective throughput, small latency.
MOBILE_WIFI_PROFILE = LinkProfile("mobile-wifi", 5.5e6, 2.0e6, 0.004)


class AccessLink:
    """A host's attachment: asymmetric up/down channels plus latency."""

    def __init__(self, sim: Simulator, profile: LinkProfile):
        self.sim = sim
        self.profile = profile
        self.up = DirectionalChannel(sim, profile.up_bps)
        self.down = DirectionalChannel(sim, profile.down_bps)

    @property
    def latency_s(self) -> float:
        """One-way propagation latency of this attachment."""
        return self.profile.latency_s

    def send_delay(self, nbytes: int) -> float:
        """Delay contribution of this link when the host sends."""
        return self.up.serialization_delay(nbytes) + self.latency_s

    def receive_delay(self, nbytes: int) -> float:
        """Delay contribution of this link when the host receives."""
        return self.down.serialization_delay(nbytes) + self.latency_s
