"""Simulated TCP: hosts, listeners, and duplex connections.

The model is stream-oriented and deterministic.  A :class:`Host` attaches
to a :class:`Network` on a named *segment* through an
:class:`~repro.net.link.AccessLink`.  Two hosts on the same segment talk
at LAN latency; hosts on different segments pay the internet core latency
on top of both access links.  Data handed to :meth:`Connection.send` is
serialized through the sender's uplink (queued), propagated, serialized
through the receiver's downlink (queued), and then appears as a chunk on
the peer's receive buffer.

Connection establishment costs one round-trip, as for TCP's SYN/SYN-ACK
handshake, which is what makes short HTTP exchanges latency-bound in the
WAN experiments.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim import Event, Simulator, Store
from .link import AccessLink, LinkProfile

__all__ = [
    "Network",
    "Host",
    "ListenSocket",
    "Connection",
    "NetworkError",
    "ConnectionRefused",
    "HostUnreachable",
    "INTERNET_CORE_LATENCY",
]

#: One-way latency added when two hosts are on different network segments.
INTERNET_CORE_LATENCY = 0.020


class NetworkError(Exception):
    """Base class for simulated network failures."""


class ConnectionRefused(NetworkError):
    """No listener on the target port."""


class HostUnreachable(NetworkError):
    """Target host does not exist or is not reachable (e.g. behind NAT)."""


#: TCP initial congestion window (2 MSS, the pre-2010 default).
SLOW_START_INITIAL_BYTES = 2920

#: Resolver-chain cost added to one RTT for an uncached DNS lookup.
DNS_RESOLVER_COST = 0.05


class Network:
    """Registry of hosts and the latency topology between them.

    ``realistic=True`` enables the 2009-web fetch model the WAN
    experiments need: DNS lookup cost on first contact with a host, and
    TCP slow start (per-connection congestion window that persists, so
    warm keep-alive connections — like RCB's polling channel — ramp once
    and stay fast, while every cold page fetch pays log2(size/2 MSS)
    round trips).
    """

    def __init__(
        self,
        sim: Simulator,
        core_latency_s: float = INTERNET_CORE_LATENCY,
        realistic: bool = False,
        dns_enabled: Optional[bool] = None,
        slow_start_enabled: Optional[bool] = None,
    ):
        self.sim = sim
        self.core_latency_s = core_latency_s
        self.dns_enabled = realistic if dns_enabled is None else dns_enabled
        self.slow_start_enabled = (
            realistic if slow_start_enabled is None else slow_start_enabled
        )
        self.hosts: Dict[str, "Host"] = {}

    def dns_lookup_cost(self, client: "Host", server: "Host") -> float:
        """One uncached resolution: a round trip plus resolver work."""
        return 2 * self.propagation_latency(client, server) + DNS_RESOLVER_COST

    def register(self, host: "Host") -> None:
        """Add a host to the name registry (names are unique)."""
        if host.name in self.hosts:
            raise NetworkError("duplicate host name %r" % (host.name,))
        self.hosts[host.name] = host

    def lookup(self, name: str) -> Optional["Host"]:
        """Resolve a host by name (case-insensitive), or None."""
        return self.hosts.get(name.lower())

    def propagation_latency(self, a: "Host", b: "Host") -> float:
        """One-way propagation latency between two hosts."""
        if a is b:
            return 0.0
        latency = a.link.latency_s + b.link.latency_s
        latency += a.extra_latency_s + b.extra_latency_s
        if a.segment != b.segment:
            latency += self.core_latency_s
        return latency

    def transfer_delay(self, sender: "Host", receiver: "Host", nbytes: int) -> float:
        """Full delivery delay for ``nbytes`` from sender to receiver.

        Both access channels are reserved (queueing), but because bytes
        pipeline through the path, the end-to-end serialization cost is
        the slower of the two, not their sum.
        """
        if sender is receiver:
            return 0.0
        up = sender.link.up.serialization_delay(nbytes)
        down = receiver.link.down.serialization_delay(nbytes)
        return max(up, down) + self.propagation_latency(sender, receiver)


class Host:
    """A machine on the network: can listen, connect, and be NATed."""

    def __init__(
        self,
        network: Network,
        name: str,
        profile: LinkProfile,
        segment: str = "internet",
        public: bool = True,
        extra_latency_s: float = 0.0,
    ):
        self.network = network
        self.sim = network.sim
        self.name = name.lower()
        self.segment = segment
        self.link = AccessLink(network.sim, profile)
        #: Publicly reachable (resolvable hostname / reachable IP, §3.2.1).
        self.public = public
        #: Geographic distance penalty (one-way), e.g. overseas servers.
        self.extra_latency_s = extra_latency_s
        self._listeners: Dict[int, "ListenSocket"] = {}
        self._dns_cache: set = set()
        network.register(self)

    def __repr__(self) -> str:
        return "Host(%r, segment=%r)" % (self.name, self.segment)

    # -- server side ---------------------------------------------------------

    def listen(self, port: int) -> "ListenSocket":
        """Open a listening socket on ``port``."""
        if not 0 < port < 65536:
            raise NetworkError("port out of range: %r" % (port,))
        if port in self._listeners:
            raise NetworkError("port %d already in use on %s" % (port, self.name))
        listener = ListenSocket(self, port)
        self._listeners[port] = listener
        return listener

    def _close_listener(self, port: int) -> None:
        self._listeners.pop(port, None)

    def listener_on(self, port: int) -> Optional["ListenSocket"]:
        """The listening socket bound to ``port``, or None."""
        return self._listeners.get(port)

    # -- client side ---------------------------------------------------------

    def connect(self, target: str, port: int) -> Event:
        """Begin a handshake; the event yields a :class:`Connection`.

        Fails with :class:`HostUnreachable` or :class:`ConnectionRefused`.
        """
        result = self.sim.event()
        remote = self.network.lookup(target)
        if remote is None or (not remote.public and remote.segment != self.segment):
            # Paper §3.2.1: a host on a private address needs port
            # forwarding (repro.net.nat) to be reachable from outside.
            self._fail_later(result, HostUnreachable("cannot reach %r" % (target,)))
            return result
        dns_delay = 0.0
        if self.network.dns_enabled and remote.name not in self._dns_cache:
            dns_delay = self.network.dns_lookup_cost(self, remote)
            self._dns_cache.add(remote.name)
        listener = remote.listener_on(port)
        if listener is None or listener.closed:
            rtt = 2 * self.network.propagation_latency(self, remote)
            self._fail_later(result, ConnectionRefused("%s:%d" % (target, port)), dns_delay + rtt)
            return result
        # A NAT gateway resolves a forwarded port to a listener owned by a
        # host inside its LAN; the connection terminates at that host.
        remote = listener.host

        rtt = 2 * self.network.propagation_latency(self, remote)

        local_end = Connection(self, remote, port)
        remote_end = Connection(remote, self, port)
        local_end._peer = remote_end
        remote_end._peer = local_end

        def deliver_to_listener(_event):
            if listener.closed:
                result.fail(ConnectionRefused("%s:%d" % (target, port)))
                return
            listener._backlog.put(remote_end)
            result.succeed(local_end)

        self.sim.timeout(dns_delay + rtt)._add_callback(deliver_to_listener)
        return result

    def _fail_later(self, event: Event, exc: Exception, delay: float = 0.0) -> None:
        def fail(_event):
            event.fail(exc)

        self.sim.timeout(delay)._add_callback(fail)


class ListenSocket:
    """Accept queue for incoming connections on a host/port."""

    def __init__(self, host: Host, port: int):
        self.host = host
        self.port = port
        self._backlog: Store = Store(host.sim)
        self.closed = False

    def accept(self) -> Event:
        """Event yielding the next accepted :class:`Connection`."""
        return self._backlog.get()

    def close(self) -> None:
        """Close the listener and refuse its backlog."""
        if self.closed:
            return
        self.closed = True
        self.host._close_listener(self.port)
        self._backlog.close()


class Connection:
    """One endpoint of an established duplex byte-stream."""

    def __init__(self, local: Host, remote: Host, port: int):
        self.local = local
        self.remote = remote
        self.port = port
        self.sim = local.sim
        self._inbox: Store = Store(local.sim)
        self._peer: Optional["Connection"] = None
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Send-side congestion window (slow-start model); persists for
        #: the connection's lifetime, so warm connections stay fast.
        self._cwnd = SLOW_START_INITIAL_BYTES

    def __repr__(self) -> str:
        return "Connection(%s -> %s:%d)" % (self.local.name, self.remote.name, self.port)

    @property
    def peer_name(self) -> str:
        """The remote host's name."""
        return self.remote.name

    def send(self, data: bytes) -> Event:
        """Transmit ``data``; the event fires once delivery is complete.

        The payload arrives on the peer's receive buffer after the full
        link-model delay.  Sends on a closed connection fail.
        """
        done = self.sim.event()
        if self.closed or self._peer is None:
            done.fail(NetworkError("send() on closed connection"))
            return done
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError("send() requires bytes, got %r" % (type(data),))
        data = bytes(data)
        self.bytes_sent += len(data)
        network = self.local.network
        delay = network.transfer_delay(self.local, self.remote, len(data))
        if network.slow_start_enabled and len(data) > self._cwnd:
            # Each doubling of the congestion window costs one RTT of
            # idle pacing before the pipe runs at line rate.
            rtt = 2 * network.propagation_latency(self.local, self.remote)
            rounds = 0
            cwnd = self._cwnd
            while cwnd < len(data):
                cwnd *= 2
                rounds += 1
            self._cwnd = cwnd
            delay += rounds * rtt
        peer = self._peer

        def deliver(_event):
            if peer is not None and not peer._inbox.closed:
                peer._inbox.put(data)
                peer.bytes_received += len(data)
            done.succeed(len(data))

        self.sim.timeout(delay)._add_callback(deliver)
        return done

    def sendv(self, buffers) -> Event:
        """Transmit a writev-style buffer list (scatter-gather send).

        The sender's hot path never joins the buffers: lengths are
        summed for the link model and the iovec is handed over as-is,
        like ``writev(2)`` handing an iovec to the kernel.  The single
        contiguous chunk the peer receives is assembled at *delivery*
        time — modelling the receiver's stream reassembly, not a
        sender-side copy.  Sends on a closed connection fail.
        """
        done = self.sim.event()
        if self.closed or self._peer is None:
            done.fail(NetworkError("sendv() on closed connection"))
            return done
        nbytes = 0
        for buffer in buffers:
            if not isinstance(buffer, (bytes, bytearray, memoryview)):
                raise TypeError("sendv() requires byte buffers, got %r" % (type(buffer),))
            nbytes += len(buffer)
        self.bytes_sent += nbytes
        network = self.local.network
        delay = network.transfer_delay(self.local, self.remote, nbytes)
        if network.slow_start_enabled and nbytes > self._cwnd:
            rtt = 2 * network.propagation_latency(self.local, self.remote)
            rounds = 0
            cwnd = self._cwnd
            while cwnd < nbytes:
                cwnd *= 2
                rounds += 1
            self._cwnd = cwnd
            delay += rounds * rtt
        peer = self._peer

        def deliver(_event):
            if peer is not None and not peer._inbox.closed:
                peer._inbox.put(b"".join(buffers))
                peer.bytes_received += nbytes
            done.succeed(nbytes)

        self.sim.timeout(delay)._add_callback(deliver)
        return done

    def recv(self) -> Event:
        """Event yielding the next received chunk of bytes.

        Fails with :class:`~repro.sim.StoreClosed` once the peer has closed
        and the buffer has drained — the end-of-stream signal.
        """
        return self._inbox.get()

    def try_recv(self) -> Optional[bytes]:
        """Non-blocking receive; None when no data is buffered."""
        return self._inbox.try_get()

    def close(self) -> None:
        """Close both directions (the peer sees end-of-stream after the
        propagation delay)."""
        if self.closed:
            return
        self.closed = True
        peer = self._peer

        def close_remote(_event):
            if peer is not None and not peer.closed:
                peer.closed = True
                peer._inbox.close()

        if peer is not None:
            latency = self.local.network.propagation_latency(self.local, self.remote)
            self.sim.timeout(latency)._add_callback(close_remote)
        self._inbox.close()
