"""A small URL type with RFC-3986-style parsing and relative resolution.

RCB-Agent's content-generation pipeline rewrites every supplementary-object
reference in a cloned document from relative to absolute form (Fig. 3,
step 2), and in cache mode from absolute form to the agent's own address
(step 3).  Both rewrites are exercised heavily, so the URL type is a
substrate of its own with full join semantics for the subset of URLs the
simulated web uses (http/https, host[:port], path, query, fragment).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Url", "UrlError", "parse_url", "resolve_url"]

DEFAULT_PORTS = {"http": 80, "https": 443}


class UrlError(ValueError):
    """Raised for strings that cannot be parsed as a supported URL."""


class Url:
    """An absolute or relative URL.

    Absolute URLs have a scheme and host; relative URLs have neither and
    only make sense once resolved against a base via :func:`resolve_url`.
    """

    __slots__ = ("scheme", "host", "port", "path", "query", "fragment")

    def __init__(
        self,
        scheme: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        path: str = "",
        query: Optional[str] = None,
        fragment: Optional[str] = None,
    ):
        self.scheme = scheme.lower() if scheme else None
        self.host = host.lower() if host else None
        self.port = port
        self.path = path
        self.query = query
        self.fragment = fragment

    # -- predicates ---------------------------------------------------------

    @property
    def is_absolute(self) -> bool:
        """True when the URL has both a scheme and a host."""
        return self.scheme is not None and self.host is not None

    @property
    def effective_port(self) -> Optional[int]:
        """The explicit port, or the scheme's default."""
        if self.port is not None:
            return self.port
        if self.scheme in DEFAULT_PORTS:
            return DEFAULT_PORTS[self.scheme]
        return None

    @property
    def origin(self) -> str:
        """scheme://host[:port] with default ports elided."""
        if not self.is_absolute:
            raise UrlError("relative URL has no origin: %r" % (str(self),))
        netloc = self.host
        if self.port is not None and self.port != DEFAULT_PORTS.get(self.scheme):
            netloc = "%s:%d" % (netloc, self.port)
        return "%s://%s" % (self.scheme, netloc)

    def request_target(self) -> str:
        """The path?query form used on an HTTP request line."""
        target = self.path or "/"
        if self.query is not None:
            target += "?" + self.query
        return target

    # -- equality / hashing ---------------------------------------------------

    def _key(self):
        return (
            self.scheme,
            self.host,
            self.effective_port,
            self.path,
            self.query,
            self.fragment,
        )

    def __eq__(self, other) -> bool:
        return isinstance(other, Url) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return "Url(%r)" % (str(self),)

    def __str__(self) -> str:
        parts = []
        if self.scheme is not None:
            parts.append(self.scheme + ":")
        if self.host is not None:
            parts.append("//" + self.host)
            if self.port is not None and self.port != DEFAULT_PORTS.get(self.scheme):
                parts.append(":%d" % self.port)
        parts.append(self.path)
        if self.query is not None:
            parts.append("?" + self.query)
        if self.fragment is not None:
            parts.append("#" + self.fragment)
        return "".join(parts)

    def replace(self, **changes) -> "Url":
        """Return a copy with the given components replaced."""
        fields = {name: getattr(self, name) for name in self.__slots__}
        fields.update(changes)
        return Url(**fields)


def parse_url(text: str) -> Url:
    """Parse ``text`` into a :class:`Url` (absolute or relative)."""
    if not isinstance(text, str):
        raise UrlError("URL must be a string, got %r" % (text,))
    rest = text.strip()

    fragment = None
    if "#" in rest:
        rest, fragment = rest.split("#", 1)

    query = None
    if "?" in rest:
        rest, query = rest.split("?", 1)

    scheme = None
    host = None
    port = None

    colon = rest.find(":")
    slash = rest.find("/")
    if colon > 0 and (slash == -1 or colon < slash):
        candidate = rest[:colon]
        if candidate.replace("+", "").replace("-", "").replace(".", "").isalnum() and candidate[0].isalpha():
            scheme = candidate
            rest = rest[colon + 1 :]

    if rest.startswith("//"):
        rest = rest[2:]
        end = len(rest)
        for index, char in enumerate(rest):
            if char == "/":
                end = index
                break
        netloc, rest = rest[:end], rest[end:]
        if "@" in netloc:  # userinfo is not part of the simulated web
            raise UrlError("userinfo is not supported: %r" % (text,))
        if ":" in netloc:
            host, port_text = netloc.rsplit(":", 1)
            if not port_text.isdigit():
                raise UrlError("bad port in %r" % (text,))
            port = int(port_text)
            if not 0 < port < 65536:
                raise UrlError("port out of range in %r" % (text,))
        else:
            host = netloc
        if not host:
            raise UrlError("empty host in %r" % (text,))
    elif scheme is not None and scheme not in ("http", "https"):
        raise UrlError("unsupported scheme %r in %r" % (scheme, text))

    if scheme is not None and host is None:
        raise UrlError("scheme without host in %r" % (text,))

    return Url(scheme, host, port, rest, query, fragment)


def _merge_paths(base: Url, relative_path: str) -> str:
    if not base.path:
        return "/" + relative_path
    return base.path[: base.path.rfind("/") + 1] + relative_path


def _remove_dot_segments(path: str) -> str:
    output = []
    for segment in path.split("/"):
        if segment == ".":
            continue
        if segment == "..":
            if len(output) > 1:
                output.pop()
            continue
        output.append(segment)
    # Preserve a trailing slash implied by '.' or '..' final segments.
    if path.endswith(("/.", "/..", "/")) and (not output or output[-1] != ""):
        output.append("")
    return "/".join(output)


def resolve_url(base: Url, reference: Url) -> Url:
    """Resolve ``reference`` against absolute ``base`` (RFC 3986 §5.3)."""
    if not base.is_absolute:
        raise UrlError("base URL must be absolute: %r" % (str(base),))

    if reference.is_absolute:
        return reference.replace(path=_remove_dot_segments(reference.path) or "/")

    if reference.host is not None:  # network-path reference (//host/...)
        return Url(
            base.scheme,
            reference.host,
            reference.port,
            _remove_dot_segments(reference.path) or "/",
            reference.query,
            reference.fragment,
        )

    if not reference.path:
        query = reference.query if reference.query is not None else base.query
        return Url(
            base.scheme, base.host, base.port, base.path or "/", query, reference.fragment
        )

    if reference.path.startswith("/"):
        path = _remove_dot_segments(reference.path)
    else:
        path = _remove_dot_segments(_merge_paths(base, reference.path))
    return Url(
        base.scheme, base.host, base.port, path or "/", reference.query, reference.fragment
    )
