"""Simulated network substrate: URLs, links, sockets, NAT."""

from .link import (
    LAN_PROFILE,
    MOBILE_WIFI_PROFILE,
    SERVER_PROFILE,
    WAN_HOME_PROFILE,
    AccessLink,
    DirectionalChannel,
    LinkProfile,
)
from .nat import NatGateway
from .socket import (
    INTERNET_CORE_LATENCY,
    Connection,
    ConnectionRefused,
    Host,
    HostUnreachable,
    ListenSocket,
    Network,
    NetworkError,
)
from .url import Url, UrlError, parse_url, resolve_url

__all__ = [
    "AccessLink",
    "Connection",
    "ConnectionRefused",
    "DirectionalChannel",
    "Host",
    "HostUnreachable",
    "INTERNET_CORE_LATENCY",
    "LAN_PROFILE",
    "LinkProfile",
    "MOBILE_WIFI_PROFILE",
    "ListenSocket",
    "NatGateway",
    "Network",
    "NetworkError",
    "SERVER_PROFILE",
    "Url",
    "UrlError",
    "WAN_HOME_PROFILE",
    "parse_url",
    "resolve_url",
]
