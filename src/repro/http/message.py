"""HTTP/1.1 message types: headers, requests, responses.

RCB-Agent is, at heart, a tiny HTTP server embedded in a browser: it
classifies requests by method token and request-URI (paper Fig. 2) and
answers with ``text/html`` (initial page), ``application/xml`` (poll
responses), or raw object bytes (cache mode).  These classes provide the
wire representation shared by the agent, the origin web servers, and the
browser's HTTP client.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

from .wire import WirePlan

__all__ = ["Headers", "HttpRequest", "HttpResponse", "HttpError", "STATUS_REASONS"]

STATUS_REASONS: Dict[int, str] = {
    200: "OK",
    204: "No Content",
    301: "Moved Permanently",
    302: "Found",
    304: "Not Modified",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    500: "Internal Server Error",
    501: "Not Implemented",
    505: "HTTP Version Not Supported",
}

CRLF = b"\r\n"


class HttpError(Exception):
    """Malformed HTTP traffic."""


class Headers:
    """Case-insensitive, order-preserving header collection."""

    def __init__(self, items: Optional[List[Tuple[str, str]]] = None):
        self._items: List[Tuple[str, str]] = []
        if items:
            for name, value in items:
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        """Append a header (duplicates allowed, e.g. Set-Cookie)."""
        self._items.append((name, str(value)))

    def set(self, name: str, value: str) -> None:
        """Replace any existing values for ``name``."""
        self.remove(name)
        self.add(name, value)

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """First value for ``name`` (case-insensitive), or ``default``."""
        lowered = name.lower()
        for key, value in self._items:
            if key.lower() == lowered:
                return value
        return default

    def get_all(self, name: str) -> List[str]:
        """Every value for ``name``, in insertion order."""
        lowered = name.lower()
        return [value for key, value in self._items if key.lower() == lowered]

    def remove(self, name: str) -> None:
        """Delete all values for ``name``."""
        lowered = name.lower()
        self._items = [(k, v) for k, v in self._items if k.lower() != lowered]

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return "Headers(%r)" % (self._items,)

    def copy(self) -> "Headers":
        """Independent copy of this header collection."""
        return Headers(list(self._items))

    @classmethod
    def preset(cls, items: List[Tuple[str, str]]) -> "Headers":
        """Construct from already-normalized ``(name, str_value)``
        pairs, skipping per-item coercion — for hot serve paths that
        build the same handful of headers per response."""
        headers = cls()
        headers._items = list(items)
        return headers

    def wire_line_list(self) -> List[bytes]:
        """The serialized header lines (CRLF-terminated), unjoined.

        Lines are memoized per (name, value) pair: server responses
        repeat the same handful of header values endlessly
        (Content-Type, Server, small Content-Lengths), so the hot path
        is a dict probe instead of a format + encode per header.
        """
        cache = _HEADER_LINE_CACHE
        lines = []
        for item in self._items:
            line = cache.get(item)
            if line is None:
                line = ("%s: %s" % item).encode("latin-1") + CRLF
                if len(cache) >= _HEADER_LINE_CACHE_MAX:
                    cache.clear()
                cache[item] = line
            lines.append(line)
        return lines

    def wire_lines(self) -> bytes:
        """The header block serialized with CRLF line endings."""
        return b"".join(self.wire_line_list())


#: Memoized serialized header lines; bounded and simply cleared when
#: full (the steady-state working set is tiny).
_HEADER_LINE_CACHE: Dict[Tuple[str, str], bytes] = {}
_HEADER_LINE_CACHE_MAX = 2048

#: Memoized response status lines (``HTTP/1.1 200 OK\r\n``).
_STATUS_LINE_CACHE: Dict[Tuple[str, int, str], bytes] = {}


class HttpRequest:
    """An HTTP request: method, target (path?query), headers, body."""

    def __init__(
        self,
        method: str,
        target: str,
        headers: Optional[Headers] = None,
        body: bytes = b"",
        version: str = "HTTP/1.1",
    ):
        if not method or not method.isupper():
            raise HttpError("bad method token: %r" % (method,))
        if not target:
            raise HttpError("empty request target")
        self.method = method
        self.target = target
        self.headers = headers if headers is not None else Headers()
        self.body = body
        self.version = version
        if body and "content-length" not in self.headers:
            self.headers.set("Content-Length", str(len(body)))

    @property
    def path(self) -> str:
        """The target's path component (before any '?')."""
        return self.target.split("?", 1)[0]

    @property
    def query(self) -> str:
        """The target's query string ('' when absent)."""
        parts = self.target.split("?", 1)
        return parts[1] if len(parts) == 2 else ""

    def query_params(self) -> Dict[str, str]:
        """Decode the query string into a dict (last value wins)."""
        params: Dict[str, str] = {}
        if not self.query:
            return params
        for pair in self.query.split("&"):
            if not pair:
                continue
            if "=" in pair:
                key, value = pair.split("=", 1)
            else:
                key, value = pair, ""
            params[_unquote(key)] = _unquote(value)
        return params

    def form_params(self) -> Dict[str, str]:
        """Decode an application/x-www-form-urlencoded body."""
        params: Dict[str, str] = {}
        text = self.body.decode("utf-8", errors="replace")
        for pair in text.split("&"):
            if not pair:
                continue
            if "=" in pair:
                key, value = pair.split("=", 1)
            else:
                key, value = pair, ""
            params[_unquote(key)] = _unquote(value)
        return params

    @property
    def keep_alive(self) -> bool:
        """Whether the connection stays open after this exchange."""
        connection = (self.headers.get("Connection") or "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def to_bytes(self) -> bytes:
        """Serialize to the HTTP/1.1 wire format."""
        request_line = ("%s %s %s" % (self.method, self.target, self.version)).encode(
            "latin-1"
        )
        return request_line + CRLF + self.headers.wire_lines() + CRLF + self.body

    def __repr__(self) -> str:
        return "HttpRequest(%s %s, %d body bytes)" % (
            self.method,
            self.target,
            len(self.body),
        )


class HttpResponse:
    """An HTTP response with status, headers, and body.

    ``body`` is either contiguous ``bytes`` or a
    :class:`~repro.http.wire.WirePlan` (a writev-style list of shared
    buffers).  A plan body is only materialized into contiguous bytes
    when something reads :attr:`body`; the serve path ships the
    buffers directly via :meth:`wire_buffers`.
    """

    def __init__(
        self,
        status: int,
        headers: Optional[Headers] = None,
        body: Union[bytes, WirePlan] = b"",
        reason: Optional[str] = None,
        version: str = "HTTP/1.1",
    ):
        self.status = int(status)
        self.reason = reason if reason is not None else STATUS_REASONS.get(status, "")
        self.headers = headers if headers is not None else Headers()
        if isinstance(body, WirePlan):
            self._plan: Optional[WirePlan] = body
            self._body = b""
        else:
            self._plan = None
            self._body = body
        self.version = version
        if "content-length" not in self.headers:
            self.headers.set("Content-Length", str(len(body)))
        #: Optional :class:`~repro.obs.attribution.ResponseAttribution`
        #: opened by the serving agent; the connection layer finalizes
        #: it with the actual shipped byte count.  None (the default)
        #: means the response is not cost-attributed.
        self.attribution = None

    @property
    def body(self) -> bytes:
        """The contiguous body bytes (joins a plan body on demand)."""
        if self._plan is not None:
            return self._plan.to_bytes()
        return self._body

    @body.setter
    def body(self, value: Union[bytes, WirePlan]) -> None:
        if isinstance(value, WirePlan):
            self._plan = value
            self._body = b""
        else:
            self._plan = None
            self._body = value

    @property
    def wire_plan(self) -> Optional[WirePlan]:
        """The zero-copy body plan, or None for a contiguous body."""
        return self._plan

    @property
    def content_length(self) -> int:
        """Body length in bytes, without materializing a plan body."""
        if self._plan is not None:
            return self._plan.nbytes
        return len(self._body)

    @property
    def content_type(self) -> str:
        """The media type, with parameters stripped."""
        return (self.headers.get("Content-Type") or "").split(";")[0].strip().lower()

    @property
    def ok(self) -> bool:
        """True for 2xx status codes."""
        return 200 <= self.status < 300

    def text(self, encoding: str = "utf-8") -> str:
        """The body decoded as text."""
        return self.body.decode(encoding, errors="replace")

    def _status_line(self) -> bytes:
        """Memoized ``b"HTTP/1.1 200 OK\\r\\n"``-style status line."""
        key = (self.version, self.status, self.reason)
        line = _STATUS_LINE_CACHE.get(key)
        if line is None:
            line = ("%s %d %s" % key).encode("latin-1") + CRLF
            if len(_STATUS_LINE_CACHE) >= 64:
                _STATUS_LINE_CACHE.clear()
            _STATUS_LINE_CACHE[key] = line
        return line

    def head_bytes(self) -> bytes:
        """Status line + header block + blank line."""
        return self._status_line() + self.headers.wire_lines() + CRLF

    def wire_buffers(self) -> List[bytes]:
        """The full wire message as a writev-style buffer list.

        Nothing is joined: the status line and header lines come from
        their memo caches, and a plan body's page-sized shared segments
        are returned by reference — no contiguous per-response copy is
        ever built.
        """
        buffers = [self._status_line()]
        buffers.extend(self.headers.wire_line_list())
        buffers.append(CRLF)
        if self._plan is not None:
            buffers.extend(self._plan.buffers)
        elif self._body:
            buffers.append(self._body)
        return buffers

    def to_bytes(self) -> bytes:
        """Serialize to the HTTP/1.1 wire format (contiguous bytes)."""
        if self._plan is not None:
            return b"".join(self.wire_buffers())
        return self.head_bytes() + self._body

    def __repr__(self) -> str:
        return "HttpResponse(%d %s, %s, %d body bytes)" % (
            self.status,
            self.reason,
            self.content_type or "no type",
            self.content_length,
        )


def html_response(body: str, status: int = 200) -> HttpResponse:
    """Convenience: a text/html response from a string."""
    headers = Headers([("Content-Type", "text/html; charset=utf-8")])
    return HttpResponse(status, headers, body.encode("utf-8"))


def xml_response(body: str, status: int = 200) -> HttpResponse:
    """Convenience: an application/xml response (RCB poll replies)."""
    headers = Headers([("Content-Type", "application/xml; charset=utf-8")])
    return HttpResponse(status, headers, body.encode("utf-8"))


def _unquote(text: str) -> str:
    """Minimal percent- and plus-decoding for form/query values."""
    text = text.replace("+", " ")
    if "%" not in text:
        return text
    out = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "%" and index + 2 < len(text) + 1:
            hex_part = text[index + 1 : index + 3]
            if len(hex_part) == 2 and all(c in "0123456789abcdefABCDEF" for c in hex_part):
                out.append(chr(int(hex_part, 16)))
                index += 3
                continue
        out.append(char)
        index += 1
    return "".join(out)


def quote(text: str) -> str:
    """Minimal percent-encoding for form/query values."""
    safe = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.~"
    out = []
    for char in text:
        if char in safe:
            out.append(char)
        else:
            out.append("".join("%%%02X" % byte for byte in char.encode("utf-8")))
    return "".join(out)


def encode_form(params: Dict[str, str]) -> bytes:
    """Encode a dict as application/x-www-form-urlencoded."""
    return "&".join(
        "%s=%s" % (quote(str(k)), quote(str(v))) for k, v in params.items()
    ).encode("utf-8")
