"""A minimal cookie jar for the simulated web.

Session-protected webpages are one of the paper's motivations: plain URL
sharing fails on them because the session cookie lives only in the host
browser (§1).  The shop workload reproduces that with real Set-Cookie /
Cookie round trips, so the browser substrate needs a jar.  Attributes
beyond ``Path`` (expiry, Secure, HttpOnly) are outside the simulated
web's behaviour and are parsed but ignored.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["Cookie", "CookieJar"]


class Cookie:
    """A single name=value cookie scoped to (host, path)."""

    __slots__ = ("name", "value", "host", "path")

    def __init__(self, name: str, value: str, host: str, path: str = "/"):
        if not name:
            raise ValueError("cookie name must be non-empty")
        self.name = name
        self.value = value
        self.host = host.lower()
        self.path = path or "/"

    def matches(self, host: str, path: str) -> bool:
        """Whether this cookie applies to (host, path)."""
        if host.lower() != self.host:
            return False
        if self.path == "/":
            return True
        return path == self.path or path.startswith(self.path.rstrip("/") + "/")

    def __repr__(self) -> str:
        return "Cookie(%s=%s; host=%s; path=%s)" % (
            self.name,
            self.value,
            self.host,
            self.path,
        )


class CookieJar:
    """Stores cookies per host and renders the Cookie request header."""

    def __init__(self):
        self._cookies: Dict[Tuple[str, str, str], Cookie] = {}

    def __len__(self) -> int:
        return len(self._cookies)

    def store_from_header(self, host: str, set_cookie_value: str) -> Cookie:
        """Parse a Set-Cookie header value received from ``host``."""
        parts = [part.strip() for part in set_cookie_value.split(";")]
        if not parts or "=" not in parts[0]:
            raise ValueError("bad Set-Cookie value: %r" % (set_cookie_value,))
        name, value = parts[0].split("=", 1)
        path = "/"
        for attribute in parts[1:]:
            if attribute.lower().startswith("path="):
                path = attribute[5:] or "/"
        cookie = Cookie(name.strip(), value.strip(), host, path)
        self._cookies[(cookie.host, cookie.path, cookie.name)] = cookie
        return cookie

    def set(self, host: str, name: str, value: str, path: str = "/") -> Cookie:
        """Insert or replace a cookie directly."""
        cookie = Cookie(name, value, host, path)
        self._cookies[(cookie.host, cookie.path, cookie.name)] = cookie
        return cookie

    def cookies_for(self, host: str, path: str) -> List[Cookie]:
        """Cookies applicable to (host, path), longest path first."""
        matched = [c for c in self._cookies.values() if c.matches(host, path)]
        # Longest path first, as browsers send them.
        matched.sort(key=lambda c: (-len(c.path), c.name))
        return matched

    def cookie_header(self, host: str, path: str) -> Optional[str]:
        """The Cookie header value for a request, or None if no match."""
        matched = self.cookies_for(host, path)
        if not matched:
            return None
        return "; ".join("%s=%s" % (c.name, c.value) for c in matched)

    def get(self, host: str, name: str) -> Optional[str]:
        """Value of the named cookie for ``host``, or None."""
        for cookie in self._cookies.values():
            if cookie.host == host.lower() and cookie.name == name:
                return cookie.value
        return None

    def clear(self) -> None:
        """Drop every stored cookie."""
        self._cookies.clear()
