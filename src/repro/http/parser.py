"""Incremental HTTP/1.1 wire parser.

The simulated TCP layer delivers data in arbitrary chunks, so both ends
need a parser that can be fed bytes as they arrive and emits complete
messages.  This mirrors the paper's RCB-Agent data-listener object, which
asynchronously accepts incoming request bytes over each connected socket
transport (§4.1.1).

Bodies are framed by ``Content-Length`` only; the simulated web does not
use chunked transfer encoding, and a message declaring it is rejected
explicitly rather than mis-parsed.
"""

from __future__ import annotations

from typing import List, Union

from .message import CRLF, Headers, HttpError, HttpRequest, HttpResponse

__all__ = ["RequestParser", "ResponseParser", "parse_request_bytes", "parse_response_bytes"]

_MAX_HEADER_BYTES = 64 * 1024


class _MessageParser:
    """Shared feed/buffer machinery for request and response parsers."""

    def __init__(self):
        self._buffer = bytearray()
        self._messages: List[Union[HttpRequest, HttpResponse]] = []

    def feed(self, data: bytes) -> List[Union[HttpRequest, HttpResponse]]:
        """Add bytes; return every message completed by this chunk."""
        self._buffer.extend(data)
        ready: List[Union[HttpRequest, HttpResponse]] = []
        while True:
            message = self._try_parse_one()
            if message is None:
                break
            ready.append(message)
        return ready

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a complete message."""
        return len(self._buffer)

    def _try_parse_one(self):
        header_end = self._buffer.find(CRLF + CRLF)
        if header_end == -1:
            if len(self._buffer) > _MAX_HEADER_BYTES:
                raise HttpError("header section exceeds %d bytes" % _MAX_HEADER_BYTES)
            return None
        head = bytes(self._buffer[:header_end])
        lines = head.split(CRLF)
        start_line = lines[0].decode("latin-1")
        headers = _parse_header_lines(lines[1:])

        if "transfer-encoding" in headers:
            raise HttpError("chunked transfer encoding is not supported")
        length_text = headers.get("Content-Length")
        body_length = 0
        if length_text is not None:
            if not length_text.strip().isdigit():
                raise HttpError("bad Content-Length: %r" % (length_text,))
            body_length = int(length_text)

        total = header_end + 4 + body_length
        if len(self._buffer) < total:
            return None
        body = bytes(self._buffer[header_end + 4 : total])
        del self._buffer[:total]
        return self._build(start_line, headers, body)

    def _build(self, start_line: str, headers: Headers, body: bytes):
        raise NotImplementedError


class RequestParser(_MessageParser):
    """Feed bytes, get :class:`HttpRequest` objects."""

    def _build(self, start_line: str, headers: Headers, body: bytes) -> HttpRequest:
        parts = start_line.split(" ")
        if len(parts) != 3:
            raise HttpError("bad request line: %r" % (start_line,))
        method, target, version = parts
        if not version.startswith("HTTP/"):
            raise HttpError("bad HTTP version: %r" % (version,))
        return HttpRequest(method, target, headers, body, version)


class ResponseParser(_MessageParser):
    """Feed bytes, get :class:`HttpResponse` objects."""

    def _build(self, start_line: str, headers: Headers, body: bytes) -> HttpResponse:
        parts = start_line.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise HttpError("bad status line: %r" % (start_line,))
        version = parts[0]
        if not parts[1].isdigit():
            raise HttpError("bad status code: %r" % (start_line,))
        status = int(parts[1])
        reason = parts[2] if len(parts) == 3 else ""
        return HttpResponse(status, headers, body, reason, version)


def _parse_header_lines(lines: List[bytes]) -> Headers:
    headers = Headers()
    for raw in lines:
        if not raw:
            continue
        line = raw.decode("latin-1")
        if ":" not in line:
            raise HttpError("bad header line: %r" % (line,))
        name, value = line.split(":", 1)
        name = name.strip()
        if not name:
            raise HttpError("empty header name in %r" % (line,))
        headers.add(name, value.strip())
    return headers


def parse_request_bytes(data: bytes) -> HttpRequest:
    """Parse exactly one request from a complete byte string."""
    parser = RequestParser()
    messages = parser.feed(data)
    if len(messages) != 1 or parser.pending_bytes:
        raise HttpError("expected exactly one complete request")
    return messages[0]


def parse_response_bytes(data: bytes) -> HttpResponse:
    """Parse exactly one response from a complete byte string."""
    parser = ResponseParser()
    messages = parser.feed(data)
    if len(messages) != 1 or parser.pending_bytes:
        raise HttpError("expected exactly one complete response")
    return messages[0]
