"""HTTP client with keep-alive connection pooling and cookie support.

The browser substrate uses one :class:`HttpClient` per browser to fetch
HTML documents and supplementary objects — and, on a participant browser,
to carry Ajax-Snippet's polling traffic to RCB-Agent.  All methods that
perform I/O are generator-style simulation processes: drive them with
``yield from`` inside a process, or via ``Simulator.run_until_complete``.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..net.socket import Host, Connection, NetworkError
from ..net.url import Url, parse_url
from ..sim import StoreClosed
from .cookies import CookieJar
from .message import Headers, HttpError, HttpRequest
from .parser import ResponseParser

__all__ = ["HttpClient", "RequestFailed"]


class RequestFailed(Exception):
    """The request could not produce a response (network failure)."""


class _PooledConnection:
    def __init__(self, connection: Connection):
        self.connection = connection
        self.parser = ResponseParser()


class HttpClient:
    """Issue HTTP requests from a host, reusing keep-alive connections."""

    def __init__(self, host: Host, cookie_jar: Optional[CookieJar] = None):
        self.host = host
        self.sim = host.sim
        self.cookie_jar = cookie_jar
        self._pool: Dict[str, _PooledConnection] = {}
        self.requests_sent = 0
        self.bytes_received = 0

    # -- public API ----------------------------------------------------------

    def get(self, url: Union[str, Url], headers: Optional[Headers] = None):
        """Issue a GET (generator process returning the response)."""
        return self.request("GET", url, headers=headers)

    def post(self, url: Union[str, Url], body: bytes, content_type: str = "application/x-www-form-urlencoded", headers: Optional[Headers] = None, dedicated: bool = False):
        """Issue a POST with a body (generator process)."""
        headers = headers.copy() if headers else Headers()
        headers.set("Content-Type", content_type)
        return self.request("POST", url, headers=headers, body=body, dedicated=dedicated)

    def request(
        self,
        method: str,
        url: Union[str, Url],
        headers: Optional[Headers] = None,
        body: bytes = b"",
        dedicated: bool = False,
    ):
        """Generator process: send a request, return the HttpResponse.

        ``dedicated`` sends on a fresh one-shot connection beside the
        keep-alive pool — how a browser issues a request that must not
        queue behind a long-held exchange on the pooled connection (a
        comet client's second, send-side connection).
        """
        if isinstance(url, str):
            url = parse_url(url)
        if not url.is_absolute:
            raise HttpError("client requires an absolute URL, got %r" % (str(url),))
        request = HttpRequest(method, url.request_target(), headers, body)
        request.headers.set("Host", self._host_header(url))
        if self.cookie_jar is not None:
            cookie_value = self.cookie_jar.cookie_header(url.host, url.path or "/")
            if cookie_value is not None:
                request.headers.set("Cookie", cookie_value)

        if dedicated:
            response = yield from self._send_dedicated(url, request)
        else:
            response = yield from self._send_on_pool(url, request)

        if self.cookie_jar is not None:
            for set_cookie in response.headers.get_all("Set-Cookie"):
                self.cookie_jar.store_from_header(url.host, set_cookie)
        self.bytes_received += len(response.body)
        return response

    def close(self) -> None:
        """Drop every pooled connection."""
        for pooled in self._pool.values():
            pooled.connection.close()
        self._pool.clear()

    # -- internals -------------------------------------------------------------

    def _host_header(self, url: Url) -> str:
        if url.port is not None and url.port != url.effective_port:
            return "%s:%d" % (url.host, url.port)
        if url.port is not None and url.effective_port not in (80, 443):
            return "%s:%d" % (url.host, url.port)
        return url.host

    def _send_on_pool(self, url: Url, request: HttpRequest):
        origin = url.origin
        pooled = self._pool.get(origin)
        fresh = False
        if pooled is None or pooled.connection.closed:
            pooled = yield from self._open(url)
            fresh = True

        try:
            response = yield from self._exchange(pooled, request)
        except (NetworkError, StoreClosed):
            self._pool.pop(origin, None)
            if fresh:
                raise RequestFailed("exchange failed on fresh connection to %s" % origin)
            # A stale keep-alive connection died under us: retry once.
            pooled = yield from self._open(url)
            response = yield from self._exchange(pooled, request)

        if (response.headers.get("Connection") or "").lower() == "close":
            pooled.connection.close()
            self._pool.pop(origin, None)
        return response

    def _send_dedicated(self, url: Url, request: HttpRequest):
        opened = yield from self._open_raw(url)
        try:
            response = yield from self._exchange(opened, request)
        except (NetworkError, StoreClosed):
            raise RequestFailed(
                "exchange failed on dedicated connection to %s" % url.origin
            )
        finally:
            opened.connection.close()
        return response

    def _open(self, url: Url):
        pooled = yield from self._open_raw(url)
        self._pool[url.origin] = pooled
        return pooled

    def _open_raw(self, url: Url):
        port = url.effective_port
        if port is None:
            raise HttpError("cannot determine port for %r" % (str(url),))
        try:
            connection = yield self.host.connect(url.host, port)
        except NetworkError as exc:
            raise RequestFailed("cannot connect to %s: %s" % (url.origin, exc))
        return _PooledConnection(connection)

    def _exchange(self, pooled: _PooledConnection, request: HttpRequest):
        yield pooled.connection.send(request.to_bytes())
        self.requests_sent += 1
        while True:
            chunk = yield pooled.connection.recv()
            responses = pooled.parser.feed(chunk)
            if responses:
                if len(responses) > 1:
                    raise HttpError("server sent pipelined responses unexpectedly")
                return responses[0]
