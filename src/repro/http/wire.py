"""Zero-copy wire assembly: writev-style list-of-buffers responses.

A :class:`WirePlan` is an ordered list of byte buffers that together
form one HTTP message body.  Instead of concatenating page-sized
strings per receiver, the serve path appends *shared* buffers —
immutable ``bytes`` segments (or :class:`memoryview` slices of them)
reused across every receiver of the same document state — plus a small
number of *owned* buffers holding the per-receiver personalization
(the spliced userActions payload).  The plan is handed to the socket
layer as an iovec (:meth:`repro.net.socket.Connection.sendv`), so the
page-sized content is never copied into a per-receiver contiguous
body in userspace.

Accounting distinguishes the two append flavours: ``zero_copy_bytes``
counts bytes that crossed the serve path by reference only, and
``copied_bytes`` counts bytes materialized for this receiver alone.
The ratio is the zero-copy win the ``wire.*`` instruments surface.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

__all__ = ["WirePlan"]

Buffer = Union[bytes, memoryview]


class WirePlan:
    """An ordered list of buffers forming one response body.

    Buffers must be treated as immutable once appended: shared buffers
    are, by design, referenced by many concurrent plans.
    """

    __slots__ = ("buffers", "nbytes", "zero_copy_bytes", "copied_bytes", "buckets", "_joined")

    def __init__(self):
        self.buffers: List[Buffer] = []
        self.nbytes = 0
        #: Bytes appended by reference (shared segments, no copy).
        self.zero_copy_bytes = 0
        #: Bytes materialized for this plan alone (personalization).
        self.copied_bytes = 0
        #: Optional payload-byte decomposition for cost attribution
        #: (see :mod:`repro.obs.attribution`); None when the builder
        #: did not label its bytes.
        self.buckets: Optional[Dict[str, int]] = None
        self._joined = None

    def append_shared(self, buffer: Buffer) -> None:
        """Append one shared (reference-counted, immutable) buffer."""
        self.buffers.append(buffer)
        size = len(buffer)
        self.nbytes += size
        self.zero_copy_bytes += size
        self._joined = None

    def extend_shared(self, buffers: List[Buffer], nbytes: int) -> None:
        """Append a pre-measured run of shared buffers in one step.

        ``nbytes`` must equal the total length of ``buffers``; callers
        (wire templates) precompute it once, so extending a plan costs
        O(len(buffers)) list work with no per-buffer ``len`` calls.
        """
        self.buffers.extend(buffers)
        self.nbytes += nbytes
        self.zero_copy_bytes += nbytes
        self._joined = None

    def append_owned(self, data: bytes) -> None:
        """Append a buffer materialized for this receiver alone."""
        self.buffers.append(data)
        size = len(data)
        self.nbytes += size
        self.copied_bytes += size
        self._joined = None

    def extend_plan(self, other: "WirePlan") -> None:
        """Append another plan's buffers, preserving its zero-copy vs
        copied accounting — how a streamed push response concatenates
        several envelope bodies without materializing any of them."""
        self.buffers.extend(other.buffers)
        self.nbytes += other.nbytes
        self.zero_copy_bytes += other.zero_copy_bytes
        self.copied_bytes += other.copied_bytes
        if other.buckets:
            if self.buckets is None:
                self.buckets = dict(other.buckets)
            else:
                for name, nbytes in other.buckets.items():
                    self.buckets[name] = self.buckets.get(name, 0) + nbytes
        self._joined = None

    def __len__(self) -> int:
        return self.nbytes

    def to_bytes(self) -> bytes:
        """Materialize the contiguous body (memoized).

        Only compatibility paths (``response.body``, tests) pay this
        join; the serve path hands :attr:`buffers` to the socket layer
        directly.
        """
        if self._joined is None:
            self._joined = b"".join(self.buffers)
        return self._joined

    def __repr__(self) -> str:
        return "WirePlan(%d buffers, %d bytes, %d zero-copy / %d copied)" % (
            len(self.buffers),
            self.nbytes,
            self.zero_copy_bytes,
            self.copied_bytes,
        )
