"""Asynchronous HTTP server loop over simulated sockets.

Used both by the origin web servers and, in spirit, by RCB-Agent (the
agent implements its own accept/dispatch loop against the browser's
server-socket API to mirror the paper's `nsIServerSocket` design, but the
per-connection wire handling lives here and is shared).

A handler is a callable ``handler(request, client_name)`` returning either
an :class:`HttpResponse` directly or a generator that yields simulation
events and returns the response — the latter lets handlers model
processing time or perform nested I/O.
"""

from __future__ import annotations

import inspect
from typing import Callable, Optional

from ..sim import Interrupt, Simulator, StoreClosed
from ..net.socket import Connection, Host, ListenSocket, NetworkError
from .message import Headers, HttpError, HttpRequest, HttpResponse
from .parser import RequestParser

__all__ = ["HttpServer", "serve_connection"]


class HttpServer:
    """Accept loop + per-connection request/response pump.

    ``processing_delay`` models server think time: either a constant or
    a callable ``(request) -> seconds`` (e.g. dynamic HTML pages are
    expensive, static objects nearly free).
    """

    def __init__(
        self,
        host: Host,
        port: int,
        handler: Callable,
        processing_delay=0.0,
        server_name: str = "repro-httpd",
    ):
        self.host = host
        self.port = port
        self.handler = handler
        self.processing_delay = processing_delay
        self.server_name = server_name
        self.sim: Simulator = host.sim
        self.listener: Optional[ListenSocket] = None
        self.requests_served = 0
        self.connections_accepted = 0
        self._accept_proc = None
        self._active_connections = set()

    def start(self) -> "HttpServer":
        """Bind the port and begin accepting connections."""
        if self.listener is not None:
            raise RuntimeError("server already started")
        self.listener = self.host.listen(self.port)
        self._accept_proc = self.sim.process(self._accept_loop())
        return self

    def stop(self) -> None:
        """Close the listener and every active connection."""
        if self.listener is not None:
            self.listener.close()
            self.listener = None
        if self._accept_proc is not None and self._accept_proc.is_alive:
            self._accept_proc.interrupt("server stopped")
            self._accept_proc = None
        # A stopped server drops its established connections too.
        for connection in list(self._active_connections):
            connection.close()
        self._active_connections.clear()

    def _accept_loop(self):
        while True:
            try:
                connection = yield self.listener.accept()
            except (StoreClosed, Interrupt):
                return
            self.connections_accepted += 1
            self.sim.process(self._serve(connection))

    def _serve(self, connection: Connection):
        self._active_connections.add(connection)
        try:
            yield from serve_connection(
                self.sim,
                connection,
                self._dispatch,
                server_name=self.server_name,
            )
        finally:
            self._active_connections.discard(connection)
            connection.close()

    def _dispatch(self, request: HttpRequest, client_name: str):
        delay = self.processing_delay
        if callable(delay):
            delay = delay(request)
        if delay > 0:
            yield self.sim.timeout(delay)
        result = self.handler(request, client_name)
        if inspect.isgenerator(result):
            result = yield from result
        if not isinstance(result, HttpResponse):
            raise TypeError("handler returned %r, not HttpResponse" % (result,))
        self.requests_served += 1
        return result


def serve_connection(sim, connection, dispatch, server_name="repro-httpd"):
    """Pump one connection: parse requests, dispatch, send responses.

    ``dispatch`` is a generator function ``(request, client_name) ->
    HttpResponse``.  The pump honours Connection: close and replies 400 to
    malformed traffic before dropping the connection.
    """
    parser = RequestParser()
    while True:
        try:
            chunk = yield connection.recv()
        except StoreClosed:
            return
        try:
            requests = parser.feed(chunk)
        except HttpError as exc:
            error_body = ("Bad request: %s" % exc).encode("utf-8")
            response = HttpResponse(
                400,
                Headers([("Content-Type", "text/plain"), ("Connection", "close")]),
                error_body,
            )
            try:
                yield connection.send(response.to_bytes())
            except NetworkError:
                pass
            return
        for request in requests:
            response = yield from dispatch(request, connection.peer_name)
            response.headers.set("Server", server_name)
            if not request.keep_alive:
                response.headers.set("Connection", "close")
            try:
                if response.wire_plan is not None:
                    # Zero-copy body: hand the buffer list to the
                    # socket layer (writev); no contiguous join here.
                    buffers = response.wire_buffers()
                    shipped = sum(len(buffer) for buffer in buffers)
                    yield connection.sendv(buffers)
                else:
                    data = response.to_bytes()
                    shipped = len(data)
                    yield connection.send(data)
            except NetworkError:
                return
            if response.attribution is not None:
                # Close the cost books only for bytes that actually
                # shipped; the framing residual makes the bucket sum
                # equal the wire total exactly.
                response.attribution.finalize(sim.now, shipped)
            if not request.keep_alive:
                return
