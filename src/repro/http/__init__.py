"""HTTP/1.1 substrate: messages, parsing, client, server, cookies."""

from .cookies import Cookie, CookieJar
from .client import HttpClient, RequestFailed
from .message import (
    STATUS_REASONS,
    Headers,
    HttpError,
    HttpRequest,
    HttpResponse,
    encode_form,
    html_response,
    quote,
    xml_response,
)
from .parser import (
    RequestParser,
    ResponseParser,
    parse_request_bytes,
    parse_response_bytes,
)
from .server import HttpServer, serve_connection
from .wire import WirePlan

__all__ = [
    "Cookie",
    "CookieJar",
    "Headers",
    "HttpClient",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "RequestFailed",
    "RequestParser",
    "ResponseParser",
    "STATUS_REASONS",
    "encode_form",
    "html_response",
    "parse_request_bytes",
    "parse_response_bytes",
    "quote",
    "serve_connection",
    "WirePlan",
    "xml_response",
]
