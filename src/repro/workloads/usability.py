"""The usability study (paper §5.2.3): subjects, tasks, questionnaires.

What the paper measured with 20 human subjects is substituted as follows:

* **Task execution** — each simulated pair of subjects really runs the
  20 tasks of Table 2 twice (switching roles between sessions, as the
  paper's protocol prescribes) against the full simulated stack; task
  success is verified mechanically, re-validating the paper's 100 %
  completion observation end-to-end.
* **Questionnaire** — human opinions cannot be simulated, so the Likert
  responses are drawn from a response model calibrated to the marginal
  distributions the paper reports in Table 4 (quota-exact: Table 4's
  percentages have 2.5 % granularity = 1/40 responses, so the generated
  response sets reproduce the reported distributions exactly).  What IS
  real here is the analysis pipeline: inversion of negative Likert
  items, merging with their positive twins, and the median / mode /
  percentage summaries — the same computation the authors describe.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from .environments import build_lan
from .scenarios import ScenarioRunner, TaskResult

__all__ = [
    "LIKERT_LEVELS",
    "TABLE3_QUESTIONS",
    "TABLE4_DISTRIBUTIONS",
    "QuestionSummary",
    "generate_questionnaire_responses",
    "invert_negative_response",
    "analyze_questionnaire",
    "run_pair_study",
    "run_usability_study",
    "StudyResult",
]

#: Five-point Likert scale, 1 = Strongly disagree ... 5 = Strongly agree.
LIKERT_LEVELS = (
    "Strongly disagree",
    "Disagree",
    "Neither agree nor disagree",
    "Agree",
    "Strongly Agree",
)

#: Paper Table 3: the 16 close-ended questions, grouped in positive /
#: inverted-negative pairs.  Subjects saw them in random order.
TABLE3_QUESTIONS: List[Tuple[str, str]] = [
    ("Q1-P", "It is helpful to use RCB to coordinate a meeting spot via Google Maps."),
    ("Q1-N", "It is useless to use RCB to coordinate a meeting spot via Google Maps."),
    ("Q2-P", "It is helpful to use RCB to perform online co-shopping at Amazon.com."),
    ("Q2-N", "It is useless to use RCB to perform online co-shopping at Amazon.com."),
    ("Q3-P", "It is easy to use RCB to host the Google Maps scenario."),
    ("Q3-N", "It is hard to use RCB to host the Google Maps scenario."),
    ("Q4-P", "It is easy to use RCB to host the online co-shopping scenario."),
    ("Q4-N", "It is hard to use RCB to host the online co-shopping scenario."),
    ("Q5-P", "It is easy to participate in the RCB Google Maps scenario."),
    ("Q5-N", "It is hard to participate in the RCB Google Maps scenario."),
    ("Q6-P", "It is easy to participate in the RCB online co-shopping scenario."),
    ("Q6-N", "It is hard to participate in the RCB online co-shopping scenario."),
    ("Q7-P", "It would be helpful to use RCB on other co-browsing activities."),
    ("Q7-N", "It wouldn't be helpful to use RCB on other co-browsing activities."),
    ("Q8-P", "I would like to use RCB in the future."),
    ("Q8-N", "I wouldn't like to use RCB in the future."),
]

#: Paper Table 4: merged response distributions (percent of the 40
#: responses per merged question: 20 subjects x {positive, inverted
#: negative}), in scale order 1..5.
TABLE4_DISTRIBUTIONS: Dict[str, Tuple[float, float, float, float, float]] = {
    "Q1": (0.0, 0.0, 7.5, 52.5, 40.0),
    "Q2": (0.0, 0.0, 7.5, 52.5, 40.0),
    "Q3": (5.0, 0.0, 5.0, 50.0, 40.0),
    "Q4": (0.0, 2.5, 7.5, 62.5, 27.5),
    "Q5": (0.0, 2.5, 0.0, 62.5, 35.0),
    "Q6": (0.0, 5.0, 2.5, 57.5, 35.0),
    "Q7": (0.0, 2.5, 5.0, 55.0, 37.5),
    "Q8": (0.0, 0.0, 15.0, 55.0, 30.0),
}

SUBJECTS = 20  # 11 female, 9 male in the paper
RESPONSES_PER_QUESTION = 2 * SUBJECTS  # positive + inverted negative item


def invert_negative_response(score: int) -> int:
    """Invert a negative Likert item about the neutral mark (paper
    Table 4 caption): strongly agree <-> strongly disagree, etc."""
    if not 1 <= score <= 5:
        raise ValueError("Likert scores are 1..5, got %r" % (score,))
    return 6 - score


def generate_questionnaire_responses(seed: int = 2009) -> Dict[str, Dict[str, List[int]]]:
    """Raw per-item responses for 20 subjects, quota-matched to Table 4.

    Returns ``{merged question: {"P": [...20 scores...], "N": [...]}}``
    where the N list holds the *raw* (uninverted) responses to the
    negative item.  Which subject produces which response is randomized
    (seeded), mirroring that individual subjects varied; the marginal
    counts are exact.
    """
    rng = random.Random(seed)
    responses: Dict[str, Dict[str, List[int]]] = {}
    for question, percentages in TABLE4_DISTRIBUTIONS.items():
        counts = [round(p / 100.0 * RESPONSES_PER_QUESTION) for p in percentages]
        if sum(counts) != RESPONSES_PER_QUESTION:
            raise ValueError("Table 4 row for %s is not quota-exact" % question)
        merged_scores: List[int] = []
        for score, count in enumerate(counts, start=1):
            merged_scores.extend([score] * count)
        rng.shuffle(merged_scores)
        positive = merged_scores[:SUBJECTS]
        # The other half were answers to the inverted negative item;
        # store them un-inverted, as a subject would have ticked them.
        negative_raw = [invert_negative_response(s) for s in merged_scores[SUBJECTS:]]
        responses[question] = {"P": positive, "N": negative_raw}
    return responses


class QuestionSummary:
    """One row of Table 4."""

    __slots__ = ("question", "percentages", "median", "mode")

    def __init__(self, question: str, percentages: Tuple[float, ...], median: str, mode: str):
        self.question = question
        self.percentages = percentages
        self.median = median
        self.mode = mode

    def __repr__(self):
        return "QuestionSummary(%s, median=%s)" % (self.question, self.median)


def analyze_questionnaire(
    responses: Dict[str, Dict[str, List[int]]]
) -> List[QuestionSummary]:
    """The paper's analysis: invert negatives, merge, summarize.

    Ordinal data without interval scales, so the summary uses median and
    mode plus response percentages (paper §5.2.3(4)).
    """
    summaries = []
    for question in sorted(responses):
        item_sets = responses[question]
        merged = list(item_sets["P"]) + [
            invert_negative_response(score) for score in item_sets["N"]
        ]
        total = len(merged)
        percentages = tuple(
            round(100.0 * sum(1 for s in merged if s == level) / total, 1)
            for level in range(1, 6)
        )
        ordered = sorted(merged)
        midpoint = ordered[(total - 1) // 2] if total % 2 else None
        if total % 2 == 0:
            low = ordered[total // 2 - 1]
            high = ordered[total // 2]
            median_score = (low + high) / 2.0
        else:
            median_score = float(midpoint)
        # Medians landing between two levels are reported at the lower
        # agreeing level, as Likert medians conventionally are.
        median = LIKERT_LEVELS[int(round(median_score)) - 1]
        mode_level = max(range(1, 6), key=lambda level: merged.count(level))
        summaries.append(
            QuestionSummary(question, percentages, median, LIKERT_LEVELS[mode_level - 1])
        )
    return summaries


# -- task-execution side of the study -----------------------------------------------


class StudyResult:
    """Aggregate outcome of the simulated usability study."""

    def __init__(
        self,
        pair_results: List[List[TaskResult]],
        summaries: List[QuestionSummary],
    ):
        self.pair_results = pair_results
        self.summaries = summaries

    @property
    def sessions_run(self) -> int:
        """Number of co-browsing sessions executed."""
        return len(self.pair_results)

    @property
    def tasks_attempted(self) -> int:
        """Total Table-2 tasks attempted across sessions."""
        return sum(len(session) for session in self.pair_results)

    @property
    def tasks_completed(self) -> int:
        """Tasks whose verified effect held."""
        return sum(
            sum(1 for task in session if task.completed) for session in self.pair_results
        )

    @property
    def success_ratio(self) -> float:
        """Completed / attempted (the paper reports 1.0)."""
        if not self.tasks_attempted:
            return 0.0
        return self.tasks_completed / self.tasks_attempted

    @property
    def mean_session_minutes(self) -> float:
        """Mean simulated duration of a two-session pair, in minutes."""
        if not self.pair_results:
            return 0.0
        per_pair: Dict[int, float] = {}
        for index, session in enumerate(self.pair_results):
            per_pair.setdefault(index // 2, 0.0)
            per_pair[index // 2] += sum(task.sim_seconds for task in session)
        values = list(per_pair.values())
        return sum(values) / len(values) / 60.0


def run_pair_study(pair_index: int = 0, poll_interval: float = 1.0) -> List[List[TaskResult]]:
    """One pair of subjects: two sessions with roles switched."""
    sessions = []
    for role_swap in (False, True):
        testbed = build_lan(deploy_sites=False, with_map=True, with_shop=True)
        runner = ScenarioRunner(testbed, poll_interval=poll_interval)
        bob = testbed.host_browser
        alice = testbed.participant_browser
        # Role switching swaps which human plays Bob; structurally the
        # host browser still hosts, so the swap exercises both subjects
        # in both roles across the two sessions.
        results = testbed.run(runner.run_session(bob, alice))
        sessions.append(results)
        del role_swap
    return sessions


def run_usability_study(
    pairs: int = 10, poll_interval: float = 1.0, seed: int = 2009
) -> StudyResult:
    """The full §5.2.3 protocol: 10 pairs x 2 sessions x 20 tasks, plus
    the questionnaire analysis."""
    all_sessions: List[List[TaskResult]] = []
    for pair_index in range(pairs):
        all_sessions.extend(run_pair_study(pair_index, poll_interval))
    responses = generate_questionnaire_responses(seed)
    summaries = analyze_questionnaire(responses)
    return StudyResult(all_sessions, summaries)
