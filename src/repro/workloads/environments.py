"""Experiment testbeds reproducing the paper's two environments (§5.1.2).

* **LAN** — host and participant PCs in the same 100 Mbps campus
  Ethernet, both directly connected to the (simulated) Internet.
* **WAN** — host and participant PCs in two geographically separated
  homes, each on slow broadband: 1.5 Mbps download, 384 Kbps upload.

Each testbed deploys the 20 Table-1 sample sites and, optionally, the
map service and the shop used by the usability scenarios.
"""

from __future__ import annotations

from typing import List, Optional

from ..browser.browser import Browser
from ..net.link import (
    AccessLink,
    LAN_PROFILE,
    MOBILE_WIFI_PROFILE,
    WAN_HOME_PROFILE,
    LinkProfile,
)
from ..net.socket import Host, Network
from ..sim import Simulator
from ..webserver.mapservice import MapService
from ..webserver.shop import ShopService
from ..webserver.sites import deploy_table1_sites

__all__ = ["Testbed", "build_lan", "build_mobile", "build_wan", "MOBILE_GENERATION_COST_PER_KB"]


class Testbed:
    """A fully wired simulated world for one experiment run."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        host_browser: Browser,
        participant_browsers: List[Browser],
        map_service: Optional[MapService] = None,
        shop_service: Optional[ShopService] = None,
        environment: str = "lan",
    ):
        self.sim = sim
        self.network = network
        self.host_browser = host_browser
        self.participant_browsers = participant_browsers
        self.map_service = map_service
        self.shop_service = shop_service
        self.environment = environment

    @property
    def participant_browser(self) -> Browser:
        """The first participant browser (single-participant testbeds)."""
        return self.participant_browsers[0]

    def run(self, generator, limit: float = 1e9):
        """Drive a generator process to completion on this testbed."""
        return self.sim.run_until_complete(self.sim.process(generator), limit=limit)

    def clear_caches(self) -> None:
        """Clean both browsers' caches, as the paper does before each
        experiment round."""
        self.host_browser.clear_cache()
        for browser in self.participant_browsers:
            browser.clear_cache()

    def __repr__(self):
        return "Testbed(%s, %d participants)" % (
            self.environment,
            len(self.participant_browsers),
        )


def _build(
    environment: str,
    host_segment: str,
    participant_segments: List[str],
    profile: LinkProfile,
    participants: int,
    deploy_sites: bool,
    with_map: bool,
    with_shop: bool,
) -> Testbed:
    sim = Simulator()
    # The experiment environments model the 2009 web: DNS lookups and
    # TCP slow start on cold connections (warm RCB polling skips both).
    network = Network(sim, realistic=True)
    if deploy_sites:
        deploy_table1_sites(network)
    map_service = MapService(network) if with_map else None
    shop_service = ShopService(network) if with_shop else None

    host_pc = Host(network, "host-pc", profile, segment=host_segment)
    host_browser = Browser(host_pc, name="host-browser")
    participant_browsers = []
    for index in range(participants):
        pc = Host(
            network,
            "participant-pc-%d" % index,
            profile,
            segment=participant_segments[index % len(participant_segments)],
        )
        participant_browsers.append(Browser(pc, name="participant-%d" % index))

    return Testbed(
        sim,
        network,
        host_browser,
        participant_browsers,
        map_service=map_service,
        shop_service=shop_service,
        environment=environment,
    )


def build_lan(
    participants: int = 1,
    deploy_sites: bool = True,
    with_map: bool = False,
    with_shop: bool = False,
) -> Testbed:
    """The 100 Mbps campus Ethernet environment."""
    return _build(
        "lan",
        host_segment="campus",
        participant_segments=["campus"],
        profile=LAN_PROFILE,
        participants=participants,
        deploy_sites=deploy_sites,
        with_map=with_map,
        with_shop=with_shop,
    )


#: Simulated content-generation cost on the N810-class device
#: (seconds per KB of envelope) — roughly an order of magnitude slower
#: than a 2009 desktop.
MOBILE_GENERATION_COST_PER_KB = 0.005


def build_mobile(
    participants: int = 1,
    deploy_sites: bool = True,
    with_map: bool = False,
    with_shop: bool = False,
) -> Testbed:
    """The paper's §6 mobile scenario: the HOST is an internet tablet on
    Wi-Fi; participants are desktops on the same access network."""
    testbed = _build(
        "mobile",
        host_segment="hotspot",
        participant_segments=["hotspot"],
        profile=LAN_PROFILE,
        participants=participants,
        deploy_sites=deploy_sites,
        with_map=with_map,
        with_shop=with_shop,
    )
    # Swap the host onto the tablet's Wi-Fi link.
    testbed.host_browser.host.link = AccessLink(testbed.sim, MOBILE_WIFI_PROFILE)
    return testbed


def build_wan(
    participants: int = 1,
    deploy_sites: bool = True,
    with_map: bool = False,
    with_shop: bool = False,
) -> Testbed:
    """Two homes on slow 1.5 Mbps / 384 Kbps broadband."""
    segments = ["home-%d" % (index + 1) for index in range(max(participants, 1))]
    return _build(
        "wan",
        host_segment="home-0",
        participant_segments=segments,
        profile=WAN_HOME_PROFILE,
        participants=participants,
        deploy_sites=deploy_sites,
        with_map=with_map,
        with_shop=with_shop,
    )
