"""Experiment workloads: testbeds, Table-2 scenarios, the usability study."""

from .environments import (
    MOBILE_GENERATION_COST_PER_KB,
    Testbed,
    build_lan,
    build_mobile,
    build_wan,
)
from .scenarios import ScenarioRunner, TABLE2_TASKS, TaskResult
from .surf import SurfOperation, SurfReport, generate_trace, run_surf
from .usability import (
    LIKERT_LEVELS,
    QuestionSummary,
    StudyResult,
    TABLE3_QUESTIONS,
    TABLE4_DISTRIBUTIONS,
    analyze_questionnaire,
    generate_questionnaire_responses,
    invert_negative_response,
    run_pair_study,
    run_usability_study,
)

__all__ = [
    "LIKERT_LEVELS",
    "QuestionSummary",
    "ScenarioRunner",
    "SurfOperation",
    "SurfReport",
    "StudyResult",
    "TABLE2_TASKS",
    "TABLE3_QUESTIONS",
    "TABLE4_DISTRIBUTIONS",
    "TaskResult",
    "Testbed",
    "analyze_questionnaire",
    "MOBILE_GENERATION_COST_PER_KB",
    "build_lan",
    "build_mobile",
    "build_wan",
    "generate_questionnaire_responses",
    "generate_trace",
    "invert_negative_response",
    "run_pair_study",
    "run_surf",
    "run_usability_study",
]
