"""Random-surf workload: long co-browsing sessions over many pages.

The paper's sessions are short and scripted; real co-browsing sessions
wander.  This workload generates a deterministic pseudo-random browsing
trace over the Table-1 sites — navigations, in-page DHTML mutations,
participant think-time pauses, and participant-initiated actions — and
drives a live session through it, verifying convergence after every
step.  Used by the soak tests and the throughput benchmark.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.session import CoBrowsingSession
from ..webserver.sites import TABLE1_SITES
from .environments import Testbed

__all__ = ["SurfOperation", "generate_trace", "run_surf", "SurfReport"]


class SurfOperation:
    """One step of a surfing trace."""

    __slots__ = ("kind", "argument")

    def __init__(self, kind: str, argument=None):
        if kind not in ("visit", "mutate", "idle", "participant_fill"):
            raise ValueError("unknown surf operation %r" % (kind,))
        self.kind = kind
        self.argument = argument

    def __repr__(self):
        return "SurfOperation(%s, %r)" % (self.kind, self.argument)


def generate_trace(seed: int, length: int, sites: Optional[List[str]] = None) -> List[SurfOperation]:
    """A deterministic trace of ``length`` operations."""
    if length < 1:
        raise ValueError("length must be positive")
    rng = random.Random(seed)
    hosts = sites if sites is not None else [spec.host for spec in TABLE1_SITES]
    operations: List[SurfOperation] = [SurfOperation("visit", rng.choice(hosts))]
    for _ in range(length - 1):
        roll = rng.random()
        if roll < 0.45:
            operations.append(SurfOperation("visit", rng.choice(hosts)))
        elif roll < 0.70:
            operations.append(SurfOperation("mutate", rng.randint(0, 10**6)))
        elif roll < 0.90:
            operations.append(SurfOperation("idle", round(rng.uniform(0.1, 2.0), 3)))
        else:
            operations.append(
                SurfOperation("participant_fill", "typed-%d" % rng.randint(0, 999))
            )
    return operations


class SurfReport:
    """Outcome of a surf run."""

    def __init__(self):
        self.pages_visited = 0
        self.mutations = 0
        self.participant_fills = 0
        self.syncs_verified = 0
        self.sim_seconds = 0.0

    def __repr__(self):
        return "SurfReport(%d pages, %d mutations, %d verified syncs)" % (
            self.pages_visited,
            self.mutations,
            self.syncs_verified,
        )


def run_surf(
    testbed: Testbed,
    session: CoBrowsingSession,
    trace: List[SurfOperation],
    verify_each_step: bool = True,
):
    """Generator process: drive the session through ``trace``.

    With ``verify_each_step``, every operation is followed by a
    synchronization barrier and a host/participant equivalence check —
    the timestamp-protocol invariant exercised at scale.
    """
    sim = testbed.sim
    host_browser = testbed.host_browser
    participant = testbed.participant_browser
    report = SurfReport()
    started = sim.now

    snippet = yield from session.join(participant, participant_id="surfer")

    def verify():
        assert participant.page.document.title == host_browser.page.document.title
        assert (
            participant.page.document.body.text_content
            == host_browser.page.document.body.text_content
        )
        report.syncs_verified += 1

    for operation in trace:
        if operation.kind == "visit":
            yield from session.host_navigate("http://%s/" % operation.argument)
            report.pages_visited += 1
        elif operation.kind == "mutate":
            value = operation.argument

            def mutate(document, value=value):
                heading = document.get_elements_by_tag_name("h2")
                if heading:
                    heading[0].inner_html = "mutated-%d" % value
                else:
                    document.body.append_child(
                        document.create_element("div", id="mutated-%d" % value)
                    )

            host_browser.mutate_document(mutate)
            report.mutations += 1
        elif operation.kind == "idle":
            yield sim.timeout(operation.argument)
            continue  # nothing changed; no barrier needed
        elif operation.kind == "participant_fill":
            field = None
            for element in participant.page.document.descendant_elements():
                if element.tag == "input" and element.get_attribute("type") == "text":
                    field = element
                    break
            if field is not None:
                participant.fill_field(field, operation.argument)
                participant.dispatch_event(field, "change")
                yield from snippet.flush()
                report.participant_fills += 1
        if verify_each_step:
            yield from session.wait_until_synced(timeout=600)
            verify()

    yield from session.wait_until_synced(timeout=600)
    verify()
    session.leave(snippet)
    report.sim_seconds = sim.now - started
    return report
