"""The paper's usability-study session: Table 2's twenty tasks.

Two role players — Bob (the co-browsing host) and Alice (a participant)
— run the combined Google Maps + Amazon co-shopping session.  Every task
is executed against the real simulated stack and *verified*: a task only
counts as completed when its observable effect holds (the map really
recentred on Alice's browser, the cart really contains the laptop Alice
picked, ...).  The paper's human subjects used a voice channel to
mediate; voice exchanges are modelled as zero-cost annotations.
"""

from __future__ import annotations

from typing import List, Optional

from ..browser.browser import Browser
from ..core.session import CoBrowsingSession
from ..core.snippet import AjaxSnippet
from ..webserver.mapservice import MAP_HOST, MapPageDriver
from ..webserver.shop import SHOP_HOST
from .environments import Testbed

__all__ = ["TaskResult", "ScenarioRunner", "TABLE2_TASKS"]

#: Task ids and descriptions, verbatim from the paper's Table 2.
TABLE2_TASKS = [
    ("T1-B", "Bob starts a RCB co-browsing session using a Firefox browser."),
    ("T1-A", "Alice types the URL told by Bob in a Firefox browser to join the session."),
    ("T2-B", "Bob searches the location '653 5th Ave, New York' using Google Maps."),
    ("T2-A", "Alice tells Bob that the map of the location is automatically shown on her browser."),
    ("T3-B", "Bob zooms in and out of the map, drags up/down/left/right the map."),
    ("T3-A", "Alice tells Bob that the map is automatically updated on her browser."),
    ("T4-B", "Bob clicks to the street-view of the searched location."),
    ("T4-A", "Alice tells Bob that the street-view is also automatically shown on her browser."),
    ("T5-B", "Bob tells Alice to meet outside the four red roof show-windows of Cartier shown in the street-view."),
    ("T5-A", "Alice finds the four red roof show-windows of Cartier and agrees with the meeting spot."),
    ("T6-B", "Bob continues to visit the homepage of Amazon.com website."),
    ("T6-A", "Alice tells Bob that the homepage of Amazon.com is automatically shown on her browser."),
    ("T7-B", "Bob searches and clicks to find a MacBook Air laptop at the Amazon.com website."),
    ("T7-A", "Alice tells Bob that the pages are automatically updated on her browser."),
    ("T8-B", "Bob asks Alice to search and click on the pages shown on her browser to choose a different MacBook Air laptop."),
    ("T8-A", "Alice chooses a different MacBook Air laptop and tells Bob that this laptop is her final choice."),
    ("T9-B", "Bob adds the selected laptop to the shopping cart and starts the checkout procedure."),
    ("T9-A", "Alice fills the shipping address form shown on her browser."),
    ("T10-B", "Bob finishes the rest of the checkout procedure."),
    ("T10-A", "Alice leaves the co-browsing session."),
]

#: The laptop Bob finds first and the different one Alice picks instead.
BOB_CHOICE = "mba-13-128"
ALICE_CHOICE = "mba-13-64"

ALICE_ADDRESS = {
    "full_name": "Alice Example",
    "street": "653 5th Ave",
    "city": "New York",
    "state": "NY",
    "zip_code": "10022",
}


class TaskResult:
    """Outcome of one Table 2 task."""

    __slots__ = ("task_id", "description", "completed", "detail", "sim_seconds")

    def __init__(self, task_id: str, description: str, completed: bool, detail: str, sim_seconds: float):
        self.task_id = task_id
        self.description = description
        self.completed = completed
        self.detail = detail
        self.sim_seconds = sim_seconds

    def __repr__(self):
        return "TaskResult(%s, %s)" % (self.task_id, "ok" if self.completed else "FAILED")


class ScenarioRunner:
    """Executes one full co-browsing session (all 20 tasks of Table 2)."""

    def __init__(self, testbed: Testbed, poll_interval: float = 1.0):
        if testbed.map_service is None or testbed.shop_service is None:
            raise ValueError("the scenario testbed needs with_map and with_shop")
        self.testbed = testbed
        self.poll_interval = poll_interval

    def run_session(self, bob_browser: Browser, alice_browser: Browser):
        """Generator process returning the list of 20 TaskResults."""
        results: List[TaskResult] = []
        sim = self.testbed.sim
        descriptions = dict(TABLE2_TASKS)

        def record(task_id: str, completed: bool, detail: str, started: float):
            results.append(
                TaskResult(
                    task_id,
                    descriptions[task_id],
                    completed,
                    detail,
                    sim.now - started,
                )
            )
            if not completed:
                raise _TaskFailed(task_id, detail)

        session: Optional[CoBrowsingSession] = None
        snippet: Optional[AjaxSnippet] = None
        try:
            # T1-B: Bob hosts.
            started = sim.now
            session = CoBrowsingSession(bob_browser, poll_interval=self.poll_interval)
            hosting = bob_browser.host.listener_on(session.agent.port) is not None
            record("T1-B", hosting, "agent listening on %s" % session.agent.url, started)

            # T1-A: Alice joins by typing the URL.
            started = sim.now
            snippet = yield from session.join(alice_browser, participant_id="alice")
            record(
                "T1-A",
                snippet.connected and alice_browser.address_bar == session.agent.url,
                "joined %s" % alice_browser.address_bar,
                started,
            )

            # T2-B: Bob searches the meeting location on the map service.
            started = sim.now
            yield from session.host_navigate("http://%s/" % MAP_HOST)
            yield from session.wait_until_synced()
            driver = MapPageDriver(bob_browser)
            yield from driver.search("653 5th Ave, New York")
            record("T2-B", driver.viewport == (12, 1205, 1539), "viewport %r" % (driver.viewport,), started)

            # T2-A: the map is automatically shown on Alice's browser.
            started = sim.now
            yield from session.wait_until_synced()
            alice_canvas = alice_browser.page.document.get_element_by_id("map-canvas")
            record(
                "T2-A",
                alice_canvas is not None and alice_canvas.get_attribute("data-x") == "1205",
                "alice sees x=%s" % (alice_canvas and alice_canvas.get_attribute("data-x")),
                started,
            )

            # T3-B: Bob zooms in, out, and drags the map around.
            started = sim.now
            yield from driver.zoom(1)
            yield from driver.zoom(-1)
            for dx, dy in ((0, -1), (0, 1), (-1, 0), (1, 0)):
                yield from driver.pan(dx, dy)
            record("T3-B", driver.viewport == (12, 1205, 1539), "back at %r" % (driver.viewport,), started)

            # T3-A: Alice's map followed every change.
            started = sim.now
            yield from session.wait_until_synced()
            bob_tile = bob_browser.page.document.get_element_by_id("tile-0-0")
            alice_tile = alice_browser.page.document.get_element_by_id("tile-0-0")
            record(
                "T3-A",
                alice_tile is not None
                and _same_object(
                    bob_browser, bob_tile.get_attribute("src"), alice_tile.get_attribute("src")
                ),
                "tile src %s" % (alice_tile and alice_tile.get_attribute("src")),
                started,
            )

            # T4-B: Bob opens the street view.
            started = sim.now
            yield from driver.open_street_view()
            record(
                "T4-B",
                bob_browser.page.document.get_element_by_id("street-view") is not None,
                "street view embedded",
                started,
            )

            # T4-A: the street view appears on Alice's browser too.
            started = sim.now
            yield from session.wait_until_synced()
            alice_flash = alice_browser.page.document.get_element_by_id("street-view")
            record("T4-A", alice_flash is not None, "alice sees the flash element", started)

            # T5-B / T5-A: voice-channel agreement on the meeting spot.
            started = sim.now
            record("T5-B", True, "(voice) meeting spot proposed", started)
            record("T5-A", True, "(voice) meeting spot agreed", started)

            # T6-B: Bob continues to the shop homepage.
            started = sim.now
            yield from session.host_navigate("http://%s/" % SHOP_HOST)
            record(
                "T6-B",
                bob_browser.page.document.get_element_by_id("searchform") is not None,
                "shop home on bob's browser",
                started,
            )

            # T6-A: shop homepage shows up for Alice.
            started = sim.now
            yield from session.wait_until_synced()
            record(
                "T6-A",
                alice_browser.page.document.get_element_by_id("searchform") is not None,
                "shop home on alice's browser",
                started,
            )

            # T7-B: Bob searches and clicks through to a MacBook Air.
            started = sim.now
            form = bob_browser.page.document.get_element_by_id("searchform")
            yield from bob_browser.submit_form(form, {"q": "MacBook Air"})
            link = bob_browser.page.document.get_element_by_id("result-%s" % BOB_CHOICE)
            yield from bob_browser.click_link(link)
            record(
                "T7-B",
                "MacBook Air" in bob_browser.page.document.get_element_by_id("item-title").text_content,
                "bob on item page %s" % BOB_CHOICE,
                started,
            )

            # T7-A: the item page reached Alice.
            started = sim.now
            yield from session.wait_until_synced()
            alice_title = alice_browser.page.document.get_element_by_id("item-title")
            record("T7-A", alice_title is not None, "alice sees the item page", started)

            # T8-B: Bob asks Alice to pick (voice) — verified by T8-A.
            started = sim.now
            record("T8-B", True, "(voice) bob asks alice to choose", started)

            # T8-A: Alice navigates *from her browser*: her click is sent
            # to the host, which performs it (paper §3.3).
            started = sim.now
            topnav_home = alice_browser.page.document.get_elements_by_tag_name("a")[0]
            yield from alice_browser.click_link(topnav_home)  # intercepted
            yield from snippet.flush()
            yield from session.wait_until_synced()
            form = alice_browser.page.document.get_element_by_id("searchform")
            field = form.get_elements_by_tag_name("input")[0]
            alice_browser.fill_field(field, "MacBook Air")
            yield from alice_browser.submit_form(form)  # intercepted, queued
            yield from snippet.flush()
            yield from session.wait_until_synced()
            choice_link = alice_browser.page.document.get_element_by_id("result-%s" % ALICE_CHOICE)
            yield from alice_browser.click_link(choice_link)  # intercepted
            yield from snippet.flush()
            yield from session.wait_until_synced()
            bob_item = bob_browser.page.document.get_element_by_id("item-title")
            record(
                "T8-A",
                bob_item is not None and "64GB" in bob_item.text_content,
                "host navigated to alice's choice: %s"
                % (bob_item.text_content if bob_item else "none"),
                started,
            )

            # T9-B: Bob adds the laptop to the cart and starts checkout.
            started = sim.now
            add_form = bob_browser.page.document.get_element_by_id("addform")
            yield from bob_browser.submit_form(add_form)
            yield from bob_browser.navigate("http://%s/checkout" % SHOP_HOST)
            record(
                "T9-B",
                bob_browser.page.document.get_element_by_id("addressform") is not None,
                "checkout form open",
                started,
            )

            # T9-A: Alice co-fills the shipping address from her browser.
            started = sim.now
            yield from session.wait_until_synced()
            alice_form = alice_browser.page.document.get_element_by_id("addressform")
            for name, value in ALICE_ADDRESS.items():
                field = Browser._find_form_field(alice_form, name)
                alice_browser.fill_field(field, value)
                alice_browser.dispatch_event(field, "change")
            yield from snippet.flush()
            yield from session.wait_until_synced()
            bob_form = bob_browser.page.document.get_element_by_id("addressform")
            merged = Browser.collect_form_fields(bob_form)
            record(
                "T9-A",
                merged == ALICE_ADDRESS,
                "address on bob's form: %r" % (merged,),
                started,
            )

            # T10-B: Bob finishes the checkout.
            started = sim.now
            yield from bob_browser.submit_form(bob_browser.page.document.get_element_by_id("addressform"))
            yield from bob_browser.submit_form(bob_browser.page.document.get_element_by_id("confirmform"))
            record(
                "T10-B",
                bob_browser.page.document.get_element_by_id("order-complete") is not None,
                "order placed",
                started,
            )

            # T10-A: Alice leaves.
            started = sim.now
            yield from session.wait_until_synced()
            session.leave(snippet)
            record("T10-A", not snippet.connected, "alice disconnected", started)
        except _TaskFailed:
            pass
        finally:
            if session is not None:
                session.close()
        return results


def _same_object(host_browser: Browser, host_src: str, participant_src: str) -> bool:
    """Whether a participant-side object URL denotes the same object as a
    host-side one, accounting for the cache-mode rewrite to agent URLs."""
    from ..http import quote
    from ..net.url import parse_url, resolve_url

    if participant_src == host_src:
        return True
    absolute = str(resolve_url(host_browser.page.url, parse_url(host_src)))
    if participant_src == absolute:
        return True
    return quote(absolute) in participant_src


class _TaskFailed(Exception):
    def __init__(self, task_id: str, detail: str):
        super().__init__("%s failed: %s" % (task_id, detail))
        self.task_id = task_id
