"""Origin web servers for the simulated internet."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..http import Headers, HttpRequest, HttpResponse, HttpServer
from ..net.link import SERVER_PROFILE, LinkProfile
from ..net.socket import Host, Network
from .pagegen import GeneratedSite

__all__ = ["StaticSite", "OriginServer", "deploy_site"]

#: Server-side think time per request — small but nonzero, as real
#: origin servers have.
DEFAULT_PROCESSING_DELAY = 0.005


class StaticSite:
    """A path→content mapping served as a website."""

    def __init__(self, host_name: str):
        self.host_name = host_name
        self._resources: Dict[str, Tuple[str, bytes]] = {}

    def add(self, path: str, content_type: str, data: bytes) -> None:
        """Register a resource at ``path``."""
        if not path.startswith("/"):
            raise ValueError("paths must start with '/': %r" % (path,))
        self._resources[path] = (content_type, bytes(data))

    def add_page(self, path: str, html: str) -> None:
        """Register an HTML page at ``path``."""
        self.add(path, "text/html; charset=utf-8", html.encode("utf-8"))

    @classmethod
    def from_generated(cls, generated: GeneratedSite) -> "StaticSite":
        """Build a site from a generated homepage bundle."""
        site = cls(generated.host)
        site.add_page("/", generated.html)
        site.add_page("/index.html", generated.html)
        for path, (content_type, data) in generated.objects.items():
            site.add(path, content_type, data)
        return site

    def handle(self, request: HttpRequest, client_name: str) -> HttpResponse:
        """HTTP handler: serve the registered resource or 404."""
        if request.method not in ("GET", "HEAD"):
            return HttpResponse(405, body=b"method not allowed")
        resource = self._resources.get(request.path)
        if resource is None:
            return HttpResponse(404, body=b"not found")
        content_type, data = resource
        headers = Headers([("Content-Type", content_type)])
        body = b"" if request.method == "HEAD" else data
        return HttpResponse(200, headers, body)


class OriginServer:
    """A deployed website: a network host running an HTTP server."""

    def __init__(
        self,
        network: Network,
        host_name: str,
        handler: Callable,
        port: int = 80,
        profile: LinkProfile = SERVER_PROFILE,
        processing_delay: float = DEFAULT_PROCESSING_DELAY,
        extra_latency_s: float = 0.0,
    ):
        existing = network.lookup(host_name)
        self.host = existing or Host(
            network,
            host_name,
            profile,
            segment="internet",
            extra_latency_s=extra_latency_s,
        )
        self.http = HttpServer(
            self.host,
            port,
            handler,
            processing_delay=processing_delay,
            server_name=host_name,
        )
        self.http.start()

    def stop(self) -> None:
        """Close the listener and every active connection."""
        self.http.stop()

    @property
    def requests_served(self) -> int:
        """Requests answered since the server started."""
        return self.http.requests_served


def deploy_site(
    network: Network,
    generated: GeneratedSite,
    port: int = 80,
    extra_latency_s: float = 0.0,
    processing_delay: float = DEFAULT_PROCESSING_DELAY,
) -> OriginServer:
    """Put a generated site on the simulated internet."""
    site = StaticSite.from_generated(generated)
    return OriginServer(
        network,
        generated.host,
        site.handle,
        port=port,
        extra_latency_s=extra_latency_s,
        processing_delay=processing_delay,
    )
