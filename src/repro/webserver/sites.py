"""The 20 sample sites of the paper's Table 1.

Homepage HTML sizes are taken verbatim from Table 1 (in KB).  The sites
were chosen from the Alexa top 50 with geographic/content diversity; the
synthetic reproduction keeps the names, indices, and document sizes, and
derives a deterministic supplementary-object population for each.
"""

from __future__ import annotations

from typing import Dict, List

from ..net.socket import Network
from .pagegen import GeneratedSite, generate_site
from .server import OriginServer

__all__ = ["SiteSpec", "TABLE1_SITES", "generate_table1_site", "deploy_table1_sites"]


#: One-way geographic latency penalty per region (the paper chose the
#: 20 sites for geographic diversity; overseas servers are farther).
REGION_LATENCY = {
    "us-east": 0.020,
    "us-west": 0.045,
    "europe": 0.110,
    "asia": 0.150,
}


class SiteSpec:
    """Name, homepage size, and region of one Table 1 sample site."""

    __slots__ = ("index", "host", "page_kb", "region")

    def __init__(self, index: int, host: str, page_kb: float, region: str = "us-east"):
        if region not in REGION_LATENCY:
            raise ValueError("unknown region %r" % (region,))
        self.index = index
        self.host = host
        self.page_kb = page_kb
        self.region = region

    @property
    def extra_latency_s(self) -> float:
        """One-way geographic latency penalty for this site's region."""
        return REGION_LATENCY[self.region]

    @property
    def think_time_s(self) -> float:
        """Server-side page generation time: the big 2009 portal
        homepages were dynamically assembled, and heavier pages took
        longer to produce."""
        return min(0.3 + self.page_kb * 0.009, 1.5)

    def __repr__(self) -> str:
        return "SiteSpec(#%d %s, %.1f KB, %s)" % (
            self.index,
            self.host,
            self.page_kb,
            self.region,
        )


#: Paper Table 1: index, site name, homepage HTML size (KB).
TABLE1_SITES: List[SiteSpec] = [
    SiteSpec(1, "yahoo.com", 130.3, "us-west"),
    SiteSpec(2, "google.com", 6.8, "us-west"),
    SiteSpec(3, "youtube.com", 69.2, "us-west"),
    SiteSpec(4, "live.com", 20.9, "us-west"),
    SiteSpec(5, "msn.com", 49.6, "us-west"),
    SiteSpec(6, "myspace.com", 53.2, "us-west"),
    SiteSpec(7, "wikipedia.org", 51.7, "us-east"),
    SiteSpec(8, "facebook.com", 23.2, "us-west"),
    SiteSpec(9, "yahoo.co.jp", 101.4, "asia"),
    SiteSpec(10, "ebay.com", 50.5, "us-west"),
    SiteSpec(11, "aol.com", 71.3, "us-east"),
    SiteSpec(12, "mail.ru", 83.8, "europe"),
    SiteSpec(13, "amazon.com", 228.5, "us-west"),
    SiteSpec(14, "cnn.com", 109.4, "us-east"),
    SiteSpec(15, "espn.go.com", 110.9, "us-east"),
    SiteSpec(16, "free.fr", 70.0, "europe"),
    SiteSpec(17, "adobe.com", 37.3, "us-west"),
    SiteSpec(18, "apple.com", 10.0, "us-west"),
    SiteSpec(19, "about.com", 35.8, "us-east"),
    SiteSpec(20, "nytimes.com", 120.0, "us-east"),
]

_SITE_CACHE: Dict[str, GeneratedSite] = {}


def generate_table1_site(spec: SiteSpec) -> GeneratedSite:
    """Generate (and memoize) the synthetic homepage for a Table 1 site.

    Generation is deterministic, so memoizing is purely a speed-up for
    benchmark harnesses that rebuild the testbed repeatedly.
    """
    cached = _SITE_CACHE.get(spec.host)
    if cached is None:
        cached = generate_site(spec.host, spec.page_kb)
        _SITE_CACHE[spec.host] = cached
    return cached


def deploy_table1_sites(network: Network) -> Dict[str, OriginServer]:
    """Deploy all 20 sample sites onto a simulated network, each with its
    region's latency penalty and its size-dependent server think time.

    As in the 2009 web, the bare domain 301-redirects to the canonical
    ``www.`` host — a cost every cold page fetch (M1) pays and the warm
    RCB polling channel never does.
    """
    from ..http import Headers, HttpResponse
    from .server import StaticSite

    servers = {}
    for spec in TABLE1_SITES:
        generated = generate_table1_site(spec)
        site = StaticSite.from_generated(generated)
        canonical = "www." + spec.host
        # Only the dynamically-generated homepage pays the think time;
        # static supplementary objects are served nearly instantly.
        think = spec.think_time_s

        def page_delay(request, think=think):
            if request.path in ("/", "/index.html"):
                return think
            # Static objects still cost a 2009-typical per-request
            # server response time.
            return 0.12

        servers[spec.host] = OriginServer(
            network,
            canonical,
            site.handle,
            extra_latency_s=spec.extra_latency_s,
            processing_delay=page_delay,
        )

        def redirect(request, client_name, target=canonical):
            headers = Headers([("Location", "http://%s%s" % (target, request.path))])
            return HttpResponse(301, headers)

        OriginServer(
            network,
            spec.host,
            redirect,
            extra_latency_s=spec.extra_latency_s,
            processing_delay=0.03,
        )
    return servers
