"""A Google-Maps-like Ajax mapping service.

The paper's first usability scenario (§5.2.1) co-browses Google Maps:
the map page retrieves 256×256 tile images over Ajax and updates its
content grid-by-grid without the URL ever changing — exactly the class
of dynamically-updated page that URL sharing cannot co-browse and RCB
can.  This module provides both the origin service (tile/search/
street-view endpoints plus the map page) and :class:`MapPageDriver`, the
in-page application logic that a browser "runs" when the user searches,
pans, zooms, or opens street view.

Driving the page through :class:`MapPageDriver` mutates the host
browser's DOM via ``Browser.mutate_document``, which fires the
document-changed notification RCB-Agent synchronizes from (paper Fig. 1,
step 9).
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from ..browser.browser import Browser
from ..http import Headers, HttpRequest, HttpResponse, html_response
from ..net.socket import Network
from .server import OriginServer

__all__ = ["MapService", "MapPageDriver", "MAP_HOST", "VIEWPORT_TILES"]

MAP_HOST = "maps.example.com"

#: The viewport shows a 3x3 grid of tiles, Google-Maps style.
VIEWPORT_TILES = 3

#: Known geocoding results (tile coordinates at zoom 12).
_LANDMARKS: Dict[str, Tuple[int, int]] = {
    "653 5th ave, new york": (1205, 1539),
    "cartier new york": (1205, 1539),
    "times square, new york": (1203, 1538),
    "william and mary": (1101, 1620),
}


class MapService:
    """The origin server side: map page, tiles, geocoding, street view."""

    def __init__(self, network: Network, host_name: str = MAP_HOST):
        self.host_name = host_name
        self.tile_requests = 0
        self.search_requests = 0
        self.server = OriginServer(network, host_name, self.handle)

    # -- request handling ---------------------------------------------------------

    def handle(self, request: HttpRequest, client_name: str) -> HttpResponse:
        """HTTP handler: map page, tiles, geocoding, street view."""
        if request.path == "/":
            return html_response(self._map_page())
        if request.path.startswith("/tiles/"):
            return self._tile(request)
        if request.path == "/geocode":
            return self._geocode(request)
        if request.path == "/streetview":
            return self._street_view(request)
        if request.path == "/js/maps_api.js":
            return HttpResponse(
                200,
                Headers([("Content-Type", "application/javascript")]),
                _MAPS_API_JS.encode("utf-8"),
            )
        return HttpResponse(404, body=b"not found")

    def _map_page(self) -> str:
        # The tile grid starts empty; the page's script fills it in after
        # load — matching how the real service bootstraps via Ajax.
        cells = "".join(
            '<img class="tile" id="tile-%d-%d" src="/tiles/12/%d/%d.png" alt="">'
            % (row, col, 1200 + col, 1530 + row)
            for row in range(VIEWPORT_TILES)
            for col in range(VIEWPORT_TILES)
        )
        return (
            "<!DOCTYPE html><html><head><title>Maps</title>"
            '<script src="/js/maps_api.js"></script></head>'
            "<body>"
            '<form id="searchform" action="/geocode" method="GET" onsubmit="">'
            '<input type="text" name="q" value=""><input type="submit" value="Search maps">'
            "</form>"
            '<div id="map-canvas" data-zoom="12" data-x="1200" data-y="1530">%s</div>'
            '<div id="statusbar">Ready</div>'
            "</body></html>" % cells
        )

    def _tile(self, request: HttpRequest) -> HttpResponse:
        parts = request.path.split("/")  # ['', 'tiles', z, x, 'y.png']
        if len(parts) != 5 or not parts[4].endswith(".png"):
            return HttpResponse(404, body=b"bad tile path")
        try:
            zoom = int(parts[2])
            x = int(parts[3])
            y = int(parts[4][:-4])
        except ValueError:
            return HttpResponse(404, body=b"bad tile coords")
        self.tile_requests += 1
        rng = random.Random((zoom * 73856093) ^ (x * 19349663) ^ (y * 83492791))
        payload = bytes(rng.getrandbits(8) for _ in range(rng.randint(9000, 14000)))
        return HttpResponse(200, Headers([("Content-Type", "image/png")]), payload)

    def _geocode(self, request: HttpRequest) -> HttpResponse:
        self.search_requests += 1
        query = request.query_params().get("q", "").strip().lower()
        coords = _LANDMARKS.get(query)
        if coords is None:
            # Unknown addresses geocode deterministically from their text.
            digest = sum(ord(c) for c in query) or 1
            coords = (1000 + digest % 500, 1400 + (digest * 7) % 400)
        body = '<result q="%s"><x>%d</x><y>%d</y><zoom>12</zoom></result>' % (
            query,
            coords[0],
            coords[1],
        )
        return HttpResponse(
            200, Headers([("Content-Type", "application/xml")]), body.encode("utf-8")
        )

    def _street_view(self, request: HttpRequest) -> HttpResponse:
        params = request.query_params()
        rng = random.Random(params.get("x", "0") + params.get("y", "0"))
        payload = bytes(rng.getrandbits(8) for _ in range(30000))
        return HttpResponse(
            200,
            Headers([("Content-Type", "application/x-shockwave-flash")]),
            payload,
        )


_MAPS_API_JS = """
// Simulated maps bootstrap. The actual pan/zoom/search behaviour is
// modelled by repro.webserver.mapservice.MapPageDriver on the driving
// browser, mirroring what this script would do in a real browser.
var mapState = { zoom: 12, x: 1200, y: 1530 };
"""


class MapPageDriver:
    """The map page's client-side application logic.

    Each method is a generator simulation process operating on a browser
    whose current page is the map page: it issues the Ajax requests the
    real page's JavaScript would issue and applies the same DOM updates.
    """

    def __init__(self, browser: Browser, origin: str = "http://" + MAP_HOST):
        self.browser = browser
        self.origin = origin

    # -- state helpers ------------------------------------------------------------

    def _canvas(self):
        canvas = self.browser.page.document.get_element_by_id("map-canvas")
        if canvas is None:
            raise RuntimeError("current page is not the map page")
        return canvas

    @property
    def viewport(self) -> Tuple[int, int, int]:
        """Current (zoom, x, y) of the map canvas."""
        canvas = self._canvas()
        return (
            int(canvas.get_attribute("data-zoom")),
            int(canvas.get_attribute("data-x")),
            int(canvas.get_attribute("data-y")),
        )

    # -- user gestures -------------------------------------------------------------

    def search(self, query: str):
        """Geocode ``query`` and recenter the viewport on the result."""
        response = yield from self.browser.ajax_request(
            "GET", "%s/geocode?q=%s" % (self.origin, query.replace(" ", "+").replace(",", "%2C"))
        )
        text = response.text()
        x = int(_extract(text, "x"))
        y = int(_extract(text, "y"))
        zoom = int(_extract(text, "zoom"))
        yield from self._recenter(zoom, x, y, status="Showing results for %s" % query)

    def pan(self, dx: int, dy: int):
        """Drag the map by (dx, dy) tiles."""
        zoom, x, y = self.viewport
        yield from self._recenter(zoom, x + dx, y + dy, status="Panned")

    def zoom(self, delta: int):
        """Zoom in (positive) or out (negative)."""
        zoom, x, y = self.viewport
        new_zoom = max(1, min(19, zoom + delta))
        scale = 2 ** (new_zoom - zoom)
        yield from self._recenter(
            new_zoom, int(x * scale), int(y * scale), status="Zoom %d" % new_zoom
        )

    def open_street_view(self):
        """Fetch the street-view panorama and embed it (a Flash object —
        which RCB explicitly does not synchronize user actions inside)."""
        zoom, x, y = self.viewport
        yield from self.browser.ajax_request(
            "GET", "%s/streetview?x=%d&y=%d" % (self.origin, x, y)
        )

        def mutate(document):
            canvas = document.get_element_by_id("map-canvas")
            for old in canvas.get_elements_by_tag_name("embed"):
                old.detach()
            from ..html import Element

            flash = Element(
                "embed",
                {
                    "type": "application/x-shockwave-flash",
                    "src": "%s/streetview?x=%d&y=%d" % (self.origin, x, y),
                    "id": "street-view",
                },
            )
            canvas.append_child(flash)
            status = document.get_element_by_id("statusbar")
            status.inner_html = "Street view at %d,%d" % (x, y)

        self.browser.mutate_document(mutate)

    # -- internals --------------------------------------------------------------------

    def _recenter(self, zoom: int, x: int, y: int, status: str):
        # Fetch the tiles the new viewport needs (the real page fetches
        # only missing tiles; the browser cache gives us the same effect).
        for row in range(VIEWPORT_TILES):
            for col in range(VIEWPORT_TILES):
                tile_url = "%s/tiles/%d/%d/%d.png" % (self.origin, zoom, x + col, y + row)
                if self.browser.cache.peek(tile_url) is None:
                    response = yield from self.browser.ajax_request("GET", tile_url)
                    self.browser.cache.store(
                        tile_url, response.content_type, response.body, self.browser.sim.now
                    )

        def mutate(document):
            canvas = document.get_element_by_id("map-canvas")
            canvas.set_attribute("data-zoom", str(zoom))
            canvas.set_attribute("data-x", str(x))
            canvas.set_attribute("data-y", str(y))
            for row in range(VIEWPORT_TILES):
                for col in range(VIEWPORT_TILES):
                    tile = document.get_element_by_id("tile-%d-%d" % (row, col))
                    tile.set_attribute(
                        "src", "/tiles/%d/%d/%d.png" % (zoom, x + col, y + row)
                    )
            statusbar = document.get_element_by_id("statusbar")
            statusbar.inner_html = status

        self.browser.mutate_document(mutate)


def _extract(xml_text: str, tag: str) -> str:
    open_tag = "<%s>" % tag
    close_tag = "</%s>" % tag
    start = xml_text.index(open_tag) + len(open_tag)
    end = xml_text.index(close_tag, start)
    return xml_text[start:end]
