"""Deterministic synthetic homepage generator.

The paper's performance evaluation co-browses the homepages of 20 Alexa
top sites (Table 1).  Those 2009 pages are gone; what the experiments
actually depend on is each page's HTML document size (Table 1 column 3),
a realistic set of supplementary objects (images / CSS / JS), and normal
HTML structure for the content pipeline to chew on.  This generator
produces all three deterministically from a site name and a target size,
so every run of every benchmark sees byte-identical sites.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

__all__ = ["GeneratedSite", "generate_site"]

_WORDS = (
    "news sports travel music video search mail maps shopping finance health "
    "games weather world local business technology science entertainment "
    "politics books movies autos careers education food lifestyle opinion "
    "markets deals trending featured popular latest exclusive premium daily"
).split()

_SECTIONS = ("header", "navigation", "hero", "column", "sidebar", "footer")


class GeneratedSite:
    """A generated homepage: HTML plus its supplementary objects."""

    def __init__(self, host: str, html: str, objects: Dict[str, Tuple[str, bytes]]):
        self.host = host
        self.html = html
        #: path -> (content_type, payload)
        self.objects = objects

    @property
    def html_size(self) -> int:
        """Byte size of the homepage HTML."""
        return len(self.html.encode("utf-8"))

    @property
    def object_paths(self) -> List[str]:
        """Paths of every supplementary object."""
        return list(self.objects.keys())

    def __repr__(self) -> str:
        return "GeneratedSite(%r, %.1f KB html, %d objects)" % (
            self.host,
            self.html_size / 1024.0,
            len(self.objects),
        )


def generate_site(
    host: str,
    target_html_kb: float,
    image_count: int = None,
    css_count: int = None,
    script_count: int = None,
    seed: int = None,
) -> GeneratedSite:
    """Build a deterministic synthetic homepage for ``host``.

    The HTML document is grown to within ~2% of ``target_html_kb``.
    Object counts default to size-proportional values typical of 2009
    portal homepages.
    """
    if target_html_kb <= 0:
        raise ValueError("target_html_kb must be positive")
    rng = random.Random(seed if seed is not None else _stable_seed(host))

    if image_count is None:
        image_count = max(4, min(40, int(target_html_kb / 4)))
    if css_count is None:
        css_count = 1 + (1 if target_html_kb > 60 else 0)
    if script_count is None:
        script_count = 1 + (2 if target_html_kb > 40 else 0)

    objects: Dict[str, Tuple[str, bytes]] = {}
    image_paths = []
    for index in range(image_count):
        path = "/images/%s_%02d.png" % (rng.choice(_WORDS), index)
        size = rng.randint(800, 9000)
        objects[path] = ("image/png", _binary_blob(rng, size))
        image_paths.append(path)
    css_paths = []
    for index in range(css_count):
        path = "/css/style_%d.css" % index
        objects[path] = ("text/css", _css_blob(rng).encode("utf-8"))
        css_paths.append(path)
    script_paths = []
    for index in range(script_count):
        path = "/js/lib_%d.js" % index
        objects[path] = ("application/javascript", _js_blob(rng).encode("utf-8"))
        script_paths.append(path)

    html = _build_html(host, target_html_kb, rng, image_paths, css_paths, script_paths)
    return GeneratedSite(host, html, objects)


def _stable_seed(host: str) -> int:
    value = 0
    for char in host:
        value = (value * 131 + ord(char)) % (2**31)
    return value


def _binary_blob(rng: random.Random, size: int) -> bytes:
    return bytes(rng.getrandbits(8) for _ in range(size))


def _css_blob(rng: random.Random) -> str:
    rules = []
    for _ in range(rng.randint(40, 120)):
        selector = ".%s-%d" % (rng.choice(_WORDS), rng.randint(0, 99))
        rules.append(
            "%s { color: #%06x; margin: %dpx; padding: %dpx; }"
            % (selector, rng.getrandbits(24), rng.randint(0, 20), rng.randint(0, 20))
        )
    return "\n".join(rules)


def _js_blob(rng: random.Random) -> str:
    lines = ["(function() {", "  var registry = {};"]
    for _ in range(rng.randint(60, 200)):
        name = "%s_%d" % (rng.choice(_WORDS), rng.randint(0, 999))
        lines.append(
            "  registry['%s'] = function(x) { return x * %d + %d; };"
            % (name, rng.randint(1, 9), rng.randint(0, 99))
        )
    lines.append("})();")
    return "\n".join(lines)


def _sentence(rng: random.Random) -> str:
    count = rng.randint(6, 16)
    words = [rng.choice(_WORDS) for _ in range(count)]
    words[0] = words[0].capitalize()
    return " ".join(words) + "."


def _build_html(
    host: str,
    target_kb: float,
    rng: random.Random,
    image_paths: List[str],
    css_paths: List[str],
    script_paths: List[str],
) -> str:
    target_bytes = int(target_kb * 1024)
    head_parts = [
        "<title>%s — home</title>" % host,
        '<meta charset="utf-8">',
        '<meta name="generator" content="repro-pagegen">',
    ]
    for path in css_paths:
        head_parts.append('<link rel="stylesheet" href="%s">' % path)
    for path in script_paths:
        head_parts.append('<script src="%s"></script>' % path)
    head_parts.append(
        "<style>body { font-family: sans-serif; } .%s { display: block; }</style>"
        % rng.choice(_WORDS)
    )

    body_parts: List[str] = []
    image_iter = iter(image_paths * 100)  # recycle references if needed

    def section(kind: str) -> str:
        pieces = ['<div class="%s" id="%s-%d">' % (kind, kind, rng.randint(0, 9999))]
        pieces.append("<h2>%s</h2>" % _sentence(rng))
        for _ in range(rng.randint(1, 4)):
            pieces.append("<p>%s</p>" % " ".join(_sentence(rng) for _ in range(rng.randint(1, 3))))
        if rng.random() < 0.7:
            pieces.append('<img src="%s" alt="%s">' % (next(image_iter), rng.choice(_WORDS)))
        if rng.random() < 0.5:
            items = "".join(
                '<li><a href="/%s/%d.html">%s</a></li>'
                % (rng.choice(_WORDS), rng.randint(0, 999), _sentence(rng))
                for _ in range(rng.randint(2, 6))
            )
            pieces.append("<ul>%s</ul>" % items)
        pieces.append("</div>")
        return "".join(pieces)

    # Always reference every image at least once so the object set is
    # exactly what the page needs.
    gallery = "".join('<img src="%s" alt="">' % path for path in image_paths)
    body_parts.append('<div class="gallery">%s</div>' % gallery)
    # 2009 portal homepages shipped large inline script/data blobs
    # (personalization payloads, ad configs) — dense alphanumeric
    # content, roughly half of the document's bytes.
    blob_budget = int(target_bytes * 0.50)
    blob_lines = ["<script>var pageData = {"]
    blob_size = 0
    while blob_size < blob_budget:
        key = "%s_%d" % (rng.choice(_WORDS), rng.randint(0, 99999))
        value = "".join(
            rng.choice("abcdefghijklmnopqrstuvwxyz0123456789") for _ in range(rng.randint(40, 120))
        )
        line = "%s: '%s'," % (key, value)
        blob_lines.append(line)
        blob_size += len(line)
    blob_lines.append("};</script>")
    body_parts.append("".join(blob_lines))
    body_parts.append(
        '<form action="/search" method="GET" onsubmit="">'
        '<input type="text" name="q" value="">'
        '<input type="submit" value="Search"></form>'
    )

    skeleton = (
        "<!DOCTYPE html><html><head>%s</head><body>%s</body></html>"
    )
    while True:
        html = skeleton % ("".join(head_parts), "".join(body_parts))
        size = len(html.encode("utf-8"))
        if size >= target_bytes * 0.98:
            break
        remaining = target_bytes - size
        kind = _SECTIONS[rng.randint(0, len(_SECTIONS) - 1)]
        chunk = section(kind)
        if len(chunk) > remaining * 1.3 and remaining < 2048:
            # Pad precisely with a comment to land near the target.
            body_parts.append("<!--%s-->" % ("pad " * max(1, remaining // 5))[: max(0, remaining - 10)])
        else:
            body_parts.append(chunk)
    return html
