"""Simulated origin servers: static sites, the 20 Table-1 sites, the
map service, and the session-protected shop."""

from .mapservice import MAP_HOST, MapPageDriver, MapService, VIEWPORT_TILES
from .pagegen import GeneratedSite, generate_site
from .server import OriginServer, StaticSite, deploy_site
from .shop import Product, SHOP_HOST, ShopService
from .sites import (
    SiteSpec,
    TABLE1_SITES,
    deploy_table1_sites,
    generate_table1_site,
)

__all__ = [
    "GeneratedSite",
    "MAP_HOST",
    "MapPageDriver",
    "MapService",
    "OriginServer",
    "Product",
    "SHOP_HOST",
    "ShopService",
    "SiteSpec",
    "StaticSite",
    "TABLE1_SITES",
    "VIEWPORT_TILES",
    "deploy_site",
    "deploy_table1_sites",
    "generate_site",
    "generate_table1_site",
]
