"""A session-protected online shop (the Amazon.com stand-in).

The paper's second usability scenario (§5.2.2) co-shops at Amazon.com:
search, pick a laptop, add to cart, and co-fill the checkout forms.  The
essential behaviours for RCB are (1) a session cookie that lives only in
the host browser — so session-protected pages cannot be reached by
sharing URLs, but co-browse fine because every origin request is made by
the host — and (2) multi-step forms whose fields a participant can fill
remotely.  This shop reproduces both with a deterministic catalog that
includes the scenario's MacBook Air variants.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..http import Headers, HttpRequest, HttpResponse, html_response
from ..net.socket import Network
from .server import OriginServer

__all__ = ["Product", "ShopService", "SHOP_HOST"]

SHOP_HOST = "www.amazon-sim.com"

_ADDRESS_FIELDS = ("full_name", "street", "city", "state", "zip_code")


class Product:
    """A catalog item."""
    __slots__ = ("product_id", "title", "price", "description")

    def __init__(self, product_id: str, title: str, price: float, description: str):
        self.product_id = product_id
        self.title = title
        self.price = price
        self.description = description

    def __repr__(self) -> str:
        return "Product(%s, %r, $%.2f)" % (self.product_id, self.title, self.price)


def _default_catalog() -> List[Product]:
    rng = random.Random(20090614)
    catalog = [
        Product("mba-13-128", "MacBook Air 13-inch 128GB", 1799.00, "Newly released ultra-thin laptop."),
        Product("mba-13-64", "MacBook Air 13-inch 64GB SSD", 2299.00, "Solid-state drive model."),
        Product("mba-13-80", "MacBook Air 13-inch 80GB", 1699.00, "Entry configuration."),
        Product("mbp-15", "MacBook Pro 15-inch", 1999.00, "Aluminum unibody."),
        Product("watch-crt", "Cartier Tank Watch", 2450.00, "Classic jewelry-store watch."),
    ]
    adjectives = ("Wireless", "Portable", "Digital", "Classic", "Compact", "Premium")
    nouns = ("Camera", "Headphones", "Keyboard", "Monitor", "Speaker", "Router", "Tablet")
    for index in range(40):
        title = "%s %s %d" % (rng.choice(adjectives), rng.choice(nouns), rng.randint(100, 999))
        catalog.append(
            Product(
                "gen-%03d" % index,
                title,
                round(rng.uniform(19.99, 899.99), 2),
                "A dependable %s." % title.lower(),
            )
        )
    return catalog


class _Session:
    def __init__(self, session_id: str):
        self.session_id = session_id
        self.cart: List[str] = []
        self.address: Dict[str, str] = {}
        self.order_id: Optional[str] = None


class ShopService:
    """The shop's request handler and server-side state."""

    def __init__(self, network: Network, host_name: str = SHOP_HOST):
        self.host_name = host_name
        self.catalog = _default_catalog()
        self._by_id = {p.product_id: p for p in self.catalog}
        self._sessions: Dict[str, _Session] = {}
        self._session_counter = 0
        self._order_counter = 0
        self.server = OriginServer(network, host_name, self.handle)

    # -- catalog access (used by scenario scripts) ------------------------------------

    def product(self, product_id: str) -> Product:
        """Look up a product by id."""
        return self._by_id[product_id]

    def search_catalog(self, query: str) -> List[Product]:
        """Products whose title contains ``query`` (case-insensitive)."""
        lowered = query.lower()
        return [p for p in self.catalog if lowered in p.title.lower()]

    def session_count(self) -> int:
        """Number of server-side sessions ever created."""
        return len(self._sessions)

    def order_count(self) -> int:
        """Number of completed orders."""
        return self._order_counter

    # -- request handling ------------------------------------------------------------

    def handle(self, request: HttpRequest, client_name: str) -> HttpResponse:
        """HTTP handler: route a request and manage the session cookie."""
        session, set_cookie = self._session_for(request)
        response = self._route(request, session)
        if set_cookie:
            response.headers.add(
                "Set-Cookie", "shopsession=%s; Path=/" % session.session_id
            )
        return response

    def _session_for(self, request: HttpRequest):
        cookie_header = request.headers.get("Cookie") or ""
        for pair in cookie_header.split(";"):
            pair = pair.strip()
            if pair.startswith("shopsession="):
                session_id = pair[len("shopsession=") :]
                session = self._sessions.get(session_id)
                if session is not None:
                    return session, False
        self._session_counter += 1
        session = _Session("s%06d" % self._session_counter)
        self._sessions[session.session_id] = session
        return session, True

    def _route(self, request: HttpRequest, session: _Session) -> HttpResponse:
        path = request.path
        if path == "/":
            return self._home()
        if path == "/search":
            return self._search(request)
        if path.startswith("/item/"):
            return self._item(path[len("/item/") :])
        if path == "/cart/add" and request.method == "POST":
            return self._cart_add(request, session)
        if path == "/cart":
            return self._cart(session)
        if path == "/checkout":
            return self._checkout(session)
        if path == "/checkout/address" and request.method == "POST":
            return self._checkout_address(request, session)
        if path == "/checkout/confirm" and request.method == "POST":
            return self._checkout_confirm(session)
        return HttpResponse(404, body=b"not found")

    # -- pages --------------------------------------------------------------------------

    def _page(self, title: str, body: str) -> HttpResponse:
        return html_response(
            "<!DOCTYPE html><html><head><title>%s — %s</title></head>"
            "<body><div id='topnav'><a href='/'>Home</a> <a href='/cart'>Cart</a></div>"
            "%s</body></html>" % (title, self.host_name, body)
        )

    def _home(self) -> HttpResponse:
        featured = "".join(
            "<li><a href='/item/%s'>%s</a> — $%.2f</li>"
            % (p.product_id, p.title, p.price)
            for p in self.catalog[:6]
        )
        return self._page(
            "Shop",
            "<form id='searchform' action='/search' method='GET' onsubmit=''>"
            "<input type='text' name='q' value=''>"
            "<input type='submit' value='Go'></form>"
            "<ul id='featured'>%s</ul>" % featured,
        )

    def _search(self, request: HttpRequest) -> HttpResponse:
        query = request.query_params().get("q", "")
        results = self.search_catalog(query)
        items = "".join(
            "<li class='result'><a id='result-%s' href='/item/%s'>%s</a>"
            " — $%.2f</li>" % (p.product_id, p.product_id, p.title, p.price)
            for p in results
        )
        return self._page(
            "Search",
            "<h1>%d results for '%s'</h1><ul id='results'>%s</ul>"
            % (len(results), query, items),
        )

    def _item(self, product_id: str) -> HttpResponse:
        product = self._by_id.get(product_id)
        if product is None:
            return HttpResponse(404, body=b"no such product")
        return self._page(
            product.title,
            "<h1 id='item-title'>%s</h1><p id='item-price'>$%.2f</p><p>%s</p>"
            "<form id='addform' action='/cart/add' method='POST' onsubmit=''>"
            "<input type='hidden' name='item_id' value='%s'>"
            "<input type='submit' value='Add to Cart'></form>"
            % (product.title, product.price, product.description, product.product_id),
        )

    def _cart_add(self, request: HttpRequest, session: _Session) -> HttpResponse:
        item_id = request.form_params().get("item_id")
        if item_id not in self._by_id:
            return HttpResponse(400, body=b"unknown item")
        session.cart.append(item_id)
        headers = Headers([("Location", "/cart")])
        return HttpResponse(302, headers)

    def _cart(self, session: _Session) -> HttpResponse:
        if not session.cart:
            return self._page("Cart", "<p id='cart-empty'>Your cart is empty.</p>")
        rows = "".join(
            "<li>%s — $%.2f</li>"
            % (self._by_id[item].title, self._by_id[item].price)
            for item in session.cart
        )
        total = sum(self._by_id[item].price for item in session.cart)
        return self._page(
            "Cart",
            "<ul id='cart-items'>%s</ul><p id='cart-total'>Total: $%.2f</p>"
            "<a id='checkout-link' href='/checkout'>Proceed to checkout</a>"
            % (rows, total),
        )

    def _checkout(self, session: _Session) -> HttpResponse:
        if not session.cart:
            return self._page("Checkout", "<p id='cart-empty'>Nothing to check out.</p>")
        fields = "".join(
            "<label for='%s'>%s</label>"
            "<input type='text' id='%s' name='%s' value=''><br>"
            % (name, name.replace("_", " "), name, name)
            for name in _ADDRESS_FIELDS
        )
        return self._page(
            "Checkout",
            "<h1>Shipping address</h1>"
            "<form id='addressform' action='/checkout/address' method='POST' onsubmit=''>"
            "%s<input type='submit' value='Continue'></form>" % fields,
        )

    def _checkout_address(self, request: HttpRequest, session: _Session) -> HttpResponse:
        form = request.form_params()
        missing = [name for name in _ADDRESS_FIELDS if not form.get(name)]
        if missing:
            return self._page(
                "Checkout",
                "<p id='address-error'>Missing fields: %s</p>" % ", ".join(missing),
            )
        session.address = {name: form[name] for name in _ADDRESS_FIELDS}
        summary = "".join(
            "<li>%s: %s</li>" % (name, session.address[name]) for name in _ADDRESS_FIELDS
        )
        return self._page(
            "Confirm order",
            "<h1>Confirm your order</h1><ul id='address-summary'>%s</ul>"
            "<form id='confirmform' action='/checkout/confirm' method='POST' onsubmit=''>"
            "<input type='submit' value='Place order'></form>" % summary,
        )

    def _checkout_confirm(self, session: _Session) -> HttpResponse:
        if not session.cart or not session.address:
            return HttpResponse(400, body=b"nothing to confirm")
        self._order_counter += 1
        session.order_id = "order-%05d" % self._order_counter
        session.cart = []
        return self._page(
            "Order placed",
            "<h1 id='order-complete'>Thank you!</h1>"
            "<p id='order-id'>Your order number is %s.</p>" % session.order_id,
        )
