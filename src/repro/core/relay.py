"""Cascaded relay fan-out: participant-tier content distribution.

In the paper every participant polls the single RCB-Agent in the host
browser, so host CPU and uplink bytes grow linearly with session size.
A :class:`RelayAgent` breaks that wall with a topology built entirely
out of pieces RCB already has: it is *simultaneously* a participant (an
Ajax-Snippet polling its upstream over the normal timestamp protocol)
and an agent (the inherited RCB-Agent request loop re-serving the
received content to downstream participants).  Sessions become trees:

    host agent  <-  relay  <-  relay  <-  leaf participants
                (each node serves at most ``branching`` children)

Design points:

* **Timestamps propagate unchanged.**  A relay never stamps its own
  clock; its ``doc_time`` is the upstream envelope's ``doc_time``, so a
  participant's acknowledged timestamp means the same thing at every
  tier and synchronization barriers keep working end to end.
* **Deltas recompute per tier.**  The relay's browser applies full and
  delta envelopes like any participant; the inherited snapshot ring then
  diffs the relay's *own* document states, so downstream children get
  delta envelopes with the same doc-time keys the root would use.
* **Objects are re-served too.**  In cache mode the relay's browser has
  already fetched every supplementary object; regeneration rewrites the
  object URLs once more, to the relay's ``/obj`` endpoint, moving object
  traffic off the host's uplink as well.
* **Actions forward up, mirror down.**  Participant actions piggybacked
  to a relay are forwarded upstream (the host's moderation policy stays
  the single authority); cosmetic actions are mirrored to sibling
  children immediately, because the root's broadcast excludes this
  relay's whole subtree.
* **Failure handling.**  When the upstream dies, the relay re-attaches
  — grandparent first, root as last resort — with jittered backoff so
  orphaned siblings do not stampede the survivor, and *without*
  renavigating, so its document (and its children's sync state) is
  preserved across the failover.
* **Same HMAC authentication.**  One session secret end to end: the
  relay signs its upstream polls and verifies its downstream requests
  with the inherited machinery.  A forged relay that does not know the
  secret receives only 401s upstream and can never serve content.

Browser-based re-serving trees are a proven scaling pattern — see
*Browser-based distributed evolutionary computation* (Merelo et al.) and
*WebNC* (Denoue et al.) — and here they make session size a property of
the tree, not of the host.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..http import RequestFailed
from ..net.socket import NetworkError
from ..obs import RELAY_DEATH, RELAY_REATTACH, EventBus, MetricsRegistry, Tracer
from ..sim import Interrupt
from .actions import MouseMoveAction, ScrollAction, UserAction
from .agent import AGENT_DEFAULT_PORT, RCBAgent
from .snippet import _SNIPPET_SCRIPT_ID, AjaxSnippet, BackoffPolicy
from .xmlformat import NewContent

__all__ = ["RelayAgent"]


class RelayAgent(RCBAgent):
    """A participant-tier relay: polls upstream, re-serves downstream.

    Install on any participant's browser (it *is* that participant's
    membership in the session), then drive :meth:`connect_upstream` to
    join.  Downstream participants — leaves or further relays — connect
    to :attr:`url` exactly as they would to the host agent.
    """

    #: Relay spans read relay.generate / relay.serve / relay.delta_diff.
    _span_prefix = "relay"

    def __init__(
        self,
        upstream_url: str,
        port: int = AGENT_DEFAULT_PORT,
        secret: Optional[str] = None,
        relay_id: Optional[str] = None,
        poll_interval: Optional[float] = None,
        browser_type: str = "firefox",
        fetch_objects: bool = True,
        cache_mode: bool = True,
        enable_delta: bool = True,
        delta_history: int = 8,
        enable_batched_serve: bool = True,
        transport=None,
        poll_backoff: Optional[BackoffPolicy] = None,
        reattach_backoff: Optional[BackoffPolicy] = None,
        fallback_urls: Optional[List[str]] = None,
        on_reattach: Optional[Callable[["RelayAgent", str], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        events: Optional[EventBus] = None,
        attribution=None,
        telemetry=None,
    ):
        super().__init__(
            port=port,
            cache_mode=cache_mode,
            secret=secret,
            poll_interval=poll_interval if poll_interval is not None else 1.0,
            enable_delta=enable_delta,
            delta_history=delta_history,
            enable_batched_serve=enable_batched_serve,
            transport=transport,
            metrics=metrics,
            tracer=tracer,
            metrics_node=relay_id,
            events=events,
            attribution=attribution,
            # The relay's own ClientTelemetry is also its downstream
            # sink: children's digests merge into it and ride the next
            # upstream poll — one bounded blob per tier.
            telemetry=telemetry,
        )
        self.upstream_url = upstream_url
        #: This relay's participant id at its upstream (defaults to the
        #: browser name once installed).
        self.relay_id = relay_id
        #: Whether ``poll_interval`` was given or should be adopted from
        #: the upstream's advertisement on first connect.
        self._adopt_interval = poll_interval is None
        self.browser_type = browser_type
        self.fetch_objects = fetch_objects
        #: Retry pacing for the upstream snippet's failed polls.
        self.poll_backoff = poll_backoff
        #: Mode the upstream-facing snippet requests.  Starts at this
        #: relay's own default; tracks the upstream's grants so a
        #: negotiated mode survives upstream death and re-attachment.
        self._upstream_mode = self.transport.mode
        #: Jittered pacing between re-attachment attempts after the
        #: upstream died (shared policy with the snippet's poll retry).
        self.reattach_backoff = reattach_backoff or BackoffPolicy(
            base=0.5, cap=8.0, jitter=0.25, multiplier=2.0, seed=0
        )
        #: Ancestor URLs tried on upstream death: grandparent first,
        #: the root agent as last resort.
        self.fallback_urls: List[str] = list(fallback_urls or [])
        #: Called with ``(relay, new_upstream_url)`` after a successful
        #: re-attachment (the session uses this to update its tree).
        self.on_reattach = on_reattach

        #: The upstream-facing Ajax-Snippet (None until connected).
        self.upstream: Optional[AjaxSnippet] = None
        #: Actions awaiting an upstream to forward them to.
        self._pending_upstream: List[UserAction] = []
        self._reattach_proc = None
        self._shutting_down = False

        for key in ("actions_forwarded", "upstream_failures", "reattachments"):
            self.stats.declare_counter(key)

    # -- extension lifecycle -----------------------------------------------------------

    def on_install(self) -> None:
        """Open the downstream port and start accepting.

        Unlike the root agent, a relay does not observe its browser's
        document events: its document changes only when upstream content
        is applied, and its ``doc_time`` is adopted from the envelopes.
        """
        browser = self.browser
        if self.relay_id is None:
            self.relay_id = browser.name
        self._listener = browser.host.listen(self.port)
        self._accept_proc = browser.sim.process(self._accept_loop())

    def on_uninstall(self) -> None:
        """Stop polling upstream, close the port, drop connections."""
        self._shutting_down = True
        if self._reattach_proc is not None and self._reattach_proc.is_alive:
            self._reattach_proc.interrupt("relay uninstalled")
        self._reattach_proc = None
        if self.upstream is not None:
            self.upstream.disconnect()
            self.upstream = None
        self._close_port()

    # -- upstream membership ------------------------------------------------------------

    def connect_upstream(self):
        """Join the session at :attr:`upstream_url`.

        Generator process (like :meth:`AjaxSnippet.connect`): navigates
        the relay's browser to the upstream, arms the polling loop, and
        returns the initial page.
        """
        if self.browser is None:
            raise RuntimeError("install the relay on a browser first")
        snippet = self._make_snippet(self.upstream_url, first=True)
        page = yield from snippet.connect()
        if self._adopt_interval:
            # Tiers inherit the root's advertised polling cadence.
            self.poll_interval = snippet.poll_interval
        self._adopt_snippet(snippet, self.upstream_url)
        return page

    def set_fallbacks(self, urls: List[str]) -> None:
        """Replace the re-attachment chain (grandparent ... root)."""
        self.fallback_urls = list(urls)

    @property
    def connected(self) -> bool:
        """Whether the upstream polling channel is currently up."""
        return self.upstream is not None and self.upstream.connected

    def _make_snippet(self, url: str, first: bool = False) -> AjaxSnippet:
        snippet = AjaxSnippet(
            self.browser,
            url,
            participant_id=self.relay_id,
            secret=self.secret,
            poll_interval=None if (first and self._adopt_interval) else self.poll_interval,
            browser_type=self.browser_type,
            fetch_objects=self.fetch_objects,
            backoff=self.poll_backoff,
            transport=self._upstream_mode,
            metrics=self.metrics,
            tracer=self.tracer,
            events=self.events,
            # Relay-owned reporter: survives upstream death and
            # re-attachment, so unflushed records ride the new channel.
            telemetry=self.telemetry,
        )
        snippet.apply_span_name = "relay.apply"
        # Resuming mid-session: tell the upstream what we already have,
        # so it can answer with a delta instead of the full envelope.
        snippet.last_doc_time = self._doc_time
        # Bind the snippet into the callback: during a re-attachment race
        # the relay must credit content (and its trace context) to the
        # channel that actually delivered it, not just the current one.
        snippet.on_content = lambda content, s=snippet: self._on_upstream_content(content, s)
        snippet.on_actions = self._on_upstream_actions
        snippet.on_disconnect = self._on_upstream_disconnect
        return snippet

    def _adopt_snippet(self, snippet: AjaxSnippet, url: str) -> None:
        previous, self.upstream = self.upstream, snippet
        if previous is not None and previous.connected:
            previous.disconnect()
        self.upstream_url = url
        self._upstream_mode = snippet.transport_mode
        if self._pending_upstream:
            pending, self._pending_upstream = self._pending_upstream, []
            for action in pending:
                snippet.queue_action(action)

    # -- upstream event hooks -----------------------------------------------------------

    def _on_upstream_content(
        self, content: NewContent, snippet: Optional[AjaxSnippet] = None
    ) -> None:
        # Remember which apply span produced this document state *before*
        # advancing doc_time (which may wake long-poll waiters that serve
        # immediately) — downstream serve spans parent under it, keeping
        # the trace connected across tiers.
        if snippet is not None and snippet.last_apply_context is not None:
            self._remember_content_context(content.doc_time, snippet.last_apply_context)
        # Adopt the upstream's timestamp unchanged: consistent doc_time
        # across tiers is what keeps the protocol honest end to end.
        self._set_doc_time(content.doc_time)

    def _on_upstream_actions(self, actions: List[UserAction]) -> None:
        # Fan host-mirrored actions down to every child.
        for action in actions:
            self.broadcast_action(action)

    def _on_upstream_disconnect(self) -> None:
        if self._shutting_down or self.browser is None:
            return
        self.stats.inc("upstream_failures")
        self._emit(RELAY_DEATH, reason="upstream-lost", upstream=self.upstream_url)
        dead = self.upstream
        if dead is not None:
            # Salvage actions the dead channel never delivered, and the
            # negotiated mode so re-attachment resumes it.
            self._pending_upstream.extend(dead._outgoing)
            dead._outgoing = []
            self._upstream_mode = dead.transport_mode
        self.upstream = None
        if self._reattach_proc is None or not self._reattach_proc.is_alive:
            self._reattach_proc = self.browser.sim.process(self._reattach_loop())

    # -- failure handling: re-attachment --------------------------------------------------

    def _reattach_loop(self):
        """Climb the ancestor chain until some upstream answers.

        Grandparent first, then further ancestors, the root last — and
        keep retrying the last resort forever (the session may be
        healing).  Jittered backoff spaces the attempts so orphaned
        siblings spread their load.
        """
        candidates = self.fallback_urls or [self.upstream_url]
        attempt = 0
        try:
            while not self._shutting_down:
                attempt += 1
                url = candidates[min(attempt - 1, len(candidates) - 1)]
                yield self.browser.sim.timeout(self.reattach_backoff.delay(attempt))
                if self._shutting_down:
                    return
                snippet = self._make_snippet(url)
                try:
                    yield from snippet.attach(self.poll_interval)
                except (RequestFailed, NetworkError):
                    continue  # unreachable — try the next ancestor
                self._adopt_snippet(snippet, url)
                self.stats.inc("reattachments")
                self._emit(RELAY_REATTACH, upstream=url, attempts=attempt)
                if self.on_reattach is not None:
                    self.on_reattach(self, url)
                return
        except Interrupt:
            return

    # -- request processing overrides ----------------------------------------------------

    def _moderate(self, participant_id: str, action: UserAction):
        """Relays apply nothing locally: the host's moderation policy is
        the single authority, so every action forwards upstream on the
        next poll.  Cosmetic actions also mirror to sibling children
        immediately (the root's broadcast excludes this whole subtree).
        """
        if isinstance(action, (MouseMoveAction, ScrollAction)):
            self.broadcast_action(action, exclude=participant_id)
        self.forward_upstream(action)
        return
        yield  # pragma: no cover - makes this a generator function

    def forward_upstream(self, action: UserAction) -> None:
        """Piggyback ``action`` on the relay's next upstream poll."""
        self.stats.inc("actions_forwarded")
        if self.upstream is not None:
            self.upstream.queue_action(action)
        else:
            # Upstream is down; deliver after re-attachment.
            self._pending_upstream.append(action)

    def _ensure_generated(self, participant_id: str) -> str:
        """Regenerate with the relay's own Ajax-Snippet lifted out.

        The relay's head keeps its snippet <script> (step 1 of the
        Fig. 5 update preserves it), but the root's envelopes never
        carry one — downstream documents must match the root's shape,
        or children's delta bases would diverge tier by tier.
        """
        document = self.browser.page.document
        head = document.head
        snippet_script = None
        if head is not None:
            for node in head.children:
                if node.tag == "script" and node.get_attribute("id") == _SNIPPET_SCRIPT_ID:
                    snippet_script = node
                    head.remove_child(node)
                    break
        try:
            return super()._ensure_generated(participant_id)
        finally:
            if snippet_script is not None:
                target_head = document.head
                if target_head is not None:
                    target_head.insert_before(snippet_script, target_head.first_child)

    def __repr__(self):
        return "RelayAgent(%s -> %s, %d children)" % (
            self.relay_id,
            self.upstream_url,
            len(self.participants),
        )
