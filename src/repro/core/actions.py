"""User-action records exchanged between participants and RCB-Agent.

A participant's browsing actions (form filling, clicks, mouse-pointer
moves) are piggybacked onto Ajax polling requests (paper §4.1.1), and
the host's own actions can be mirrored out inside the ``userActions``
element of the XML envelope (Fig. 4).  Actions are small, structured,
and identified by *stable element references*: because the participant's
DOM is a faithful copy of the host's, an element can be named by its tag
category and document-order index on both sides.
"""

from __future__ import annotations

import json
from typing import Dict, List

__all__ = [
    "UserAction",
    "ClickAction",
    "FormFillAction",
    "SubmitAction",
    "MouseMoveAction",
    "PresenceAction",
    "ScrollAction",
    "encode_actions",
    "decode_actions",
    "element_reference",
    "resolve_reference",
    "ActionError",
]


class ActionError(Exception):
    """Malformed action payload or unresolvable element reference."""


class UserAction:
    """Base class; concrete actions define ``kind`` and payload fields."""

    kind = "action"

    def to_dict(self) -> Dict:
        """Serializable representation (the wire format)."""
        raise NotImplementedError

    @staticmethod
    def from_dict(data: Dict) -> "UserAction":
        """Reconstruct a concrete action from its wire form."""
        kind = data.get("kind")
        cls = _ACTION_TYPES.get(kind)
        if cls is None:
            raise ActionError("unknown action kind %r" % (kind,))
        return cls._parse(data)

    def __eq__(self, other) -> bool:
        return isinstance(other, UserAction) and self.to_dict() == other.to_dict()

    def __hash__(self):
        return hash(json.dumps(self.to_dict(), sort_keys=True))

    def __repr__(self) -> str:
        return "%s(%r)" % (type(self).__name__, self.to_dict())


class ClickAction(UserAction):
    """A click on a link or button, named by element reference."""

    kind = "click"

    def __init__(self, ref: str):
        if not ref:
            raise ActionError("click requires an element reference")
        self.ref = ref

    def to_dict(self) -> Dict:
        """Serializable representation (the wire format)."""
        return {"kind": self.kind, "ref": self.ref}

    @classmethod
    def _parse(cls, data: Dict) -> "ClickAction":
        return cls(data.get("ref", ""))


class FormFillAction(UserAction):
    """Field values typed into a form (the co-filling feature)."""

    kind = "formfill"

    def __init__(self, form_ref: str, fields: Dict[str, str]):
        if not form_ref:
            raise ActionError("formfill requires a form reference")
        self.form_ref = form_ref
        self.fields = dict(fields)

    def to_dict(self) -> Dict:
        """Serializable representation (the wire format)."""
        return {"kind": self.kind, "form_ref": self.form_ref, "fields": self.fields}

    @classmethod
    def _parse(cls, data: Dict) -> "FormFillAction":
        fields = data.get("fields")
        if not isinstance(fields, dict):
            raise ActionError("formfill fields must be a mapping")
        return cls(data.get("form_ref", ""), fields)


class SubmitAction(UserAction):
    """A form submission carrying the form's data back to the host."""

    kind = "submit"

    def __init__(self, form_ref: str, fields: Dict[str, str]):
        if not form_ref:
            raise ActionError("submit requires a form reference")
        self.form_ref = form_ref
        self.fields = dict(fields)

    def to_dict(self) -> Dict:
        """Serializable representation (the wire format)."""
        return {"kind": self.kind, "form_ref": self.form_ref, "fields": self.fields}

    @classmethod
    def _parse(cls, data: Dict) -> "SubmitAction":
        fields = data.get("fields")
        if not isinstance(fields, dict):
            raise ActionError("submit fields must be a mapping")
        return cls(data.get("form_ref", ""), fields)


class MouseMoveAction(UserAction):
    """Mouse-pointer coordinates, for pointer mirroring."""

    kind = "mousemove"

    def __init__(self, x: int, y: int):
        self.x = int(x)
        self.y = int(y)

    def to_dict(self) -> Dict:
        """Serializable representation (the wire format)."""
        return {"kind": self.kind, "x": self.x, "y": self.y}

    @classmethod
    def _parse(cls, data: Dict) -> "MouseMoveAction":
        return cls(data.get("x", 0), data.get("y", 0))


class PresenceAction(UserAction):
    """Roster snapshot pushed to participants when membership changes.

    Implements the usability study's most-requested improvement
    (§5.2.3: "indicators of the other person's connection and status
    may be needed").
    """

    kind = "presence"

    def __init__(self, participants: List[str]):
        self.participants = sorted(participants)

    def to_dict(self) -> Dict:
        """Serializable representation (the wire format)."""
        return {"kind": self.kind, "participants": self.participants}

    @classmethod
    def _parse(cls, data: Dict) -> "PresenceAction":
        participants = data.get("participants")
        if not isinstance(participants, list):
            raise ActionError("presence requires a participant list")
        return cls([str(p) for p in participants])


class ScrollAction(UserAction):
    """Viewport scroll offset, for scroll mirroring."""

    kind = "scroll"

    def __init__(self, offset: int):
        self.offset = int(offset)

    def to_dict(self) -> Dict:
        """Serializable representation (the wire format)."""
        return {"kind": self.kind, "offset": self.offset}

    @classmethod
    def _parse(cls, data: Dict) -> "ScrollAction":
        return cls(data.get("offset", 0))


_ACTION_TYPES = {
    cls.kind: cls
    for cls in (
        ClickAction,
        FormFillAction,
        SubmitAction,
        MouseMoveAction,
        PresenceAction,
        ScrollAction,
    )
}


def encode_actions(actions: List[UserAction]) -> str:
    """Serialize actions for transport (poll bodies / XML envelope)."""
    return json.dumps([action.to_dict() for action in actions])


def decode_actions(text: str) -> List[UserAction]:
    """Parse a transport payload back into action objects."""
    if not text:
        return []
    try:
        items = json.loads(text)
    except ValueError as exc:
        raise ActionError("bad action payload: %s" % (exc,))
    if not isinstance(items, list):
        raise ActionError("action payload must be a list")
    return [UserAction.from_dict(item) for item in items]


# -- stable element references --------------------------------------------------

#: Tags addressable by reference, in the categories RCB rewrites.
_REFERENCE_TAGS = ("form", "a", "input", "select", "textarea", "button")


def element_reference(document, element) -> str:
    """Stable reference ``tag:index`` for an element of ``document``.

    The index is the element's position among same-tag elements in
    document order — identical on host and participant because the
    participant DOM mirrors the host DOM.
    """
    tag = element.tag
    index = 0
    for candidate in document.descendant_elements():
        if candidate.tag != tag:
            continue
        if candidate is element:
            return "%s:%d" % (tag, index)
        index += 1
    raise ActionError("element %r is not in the document" % (element,))


def resolve_reference(document, ref: str):
    """Find the element named by ``ref`` in ``document``."""
    if ":" not in ref:
        raise ActionError("bad element reference %r" % (ref,))
    tag, _sep, index_text = ref.partition(":")
    if not index_text.isdigit():
        raise ActionError("bad element reference %r" % (ref,))
    wanted = int(index_text)
    index = 0
    for candidate in document.descendant_elements():
        if candidate.tag != tag:
            continue
        if index == wanted:
            return candidate
        index += 1
    raise ActionError("no element for reference %r" % (ref,))
