"""RCB-Agent: the co-browsing host's browser extension.

The agent embeds an HTTP service inside the host browser (modelled on
Mozilla's ``nsIServerSocket``; paper §4.1.1) and implements the Fig. 2
request-processing procedure:

* **New connection request** — ``GET /`` returns the initial HTML page
  whose head carries Ajax-Snippet.
* **Object request** — ``GET /obj?key=...`` (cache mode) streams a
  cached object from the host browser's cache, via the mapping table
  from request-URIs to cache keys.
* **Ajax polling request** — ``POST /poll`` goes through data merging
  (piggybacked participant actions), timestamp inspection (send only
  content this participant has not seen), and response sending (the
  Fig. 4 XML envelope, generated once per document state and reused for
  every participant).

The agent also monitors the host browser: document loads, dynamic DOM
changes (Ajax/DHTML), and object downloads, via the observer service.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Dict, List, Optional

from ..browser.browser import Browser, BrowserExtension
from ..browser.observer import (
    TOPIC_DOCUMENT_CHANGED,
    TOPIC_DOCUMENT_LOADED,
    TOPIC_OBJECT_DOWNLOADED,
)
from ..http import Headers, HttpRequest, HttpResponse, html_response
from ..http.server import serve_connection
from ..net.socket import ListenSocket
from ..obs import (
    DELTA_FALLBACK,
    HMAC_REJECT,
    MEMBER_JOIN,
    MEMBER_LEAVE,
    POLL_SERVED,
    TRANSPORT_SWITCH,
    EventBus,
    MetricsRegistry,
    SpanContext,
    StatsFacade,
    Tracer,
    format_trace_header,
)
from ..obs.trace import TRACE_HEADER
from ..sim import AnyOf, Interrupt, StoreClosed
from .actions import (
    ActionError,
    ClickAction,
    FormFillAction,
    MouseMoveAction,
    PresenceAction,
    ScrollAction,
    SubmitAction,
    UserAction,
    decode_actions,
    encode_actions,
    resolve_reference,
)
from .cachepolicy import coerce_cache_policy
from .content import AGENT_OBJECT_PATH, ContentGenerator
from .delta import content_tree, diff_trees
from .policy import ModerationPolicy, OpenPolicy, PendingAction
from .security import Authenticator
from .serveplan import BroadcastPlan, PlanFallback, merge_wire_bodies
from .transport import (
    MODE_INDEX,
    TRANSPORT_HEADER,
    TRANSPORT_MODES,
    TRANSPORT_POLL,
    IntervalPollTransport,
    LongPollTransport,
    Transport,
    coerce_transport,
    transport_for_mode,
)
from .xmlformat import (
    NewContent,
    build_envelope,
    js_escape,
    split_wire_template,
    wire_delta_template,
    wire_envelope_template,
)

__all__ = ["RCBAgent", "ParticipantState", "AGENT_DEFAULT_PORT", "TOPIC_ROSTER_CHANGED"]

AGENT_DEFAULT_PORT = 3000

#: Observer topic fired on the host browser when participants join/leave.
TOPIC_ROSTER_CHANGED = "rcb-roster-changed"

#: Snippet source marker embedded in the initial page's head.
_SNIPPET_SCRIPT_ID = "ajax-snippet"

#: Pre-normalized header pair for poll responses (hot serve path).
_XML_CONTENT_TYPE = ("Content-Type", "application/xml; charset=utf-8")


class ParticipantState:
    """Per-participant bookkeeping on the agent."""

    def __init__(self, participant_id: str, joined_at: float):
        self.participant_id = participant_id
        self.joined_at = joined_at
        self.last_poll_at = joined_at
        self.polls = 0
        self.content_responses = 0
        #: Host/participant actions queued for delivery to this participant.
        self.outbound_actions: List[UserAction] = []
        #: Events releasing this member's held poll early (queued
        #: outbound actions, transport switches) — doc-time advances
        #: release every held poll through the agent's global list.
        self.wake_events: List = []

    def __repr__(self):
        return "ParticipantState(%s, %d polls)" % (self.participant_id, self.polls)


class RCBAgent(BrowserExtension):
    """The RCB-Agent browser extension (install on the host browser)."""

    #: Span-name prefix for this tier's generate/serve/delta spans;
    #: relays override with "relay" so traces read host → relay → leaf.
    _span_prefix = "host"

    def __init__(
        self,
        port: int = AGENT_DEFAULT_PORT,
        cache_mode: bool = True,
        policy: Optional[ModerationPolicy] = None,
        secret: Optional[str] = None,
        poll_interval: float = 1.0,
        long_poll_timeout: Optional[float] = None,
        transport=None,
        always_resend: bool = False,
        replicate_cookies: bool = False,
        generation_cost_per_kb: float = 0.0,
        announce_presence: bool = False,
        enable_delta: bool = True,
        delta_history: int = 8,
        enable_batched_serve: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        metrics_node: Optional[str] = None,
        events: Optional[EventBus] = None,
        attribution=None,
        telemetry=None,
    ):
        super().__init__()
        self.port = port
        #: Cache-mode policy: a bool (the paper's two global modes) or a
        #: :class:`~repro.core.cachepolicy.CacheModePolicy` for the
        #: per-participant / per-object flexibility of §4.1.2.
        self.cache_policy = coerce_cache_policy(cache_mode)
        self.policy = policy if policy is not None else OpenPolicy()
        #: Session secret for HMAC request authentication; None disables
        #: authentication (trusted-LAN configuration).
        self.secret = secret
        self._auth = Authenticator(secret)
        #: Poll interval advertised to participants on the initial page.
        self.poll_interval = poll_interval
        #: The default delivery strategy (``RCB_TRANSPORT`` when the
        #: argument is None).  ``long_poll_timeout`` is the legacy
        #: spelling of a long-poll transport and still works.
        if transport is None and long_poll_timeout is not None:
            transport = LongPollTransport(hold_timeout=long_poll_timeout)
        self.transport = coerce_transport(transport)
        #: Per-member transport overrides (set by the adaptive
        #: controller or :meth:`set_member_transport`); they outrank
        #: both the client's requested mode and the agent default.
        self._member_transports: Dict[str, Transport] = {}
        #: Shared default-parameter instances for client-requested modes.
        self._mode_transports: Dict[str, Transport] = {}
        #: Last mode reported to the per-member ``transport_mode`` gauge.
        self._member_mode_seen: Dict[str, str] = {}
        self._held_open = 0
        #: Ablation: disable the timestamp protocol and resend the full
        #: content on every poll.
        self.always_resend = always_resend
        #: Extension feature (paper §4.1.2 notes RCB-Agent "can be
        #: extended" to replicate cookies): ship the host's cookies for
        #: the co-browsed origin so participants' non-cache-mode object
        #: fetches are session-authenticated.  Off by default, as in the
        #: paper — replicating a session cookie widens its trust domain.
        self.replicate_cookies = replicate_cookies
        #: Simulated CPU cost of content generation, seconds per KB of
        #: envelope.  Zero for desktop hosts (generation is fast relative
        #: to the network); nonzero models slow devices like the paper's
        #: Nokia N810 Fennec port (§6).
        self.generation_cost_per_kb = generation_cost_per_kb
        #: Push roster snapshots to participants on join/leave — the
        #: connection/status indicator the usability subjects asked for.
        self.announce_presence = announce_presence
        #: Delta envelopes: answer a recent participant with a DOM diff
        #: against its last-acknowledged snapshot instead of the full
        #: regenerated page.  Full envelopes remain the fallback for
        #: stale participants, evicted snapshots, and oversized diffs.
        self.enable_delta = enable_delta
        #: How many distinct document states the snapshot ring retains.
        self.delta_history = delta_history
        #: Batched serving: co-due polls against the same (doc_time,
        #: base_time, mode key) share one diff and one serialized body
        #: (a broadcast plan), with per-member personalization limited
        #: to the spliced userActions payload.  False restores the
        #: legacy per-member str serve path exactly.
        self.enable_batched_serve = enable_batched_serve
        self._change_waiters: List = []

        self.generator = ContentGenerator(AGENT_OBJECT_PATH)
        self.participants: Dict[str, ParticipantState] = {}
        self.pending_actions: List[PendingAction] = []

        #: Mapping table: agent request-URI -> cache key (paper §4.1.1).
        self._object_map: Dict[str, str] = {}
        #: Absolute URLs the observer recorded downloading (Fig. 3 step 2).
        self._downloaded_urls: List[str] = []

        self._doc_time = 0
        #: Generated envelopes per cache-mode key, for the current
        #: document state only.
        self._generated_xml: Dict[str, str] = {}
        #: The same envelopes pre-split around the userActions section,
        #: so per-participant action splicing is O(actions) instead of
        #: re-scanning the page-sized XML text.
        self._generated_split: Dict[str, tuple] = {}
        self._generated_for_time = -1
        self._generation_count = 0
        #: Stable rewrite callables per (mode key, page URL, auth
        #: state).  The generator's incremental reuse fence fingerprints
        #: ``sign_target``/``should_cache`` by identity — fresh closures
        #: on every call would force a full rebuild every time.
        self._mode_callables: "OrderedDict[tuple, tuple]" = OrderedDict()
        #: Snapshot ring: doc_time -> cache-mode key -> canonical content
        #: tree (repro.core.delta), for the last ``delta_history``
        #: generated document states.
        self._snapshots: "OrderedDict[int, Dict[str, object]]" = OrderedDict()
        #: Memoized ops JSON per (base_time, mode_key) for the *current*
        #: document state: participants at the same base share one diff.
        self._delta_memo: Dict = {}
        #: Batched serving, for the *current* document state only (both
        #: tables reset together with the envelope caches): pre-encoded
        #: wire templates per mode key, and broadcast plans (or
        #: remembered fallbacks) per (base_time, mode_key) — base 0 is
        #: the full envelope.
        self._wire_templates: Dict[str, object] = {}
        self._plans: Dict[tuple, object] = {}
        #: Escaped userActions payloads keyed by action-object identity:
        #: broadcast_action hands the *same* action objects to every
        #: participant, so co-due members share one encode + escape.
        self._actions_memo: Dict[tuple, tuple] = {}
        #: Local mirrors of the plans-built / batched-polls counters so
        #: the per-serve amortization gauge needs no registry reads.
        self._plans_built_n = 0
        self._batched_polls_n = 0

        self._listener: Optional[ListenSocket] = None
        self._accept_proc = None
        self._active_connections: set = set()

        #: Central metrics registry; shared across a session when the
        #: orchestrator passes one in, private otherwise.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: End-to-end tracer; None keeps the wire format byte-identical
        #: to the untraced protocol (no ``X-RCB-Trace`` header).
        self.tracer = tracer
        #: Structured event bus; None (the default) disables the event
        #: log entirely — events never touch the wire either way.
        self.events = events
        #: Wire-byte cost sink (:class:`repro.obs.attribution.ByteAttribution`);
        #: None (the default) ships byte-identical traffic with no
        #: per-response records.
        self.attribution = attribution
        #: Telemetry sink for piggybacked client digests — anything with
        #: ``ingest(blob, t=None)``: the host wires a
        #: :class:`repro.obs.fleet.FleetView`, a relay its own
        #: :class:`repro.obs.digest.ClientTelemetry` (so subtree digests
        #: merge and ride the relay's next upstream poll).  None (the
        #: default) ignores the key entirely.
        self.telemetry = telemetry
        #: Label distinguishing this agent's instruments when several
        #: agents (host + relays) share one registry.
        self.metrics_node = metrics_node
        # Statistics surfaced to benchmarks: a dict-shaped facade whose
        # entries are registry instruments.
        self.stats = StatsFacade(
            self.metrics,
            prefix="agent_",
            labels={"node": metrics_node} if metrics_node else {},
            counters=(
                "polls",
                "empty_responses",
                "content_responses",
                "object_requests",
                "connections",
                "auth_failures",
                "actions_applied",
                "actions_held",
                "actions_dropped",
                "action_errors",
                "delta_responses",
                "full_responses",
                "delta_fallbacks",
                "delta_bytes_sent",
                "full_bytes_sent",
                "delta_bytes_saved",
                "incremental_generations",
                "full_generations",
                "segments_reused",
                "segments_total",
                "dirty_subtrees",
                "urlcache_hits",
                "serve_plans_built",
                "serve_batched_polls",
                "wire_bytes_zero_copy",
                "wire_bytes_copied",
                "push_envelopes_streamed",
                "transport_switches",
            ),
            gauges=(
                "last_generation_seconds",
                "generation_reuse_ratio",
                "serve_amortization",
                "held_polls_open",
            ),
            histograms=("generation_seconds",),
        )
        #: Trace context per generated document state: serve spans for a
        #: doc_time parent under the span that produced that content
        #: (host: its generate span; relay: its upstream apply span).
        self._content_ctx: "OrderedDict[int, SpanContext]" = OrderedDict()

    # -- extension lifecycle -----------------------------------------------------------

    def on_install(self) -> None:
        """Wire observers, open the TCP port, start accepting."""
        browser = self.browser
        browser.observers.add_observer(TOPIC_DOCUMENT_LOADED, self._on_document_event)
        browser.observers.add_observer(TOPIC_DOCUMENT_CHANGED, self._on_document_event)
        browser.observers.add_observer(TOPIC_OBJECT_DOWNLOADED, self._on_object_downloaded)
        self._listener = browser.host.listen(self.port)
        self._accept_proc = browser.sim.process(self._accept_loop())
        if browser.page is not None:
            self._bump_doc_time()

    def on_uninstall(self) -> None:
        """Unwire observers and close the port."""
        browser = self.browser
        browser.observers.remove_observer(TOPIC_DOCUMENT_LOADED, self._on_document_event)
        browser.observers.remove_observer(TOPIC_DOCUMENT_CHANGED, self._on_document_event)
        browser.observers.remove_observer(TOPIC_OBJECT_DOWNLOADED, self._on_object_downloaded)
        self._close_port()

    def _close_port(self) -> None:
        """Close the listener and drop established connections — a
        stopped agent (or a dead relay) serves nothing, so participants'
        keep-alive polls must fail rather than linger."""
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for connection in list(self._active_connections):
            connection.close()
        self._active_connections.clear()

    @property
    def url(self) -> str:
        """The address participants type into their browsers."""
        return "http://%s:%d/" % (self.browser.host.name, self.port)

    # -- browser-state monitoring (Fig. 1 steps 4 & 9) ------------------------------------

    def _on_document_event(self, _topic, _page) -> None:
        self._bump_doc_time()

    def _on_object_downloaded(self, _topic, loaded) -> None:
        self._downloaded_urls.append(loaded.url)

    def _bump_doc_time(self) -> None:
        # Milliseconds, strictly increasing even within one millisecond.
        now_ms = int(self.browser.sim.now * 1000)
        self._set_doc_time(max(now_ms, self._doc_time + 1))

    def _set_doc_time(self, value: int) -> None:
        """Advance the document timestamp and wake long-poll waiters.

        The root agent stamps the simulation clock (via
        :meth:`_bump_doc_time`); a relay instead adopts its upstream's
        timestamps here, which is what keeps ``doc_time`` consistent
        across tiers.  The timestamp never moves backwards.
        """
        if value <= self._doc_time:
            return
        self._doc_time = value
        waiters, self._change_waiters = self._change_waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()

    @property
    def doc_time(self) -> int:
        """Timestamp (ms) of the host's latest document state."""
        return self._doc_time

    @property
    def cache_mode(self):
        """Legacy bool view of the cache policy (True if the policy can
        ever serve objects from the host's cache)."""
        return self.cache_policy.ever_uses_cache

    @cache_mode.setter
    def cache_mode(self, value) -> None:
        """Assigning a bool or policy replaces the cache policy."""
        self.cache_policy = coerce_cache_policy(value)

    # -- transports -----------------------------------------------------------------------

    @property
    def long_poll_timeout(self) -> Optional[float]:
        """Legacy view of the default transport: the hold timeout when
        it holds connections open, None for interval polling."""
        return self.transport.hold_timeout if self.transport.holds else None

    @long_poll_timeout.setter
    def long_poll_timeout(self, value: Optional[float]) -> None:
        if value is None:
            self.transport = IntervalPollTransport()
        else:
            self.transport = LongPollTransport(hold_timeout=value)

    def transport_mode_for(self, participant_id: str) -> str:
        """The mode currently governing one member's polls: a controller
        override, else the mode last granted in negotiation (a client may
        request above the default), else the agent default."""
        override = self._member_transports.get(participant_id)
        if override is not None:
            return override.mode
        seen = self._member_mode_seen.get(participant_id)
        if seen is not None:
            return seen
        return self.transport.mode

    def set_member_transport(self, participant_id, transport, reason=None) -> Transport:
        """Override one member's transport (the adaptive controller's
        lever).  Accepts a mode string or a :class:`Transport`; emits a
        ``transport.switch`` event and wakes the member's held poll so
        the switch takes effect on the response in flight, not one poll
        later."""
        if isinstance(transport, str):
            transport = transport_for_mode(transport)
        elif not isinstance(transport, Transport):
            raise TypeError("transport must be a mode string or Transport")
        previous = self.transport_mode_for(participant_id)
        self._member_transports[participant_id] = transport
        if transport.mode != previous:
            self.stats.inc("transport_switches")
            self._note_member_mode(participant_id, transport.mode)
            self._emit(
                TRANSPORT_SWITCH,
                participant=participant_id,
                from_mode=previous,
                to_mode=transport.mode,
                reason=reason,
            )
            state = self.participants.get(participant_id)
            if state is not None:
                self._wake_member(state)
        return transport

    def clear_member_transport(self, participant_id: str) -> None:
        """Drop a member's override; negotiation rules apply again."""
        self._member_transports.pop(participant_id, None)

    def _granted_transport(self, participant_id: str, requested) -> Transport:
        """Negotiate one poll's transport: a member override outranks
        the client's requested mode, which outranks the agent default.
        Also keeps the per-member ``transport_mode`` gauge current."""
        override = self._member_transports.get(participant_id)
        if override is not None:
            granted = override
        elif requested in TRANSPORT_MODES and requested != self.transport.mode:
            granted = self._shared_mode_transport(requested)
        else:
            granted = self.transport
        self._note_member_mode(participant_id, granted.mode)
        return granted

    def _shared_mode_transport(self, mode: str) -> Transport:
        transport = self._mode_transports.get(mode)
        if transport is None:
            transport = self._mode_transports[mode] = transport_for_mode(mode)
        return transport

    def _note_member_mode(self, participant_id: str, mode: str) -> None:
        if self._member_mode_seen.get(participant_id) == mode:
            return
        self._member_mode_seen[participant_id] = mode
        self.metrics.gauge(
            "agent_transport_mode", node=participant_id
        ).set(MODE_INDEX[mode])

    def _wake_member(self, state: ParticipantState) -> None:
        """Release a member's held poll early (queued outbound actions,
        transport switch)."""
        if not state.wake_events:
            return
        events, state.wake_events = state.wake_events, []
        for event in events:
            if not event.triggered:
                event.succeed()

    # -- tracing ------------------------------------------------------------------------

    def _node_name(self) -> str:
        """The pipeline-node label this agent's spans carry."""
        if self.metrics_node:
            return self.metrics_node
        return self.browser.name if self.browser is not None else "agent"

    def _emit(self, event_type: str, trace=None, **data) -> None:
        """Record a structured event on the bus, when one is attached."""
        if self.events is not None:
            self.events.emit(
                event_type,
                self.browser.sim.now,
                node=self._node_name(),
                trace=trace,
                **data,
            )

    def _remember_content_context(self, doc_time: int, context: SpanContext) -> None:
        """Record the span that produced ``doc_time``'s content.  First
        writer wins — that span roots the document state's trace (the
        host's generate span, or a relay's upstream apply span)."""
        if doc_time in self._content_ctx:
            return
        self._content_ctx[doc_time] = context
        while len(self._content_ctx) > 64:
            self._content_ctx.popitem(last=False)

    def _content_context(self) -> Optional[SpanContext]:
        return self._content_ctx.get(self._doc_time)

    # -- server loop --------------------------------------------------------------------

    def _accept_loop(self):
        while True:
            listener = self._listener
            if listener is None or listener.closed:
                return
            try:
                connection = yield listener.accept()
            except (StoreClosed, Interrupt):
                return
            self.stats.inc("connections")
            self.browser.sim.process(self._serve(connection))

    def _serve(self, connection):
        self._active_connections.add(connection)
        try:
            yield from serve_connection(
                self.browser.sim, connection, self._dispatch, server_name="rcb-agent"
            )
        finally:
            self._active_connections.discard(connection)
            connection.close()

    def _dispatch(self, request: HttpRequest, client_name: str):
        # Classification by method token and request-URI (Fig. 2).
        if request.method == "GET" and request.path == "/":
            return self._initial_page_response()
        if request.method == "GET" and request.path == AGENT_OBJECT_PATH:
            # Reading a cached object through the browser's cache service
            # costs a few milliseconds on the host.
            yield self.browser.sim.timeout(0.004)
            return self._object_response(request)
        if request.method == "POST" and request.path == "/poll":
            response = yield from self._poll_response(request, client_name)
            return response
        return HttpResponse(404, body=b"unknown rcb request")
        yield  # pragma: no cover - makes this a generator function

    # -- new connection requests ------------------------------------------------------------

    def _initial_page_response(self) -> HttpResponse:
        """The initial HTML page, with Ajax-Snippet in its head."""
        secret_field = ""
        if self.secret is not None:
            secret_field = (
                "<p>This session requires the secret key your host shared "
                "with you.</p>"
                "<form id='rcb-key-form' onsubmit='return rcbKeySubmit(this)'>"
                "<input type='password' name='session_key' value=''>"
                "<input type='submit' value='Join'></form>"
            )
        page = (
            "<!DOCTYPE html><html><head>"
            "<title>RCB Co-browsing Session</title>"
            '<script id="%s" data-poll-interval="%s">'
            "/* Ajax-Snippet: polls RCB-Agent and updates this document"
            " in place; see repro.core.snippet for the modelled logic. */"
            "</script>"
            "</head><body>"
            "<p id='rcb-welcome'>Connected to an RCB co-browsing session. "
            "Waiting for the host's first page...</p>%s"
            "</body></html>"
        ) % (_SNIPPET_SCRIPT_ID, self.poll_interval, secret_field)
        return html_response(page)

    # -- object requests (cache mode) ----------------------------------------------------------

    def _object_response(self, request: HttpRequest) -> HttpResponse:
        if not self._authenticate(request):
            return HttpResponse(401, body=b"bad or missing hmac")
        self.stats.inc("object_requests")
        target = request.path + ("?" + self._unsigned_query(request) if request.query else "")
        cache_key = self._object_map.get(target)
        if cache_key is None:
            # Fall back to the key parameter directly.
            cache_key = request.query_params().get("key")
        if cache_key is None:
            return HttpResponse(404, body=b"no such object mapping")
        session = self.browser.cache.open_read_session()
        if not session.contains(cache_key):
            return HttpResponse(404, body=b"object not cached")
        entry = session.read(cache_key)
        headers = Headers([("Content-Type", entry.content_type)])
        return HttpResponse(200, headers, entry.data)

    def _unsigned_query(self, request: HttpRequest) -> str:
        from .security import HMAC_PARAM

        pairs = [
            pair
            for pair in request.query.split("&")
            if pair and not pair.startswith(HMAC_PARAM + "=")
        ]
        return "&".join(pairs)

    # -- Ajax polling requests ---------------------------------------------------------------

    def _poll_response(self, request: HttpRequest, client_name: str):
        if not self._authenticate(request):
            return HttpResponse(401, body=b"bad or missing hmac")
        self.stats.inc("polls")
        arrived = self.browser.sim.now

        try:
            payload = json.loads(request.body.decode("utf-8") or "{}")
        except ValueError:
            return HttpResponse(400, body=b"bad poll body")
        participant_id = payload.get("participant") or client_name
        participant = self._participant(participant_id)
        participant.polls += 1
        participant.last_poll_at = self.browser.sim.now
        their_time = int(payload.get("timestamp", 0))

        # Piggybacked telemetry digest: ingest before the hold/serve
        # branches so a poll that parks for seconds still delivers its
        # subtree's measurements immediately.
        if self.telemetry is not None:
            reported_digest = payload.get("telemetry")
            if reported_digest is not None:
                self.telemetry.ingest(reported_digest, t=self.browser.sim.now)

        # Step 1: data merging — piggybacked participant actions.
        raw_actions = payload.get("actions") or []
        if raw_actions:
            try:
                actions = decode_actions(json.dumps(raw_actions))
            except ActionError:
                return HttpResponse(400, body=b"bad piggybacked actions")
            for action in actions:
                yield from self._moderate(participant_id, action)
        else:
            actions = []

        # Transport negotiation: the client may request a non-default
        # mode in its payload; a member override (adaptive controller)
        # outranks both.  The grant travels back in X-RCB-Transport only
        # when it differs from what the client reported, so the default
        # exchange stays byte-identical to the plain polling protocol.
        requested = payload.get("transport")
        reported = requested if requested in TRANSPORT_MODES else TRANSPORT_POLL
        granted = self._granted_transport(participant_id, requested)
        advertise = granted.mode if granted.mode != reported else None
        #: Parked stretches of this exchange, recorded as
        #: ``transport.hold`` spans so serve self-time excludes them.
        holds: List[tuple] = []

        # Step 2: timestamp inspection.  A poll that piggybacked actions
        # is never parked — its response acknowledges them, and a held
        # transport's client sends actions on a second flush request
        # precisely to get that immediate ack.
        outbound = participant.outbound_actions
        if granted.holds and self._doc_time <= their_time and not outbound and not actions:
            if granted.max_envelopes > 1:
                # Streamed push: hold and ship every envelope the hold
                # window produces in one multi-envelope response.
                response = yield from self._stream_push(
                    participant, their_time, granted, arrived
                )
                # A controller switch may have landed while the stream
                # was parked: advertise the *current* grant.
                granted = self._granted_transport(participant_id, requested)
                advertise = granted.mode if granted.mode != reported else None
                if response is not None:
                    return self._with_transport(response, advertise)
            else:
                # Long poll ("hanging request"): wait for a change, a
                # queued outbound action, a transport switch, or the
                # hold timeout, then fall through to the ordinary serve
                # branches — a released hold joins the current tick's
                # broadcast plan like any co-due poll.
                held = yield from self._hold_for_change(
                    participant, granted.hold_timeout
                )
                holds.append(held)
            outbound = participant.outbound_actions
            granted = self._granted_transport(participant_id, requested)
            advertise = granted.mode if granted.mode != reported else None
            if self.browser is None:
                # Uninstalled while this exchange was parked (a dying
                # relay): answer empty — the connection is dropping.
                self.stats.inc("empty_responses")
                self._record_holds(holds, participant_id)
                return self._with_transport(
                    self._xml("", participant=participant_id, kind="empty"), advertise
                )
        if self.always_resend and self.browser.page is not None:
            participant.outbound_actions = []
            body, _ = self._serve_body(
                participant_id, their_time, outbound, force_full=True
            )
            size = len(body)
            participant.content_responses += 1
            self.stats.inc("content_responses")
            self.stats.inc("full_responses")
            self.stats.inc("full_bytes_sent", size)
            context = self._serve_span(arrived, participant_id, False, size, holds)
            self._emit(
                POLL_SERVED,
                trace=context,
                participant=participant_id,
                kind="full",
                bytes=size,
                doc_time=self._doc_time,
            )
            return self._with_transport(
                self._respond(body, context, participant_id, "full"), advertise
            )
        if self._doc_time > their_time and self.browser.page is not None:
            # Step 3: response sending, with new content — a delta
            # envelope when this participant's acknowledged state is
            # still in the snapshot ring, the full envelope otherwise.
            participant.outbound_actions = []
            generations_before = self._generation_count
            body, is_delta = self._serve_body(participant_id, their_time, outbound)
            size = len(body)
            if is_delta:
                self.stats.inc("delta_responses")
                self.stats.inc("delta_bytes_sent", size)
            else:
                self.stats.inc("full_responses")
                self.stats.inc("full_bytes_sent", size)
            if (
                self.generation_cost_per_kb > 0
                and self._generation_count > generations_before
            ):
                # Charge the device's CPU time for the generation run.
                yield self.browser.sim.timeout(
                    self.generation_cost_per_kb * size / 1024.0
                )
            participant.content_responses += 1
            self.stats.inc("content_responses")
            context = self._serve_span(arrived, participant_id, is_delta, size, holds)
            self._emit(
                POLL_SERVED,
                trace=context,
                participant=participant_id,
                kind="delta" if is_delta else "full",
                bytes=size,
                doc_time=self._doc_time,
            )
            kind = "delta" if is_delta else "full"
            return self._with_transport(
                self._respond(body, context, participant_id, kind), advertise
            )
        self._record_holds(holds, participant_id)
        if outbound:
            participant.outbound_actions = []
            xml = self._action_only_envelope(outbound)
            return self._with_transport(
                self._xml(xml, participant=participant_id, kind="actions"), advertise
            )
        # No new content: empty response to avoid hanging requests.
        self.stats.inc("empty_responses")
        return self._with_transport(
            self._xml("", participant=participant_id, kind="empty"), advertise
        )

    def _hold_for_change(self, participant: ParticipantState, duration: float):
        """Hang one poll until a document change, a per-member wake
        (queued outbound action, transport switch), or the hold timeout.
        Generator; keeps the ``held_polls_open`` gauge current and
        returns the ``(start, end)`` sim-time interval it parked —
        callers record it as a ``transport.hold`` span."""
        sim = self.browser.sim
        start = sim.now
        waiter = sim.event()
        self._change_waiters.append(waiter)
        participant.wake_events.append(waiter)
        self._held_open += 1
        self.stats.set("held_polls_open", self._held_open)
        try:
            yield AnyOf(sim, [waiter, sim.timeout(duration)])
        finally:
            self._held_open -= 1
            self.stats.set("held_polls_open", self._held_open)
            if not waiter.triggered:
                # Timed out: drop the dangling waiter registrations.
                if waiter in self._change_waiters:
                    self._change_waiters.remove(waiter)
                if waiter in participant.wake_events:
                    participant.wake_events.remove(waiter)
        return (start, sim.now)

    def _stream_push(self, participant, their_time, transport, arrived):
        """Streamed push: hold the connection and capture an envelope on
        *each* document change, shipping several back to back in one
        response (the snippet splits on the XML declaration).  Each
        captured envelope is a delta against the previous one and joins
        that tick's broadcast plan, so co-due streams share diffs and
        serialized bodies exactly like released long polls.

        Generator; returns the merged :class:`HttpResponse`, or None
        when the hold window closed with nothing captured (the caller
        falls through to the action-only / empty branches).
        """
        sim = self.browser.sim
        participant_id = participant.participant_id
        base = their_time
        captured = []
        holds: List[tuple] = []
        last_is_delta = False
        deadline = sim.now + transport.hold_timeout
        while True:
            if self.browser is None:
                # Uninstalled mid-stream (a dying relay): stop capturing;
                # the connection underneath is dropping anyway.
                return None
            if self._doc_time > base and self.browser.page is not None:
                outbound = participant.outbound_actions
                participant.outbound_actions = []
                generations_before = self._generation_count
                body, is_delta = self._serve_body(participant_id, base, outbound)
                size = len(body)
                if is_delta:
                    self.stats.inc("delta_responses")
                    self.stats.inc("delta_bytes_sent", size)
                else:
                    self.stats.inc("full_responses")
                    self.stats.inc("full_bytes_sent", size)
                if (
                    self.generation_cost_per_kb > 0
                    and self._generation_count > generations_before
                ):
                    yield sim.timeout(self.generation_cost_per_kb * size / 1024.0)
                participant.content_responses += 1
                self.stats.inc("content_responses")
                captured.append(body)
                last_is_delta = is_delta
                base = self._doc_time
                if len(captured) >= transport.max_envelopes:
                    break
                # Linger briefly for a follow-up change to batch, but
                # never past the hold deadline.
                deadline = min(deadline, sim.now + transport.stream_linger)
                continue
            if participant.outbound_actions:
                # Actions can't ride a held stream mid-flight; release
                # so the ordinary branches deliver them.
                break
            remaining = deadline - sim.now
            if remaining <= 1e-9:
                break
            held = yield from self._hold_for_change(participant, remaining)
            holds.append(held)
        if not captured or self.browser is None:
            self._record_holds(holds, participant_id)
            return None
        self.stats.inc("push_envelopes_streamed", len(captured))
        body = merge_wire_bodies(captured)
        total = len(body)
        context = self._serve_span(arrived, participant_id, last_is_delta, total, holds)
        self._emit(
            POLL_SERVED,
            trace=context,
            participant=participant_id,
            kind="push",
            envelopes=len(captured),
            bytes=total,
            doc_time=self._doc_time,
        )
        return self._respond(body, context, participant_id, "push")

    @staticmethod
    def _with_transport(response: HttpResponse, advertise: Optional[str]) -> HttpResponse:
        """Stamp the granted mode on a response when it differs from
        what the client reported; otherwise leave the wire untouched."""
        if advertise is not None:
            response.headers.set(TRANSPORT_HEADER, advertise)
        return response

    def _serve_span(
        self,
        arrived: float,
        participant_id: str,
        is_delta: bool,
        size: int,
        holds=(),
    ) -> Optional[SpanContext]:
        """Record the content-serving span for one poll exchange and
        return its context (carried downstream in ``X-RCB-Trace``).
        Spans the sim-time from poll arrival to response dispatch,
        parented under whichever span produced the content being sent.
        ``holds`` lists the exchange's parked ``(start, end)``
        stretches, recorded as ``transport.hold`` children so the serve
        span's *self* time is actual serving work, not the wait."""
        if self.tracer is None:
            return None
        span = self.tracer.start_span(
            self._span_prefix + ".serve",
            t=arrived,
            parent=self._content_context(),
            node=self._node_name(),
            participant=participant_id,
            kind="delta" if is_delta else "full",
            doc_time=self._doc_time,
            bytes=size,
        )
        span.finish(self.browser.sim.now)
        self._record_holds(holds, participant_id, parent=span)
        return span.context

    def _record_holds(self, holds, participant_id: str, parent=None) -> None:
        """Record ``transport.hold`` spans for one exchange's parked
        stretches — children of the serve span when content shipped,
        roots otherwise (a hold that timed out into an empty response
        still shows up in the profile)."""
        if self.tracer is None:
            return
        for start, end in holds:
            if end - start <= 0.0:
                continue
            span = self.tracer.start_span(
                "transport.hold",
                t=start,
                parent=parent,
                node=self._node_name(),
                participant=participant_id,
            )
            span.finish(end)

    #: Coarse attribution labels for legacy str bodies (anything not
    #: listed counts as document ``body``).
    _STR_BUCKETS = {"delta": "delta", "actions": "userActions"}

    def _xml(
        self,
        body_text: str,
        trace_context: Optional[SpanContext] = None,
        participant: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> HttpResponse:
        headers = Headers([("Content-Type", "application/xml; charset=utf-8")])
        if trace_context is not None:
            headers.set(TRACE_HEADER, format_trace_header(trace_context))
        data = body_text.encode("utf-8")
        response = HttpResponse(200, headers, data)
        if self.attribution is not None and participant is not None:
            buckets = {}
            if data:
                buckets[self._STR_BUCKETS.get(kind, "body")] = len(data)
            response.attribution = self.attribution.begin(
                self._node_name(),
                participant,
                kind or "empty",
                self._doc_time,
                buckets,
            )
        return response

    def _participant(self, participant_id: str) -> ParticipantState:
        state = self.participants.get(participant_id)
        if state is None:
            state = ParticipantState(participant_id, self.browser.sim.now)
            self.participants[participant_id] = state
            self._emit(
                MEMBER_JOIN, participant=participant_id, members=len(self.participants)
            )
            self.browser.observers.notify(TOPIC_ROSTER_CHANGED, self.roster())
            if self.announce_presence:
                self.broadcast_action(PresenceAction(self.roster()))
        return state

    def roster(self) -> List[str]:
        """Connected participant ids (paper §3.3: the agent knows exactly
        which participants are connected)."""
        return sorted(self.participants)

    def disconnect(self, participant_id: str) -> None:
        """Forget a participant and announce the roster change."""
        self._member_transports.pop(participant_id, None)
        self._member_mode_seen.pop(participant_id, None)
        if self.participants.pop(participant_id, None) is not None:
            self._emit(
                MEMBER_LEAVE, participant=participant_id, members=len(self.participants)
            )
            self.browser.observers.notify(TOPIC_ROSTER_CHANGED, self.roster())
            if self.announce_presence:
                self.broadcast_action(PresenceAction(self.roster()))

    # -- content generation & reuse ------------------------------------------------------------

    def _ensure_generated(self, participant_id: str) -> str:
        """(Re)generate the envelope if the document changed; returns the
        cached XML text (with empty userActions).

        Envelopes are cached per cache-mode key: participants whose
        policy decisions coincide share one generation (paper §4.1.2's
        generate-once-reuse, preserved within each mode group).
        """
        if self._generated_for_time != self._doc_time:
            self._generated_xml = {}
            self._generated_split = {}
            self._delta_memo = {}
            self._wire_templates = {}
            self._plans = {}
            self._generated_for_time = self._doc_time
        mode_key = self.cache_policy.mode_key(participant_id)
        cached = self._generated_xml.get(mode_key)
        if cached is not None:
            return cached
        page = self.browser.page
        page_url = str(page.url)
        sign_target, should_cache = self._rewrite_callables(
            mode_key, page_url, participant_id
        )
        cookies_json = "[]"
        if self.replicate_cookies:
            cookies = self.browser.cookie_jar.cookies_for(page.url.host, page.url.path or "/")
            cookies_json = json.dumps(
                [
                    {"name": c.name, "value": c.value, "host": c.host, "path": c.path}
                    for c in cookies
                ]
            )
        generated = self.generator.generate(
            page.document,
            page.url,
            doc_time=self._doc_time,
            cache_session=self.browser.cache.open_read_session(),
            cache_mode=self.cache_policy.ever_uses_cache,
            user_actions_json="[]",
            sign_target=sign_target,
            should_cache=should_cache,
            cookies_json=cookies_json,
            mode_key=mode_key,
            build_canonical=self.enable_delta,
            encode_segments=self.enable_batched_serve,
        )
        self._object_map.update(generated.object_map)
        self._generated_xml[mode_key] = generated.xml_text
        split = self._split_envelope(generated.xml_text)
        if split is not None:
            self._generated_split[mode_key] = split
        if self.enable_batched_serve:
            if generated.head_segments is not None:
                # Zero-copy wire path: assemble the template from the
                # generator's pre-encoded immutable segment bytes.
                self._wire_templates[mode_key] = wire_envelope_template(
                    self._doc_time,
                    generated.head_segments,
                    generated.top_segments,
                    cookies_json=cookies_json,
                )
            else:
                template = split_wire_template(generated.xml_text)
                if template is not None:
                    self._wire_templates[mode_key] = template
        self._generation_count += 1
        self.stats.set("last_generation_seconds", generated.generation_seconds)
        self.stats.observe("generation_seconds", generated.generation_seconds)
        self.stats.inc(
            "incremental_generations" if generated.mode == "incremental" else "full_generations"
        )
        self.stats.inc("segments_reused", generated.segments_reused)
        self.stats.inc("segments_total", generated.segments_total)
        self.stats.inc("dirty_subtrees", generated.dirty_subtrees)
        self.stats.inc("urlcache_hits", generated.urlcache_hits)
        self.stats.set("generation_reuse_ratio", generated.reuse_ratio)
        if self.tracer is not None:
            now = self.browser.sim.now
            span = self.tracer.start_span(
                self._span_prefix + ".generate",
                t=now,
                parent=self._content_context(),
                node=self._node_name(),
                doc_time=self._doc_time,
                mode_key=mode_key,
                bytes=len(generated.xml_text),
                wall_seconds=generated.generation_seconds,
                urls_rewritten=generated.urls_rewritten,
                generation_mode=generated.mode,
                segments_reused=generated.segments_reused,
                dirty_subtrees=generated.dirty_subtrees,
            )
            span.finish(now)
            self._remember_content_context(self._doc_time, span.context)
        if self.enable_delta:
            self._store_snapshot(
                self._doc_time, mode_key, generated.content, tree=generated.canonical_root
            )
        return generated.xml_text

    def _rewrite_callables(self, mode_key: str, page_url: str, participant_id: str):
        """Stable ``(sign_target, should_cache)`` for a mode group.

        Cached per (mode key, page URL, auth state) so repeated
        generations hand the generator *identical* callable objects —
        the identity fence that lets it reuse the previous rewritten
        clone.  A mode key groups participants whose cache-policy
        decisions coincide, so the first member's id is representative
        for the whole group.
        """
        key = (mode_key, page_url, self._auth.enabled)
        pair = self._mode_callables.get(key)
        if pair is not None:
            self._mode_callables.move_to_end(key)
            return pair
        sign_target = None
        if self._auth.enabled:
            auth = self._auth
            sign_target = lambda target: auth.sign("GET", target)
        policy = self.cache_policy

        def should_cache(object_url, content_type, size):
            return policy.use_cache_for(
                participant_id, page_url, object_url, content_type, size
            )

        pair = self._mode_callables[key] = (sign_target, should_cache)
        while len(self._mode_callables) > 16:
            self._mode_callables.popitem(last=False)
        return pair

    # -- delta envelopes ---------------------------------------------------------------

    def _store_snapshot(self, doc_time: int, mode_key: str, content, tree=None) -> None:
        """Retain the canonical tree of a generated state in the ring.

        ``tree`` is the generator's incrementally-built canonical tree
        (shares unchanged node objects with the previous snapshot, which
        is what lets the diff skip them by identity); without one the
        content is re-parsed from scratch.
        """
        per_mode = self._snapshots.get(doc_time)
        if per_mode is None:
            while len(self._snapshots) >= max(1, self.delta_history):
                self._snapshots.popitem(last=False)
            per_mode = self._snapshots[doc_time] = {}
        if mode_key not in per_mode:
            per_mode[mode_key] = tree if tree is not None else content_tree(content)

    def _snapshot_tree(self, doc_time: int, mode_key: str):
        per_mode = self._snapshots.get(doc_time)
        return None if per_mode is None else per_mode.get(mode_key)

    def _content_envelope(self, participant_id, their_time, actions):
        """The content response for one participant: ``(xml, is_delta)``.

        Prefers a delta envelope when the participant's acknowledged
        ``their_time`` is still in the snapshot ring and the diff is
        actually smaller than the full envelope; every other case —
        delta disabled, brand-new participant, evicted snapshot, or an
        edit so large the diff loses — falls back to the full envelope.
        """
        full = self._envelope_with_actions(actions, participant_id)
        if not self.enable_delta or their_time <= 0:
            return full, False
        mode_key = self.cache_policy.mode_key(participant_id)
        ops_json = self._delta_ops_json(their_time, mode_key)
        if ops_json is None:
            self.stats.inc("delta_fallbacks")
            self._emit(
                DELTA_FALLBACK,
                participant=participant_id,
                reason="no-snapshot",
                base_time=their_time,
                doc_time=self._doc_time,
            )
            return full, False
        content = NewContent(
            self._doc_time,
            user_actions_json=encode_actions(actions) if actions else "[]",
            base_time=their_time,
            delta_ops_json=ops_json,
        )
        delta_xml = build_envelope(content)
        if len(delta_xml) >= len(full):
            self.stats.inc("delta_fallbacks")
            self._emit(
                DELTA_FALLBACK,
                participant=participant_id,
                reason="oversize",
                base_time=their_time,
                doc_time=self._doc_time,
                delta_bytes=len(delta_xml),
                full_bytes=len(full),
            )
            return full, False
        self.stats.inc("delta_bytes_saved", len(full) - len(delta_xml))
        return delta_xml, True

    def _delta_ops_json(self, their_time: int, mode_key: str) -> Optional[str]:
        """Memoized delta ops JSON for one base, or None when either
        snapshot has left the ring.  Shared by the legacy per-member
        path and the broadcast planner — both see one diff per base."""
        ops_json = self._delta_memo.get((their_time, mode_key))
        if ops_json is not None:
            return ops_json
        old_tree = self._snapshot_tree(their_time, mode_key)
        new_tree = self._snapshot_tree(self._doc_time, mode_key)
        if old_tree is None or new_tree is None:
            return None
        ops = diff_trees(old_tree, new_tree, metrics=self.metrics, node=self._node_name())
        ops_json = json.dumps(ops, separators=(",", ":"))
        self._delta_memo[(their_time, mode_key)] = ops_json
        if self.tracer is not None:
            now = self.browser.sim.now
            self.tracer.start_span(
                self._span_prefix + ".delta_diff",
                t=now,
                parent=self._content_context(),
                node=self._node_name(),
                base_time=their_time,
                doc_time=self._doc_time,
                ops=len(ops),
                bytes=len(ops_json),
            ).finish(now)
        return ops_json

    # -- batched serving (broadcast plans) -----------------------------------------------------

    def _full_plan(self, participant_id: str, mode_key: str) -> Optional[BroadcastPlan]:
        """The full-envelope broadcast plan for a mode group, building
        it (once per document state) from the cached wire template."""
        if self._generated_for_time == self._doc_time:
            # Hot path: current-state plan already built — skip the
            # generation-cache walk entirely.
            plan = self._plans.get((0, mode_key))
            if plan is not None:
                return plan
        xml = self._ensure_generated(participant_id)
        plan = self._plans.get((0, mode_key))
        if plan is not None:
            return plan
        template = self._wire_templates.get(mode_key)
        if template is None:
            # Segment bytes unavailable (e.g. the batched toggle was
            # flipped mid-state): split the cached text instead.
            template = split_wire_template(xml)
            if template is None:
                return None
            self._wire_templates[mode_key] = template
        plan = BroadcastPlan(template, is_delta=False)
        self._plans[(0, mode_key)] = plan
        self.stats.inc("serve_plans_built")
        self._plans_built_n += 1
        return plan

    def _delta_plan(
        self,
        participant_id: str,
        their_time: int,
        mode_key: str,
        full_plan: BroadcastPlan,
    ) -> Optional[BroadcastPlan]:
        """The delta broadcast plan for one base, or None when the full
        envelope must be served instead.  Failures are remembered as
        :class:`PlanFallback` so co-due members of a hopeless base skip
        the diff — but their fallback stats/events still fire per serve,
        mirroring the unbatched path exactly."""
        entry = self._plans.get((their_time, mode_key))
        if entry is None:
            ops_json = self._delta_ops_json(their_time, mode_key)
            if ops_json is None:
                entry = PlanFallback("no-snapshot")
            else:
                plan = BroadcastPlan(
                    wire_delta_template(self._doc_time, their_time, ops_json),
                    is_delta=True,
                )
                if plan.empty_len >= full_plan.empty_len:
                    # Same verdict the legacy path reaches per member:
                    # the actions bytes are identical on both
                    # candidates, so comparing empty-actions lengths is
                    # the same comparison.
                    entry = PlanFallback(
                        "oversize",
                        delta_bytes=plan.empty_len,
                        full_bytes=full_plan.empty_len,
                    )
                else:
                    entry = plan
                    self.stats.inc("serve_plans_built")
                    self._plans_built_n += 1
            self._plans[(their_time, mode_key)] = entry
        if isinstance(entry, PlanFallback):
            self.stats.inc("delta_fallbacks")
            detail = dict(
                participant=participant_id,
                reason=entry.reason,
                base_time=their_time,
                doc_time=self._doc_time,
            )
            if entry.reason == "oversize":
                detail["delta_bytes"] = entry.delta_bytes
                detail["full_bytes"] = entry.full_bytes
            self._emit(DELTA_FALLBACK, **detail)
            return None
        self.stats.inc("delta_bytes_saved", full_plan.empty_len - entry.empty_len)
        return entry

    def _serve_batched(
        self,
        participant_id: str,
        their_time: int,
        actions: List[UserAction],
        force_full: bool = False,
    ):
        """``(WirePlan, is_delta)`` via the broadcast planner, or
        ``(None, False)`` when no plan can be built (caller falls back
        to the legacy str path)."""
        mode_key = self.cache_policy.mode_key(participant_id)
        plan = self._full_plan(participant_id, mode_key)
        if plan is None:
            return None, False
        if not force_full and self.enable_delta and their_time > 0:
            # Inlined hit path: a built delta plan for this base is a
            # single dict probe away (the common case for co-due polls).
            entry = self._plans.get((their_time, mode_key))
            if entry is not None and type(entry) is BroadcastPlan:
                self.stats.inc("delta_bytes_saved", plan.empty_len - entry.empty_len)
                plan = entry
            else:
                delta = self._delta_plan(participant_id, their_time, mode_key, plan)
                if delta is not None:
                    plan = delta
        if plan.serves:
            self.stats.inc("serve_batched_polls")
            self._batched_polls_n += 1
        plan.serves += 1
        built = self._plans_built_n
        if built:
            self.stats.set(
                "serve_amortization", (self._batched_polls_n + built) / built
            )
        body = plan.personalize(self._actions_wire(actions) if actions else None)
        return body, plan.is_delta

    def _actions_wire(self, actions: List[UserAction]) -> bytes:
        """The escaped userActions CDATA payload, memoized by action
        identity: a broadcast queues the *same* action objects on every
        participant, so co-due members pay one encode + escape total.
        The memo entry pins the action objects — while it lives their
        ids cannot be reused, so an id-tuple hit proves identity."""
        key = tuple(map(id, actions))
        entry = self._actions_memo.get(key)
        if entry is not None:
            return entry[1]
        wire = js_escape(encode_actions(actions)).encode("ascii")
        if len(self._actions_memo) >= 512:
            self._actions_memo.clear()
        self._actions_memo[key] = (tuple(actions), wire)
        return wire

    def _serve_body(
        self,
        participant_id: str,
        their_time: int,
        actions: List[UserAction],
        force_full: bool = False,
    ):
        """The poll body for one participant: ``(body, is_delta)`` where
        the body is a zero-copy :class:`WirePlan` when batched serving
        is on and the legacy str envelope otherwise.  Both carry
        identical bytes on the wire."""
        if self.enable_batched_serve:
            body, is_delta = self._serve_batched(
                participant_id, their_time, actions, force_full=force_full
            )
            if body is not None:
                return body, is_delta
        if force_full:
            return self._envelope_with_actions(actions, participant_id), False
        return self._content_envelope(participant_id, their_time, actions)

    def _respond(
        self,
        body,
        trace_context: Optional[SpanContext] = None,
        participant: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> HttpResponse:
        """Wrap a poll body — str or :class:`WirePlan` — in a 200,
        opening its cost record when attribution is on."""
        if isinstance(body, str):
            return self._xml(body, trace_context, participant=participant, kind=kind)
        self.stats.inc("wire_bytes_zero_copy", body.zero_copy_bytes)
        self.stats.inc("wire_bytes_copied", body.copied_bytes)
        headers = Headers.preset(
            [_XML_CONTENT_TYPE, ("Content-Length", str(len(body)))]
        )
        if trace_context is not None:
            headers.set(TRACE_HEADER, format_trace_header(trace_context))
        response = HttpResponse(200, headers, body)
        if self.attribution is not None and participant is not None:
            response.attribution = self.attribution.begin(
                self._node_name(),
                participant,
                kind or "full",
                self._doc_time,
                body.buckets,
            )
        return response

    @property
    def generation_count(self) -> int:
        """How many times content generation actually ran (the envelope
        is reused across participants; paper §4.1.2)."""
        return self._generation_count

    def _envelope_with_actions(self, actions: List[UserAction], participant_id: str) -> str:
        xml = self._ensure_generated(participant_id)
        if not actions:
            return xml
        mode_key = self.cache_policy.mode_key(participant_id)
        split = self._generated_split.get(mode_key)
        if split is None:
            return self._splice_actions(xml, actions)
        # Cached split: splicing costs O(actions), not a scan of the
        # page-sized envelope per participant.
        prefix, suffix = split
        return (
            prefix
            + "<userActions><![CDATA["
            + js_escape(encode_actions(actions))
            + "]]></userActions>"
            + suffix
        )

    def _action_only_envelope(self, actions: List[UserAction]) -> str:
        content = NewContent(self._doc_time, [], [], encode_actions(actions))
        return build_envelope(content)

    @staticmethod
    def _split_envelope(xml: str):
        """``(prefix, suffix)`` around the userActions section, or None
        when the envelope has no such section."""
        start = xml.find("<userActions>")
        if start == -1:
            return None
        end = xml.find("</userActions>", start)
        if end == -1:
            return None
        return xml[:start], xml[end + len("</userActions>"):]

    @staticmethod
    def _splice_actions(xml: str, actions: List[UserAction]) -> str:
        split = RCBAgent._split_envelope(xml)
        if split is None:
            return xml
        prefix, suffix = split
        # The suffix keeps every section after userActions — previously
        # the splice truncated to </newContent>, silently dropping a
        # docCookies section.
        return (
            prefix
            + "<userActions><![CDATA["
            + js_escape(encode_actions(actions))
            + "]]></userActions>"
            + suffix
        )

    # -- action moderation and application -----------------------------------------------------

    def _moderate(self, participant_id: str, action: UserAction):
        decision = self.policy.decide(participant_id, action)
        if decision == ModerationPolicy.APPLY:
            try:
                yield from self._apply_action(participant_id, action)
            except ActionError:
                # A stale or hostile reference (the document may have
                # changed since the participant saw it) must not take
                # down the agent; drop the action.
                self.stats.inc("action_errors")
                return
            self.stats.inc("actions_applied")
        elif decision == ModerationPolicy.HOLD:
            self.pending_actions.append(PendingAction(participant_id, action))
            self.stats.inc("actions_held")
        else:
            self.stats.inc("actions_dropped")

    def confirm_pending(self):
        """Host approves all held actions (ConfirmPolicy workflow).

        Generator process; returns how many actions were applied.
        """
        held, self.pending_actions = self.pending_actions, []
        applied = 0
        for pending in held:
            try:
                yield from self._apply_action(pending.participant_id, pending.action)
            except ActionError:
                self.stats.inc("action_errors")
                continue
            self.stats.inc("actions_applied")
            applied += 1
        return applied

    def reject_pending(self) -> int:
        """Host discards all held actions."""
        count = len(self.pending_actions)
        self.pending_actions = []
        self.stats.inc("actions_dropped", count)
        return count

    def _apply_action(self, participant_id: str, action: UserAction):
        browser = self.browser
        document = browser.page.document if browser.page else None
        if document is None:
            return

        if isinstance(action, FormFillAction):
            # Merge the participant's form data into the host's form.
            form = resolve_reference(document, action.form_ref)

            def merge(_document):
                for name, value in action.fields.items():
                    field = Browser._find_form_field(form, name)
                    if field is not None:
                        browser.fill_field(field, value)

            browser.mutate_document(merge)
        elif isinstance(action, SubmitAction):
            form = resolve_reference(document, action.form_ref)
            yield from browser.submit_form(form, action.fields)
        elif isinstance(action, ClickAction):
            element = resolve_reference(document, action.ref)
            if element.tag == "a":
                yield from browser.click_link(element)
            else:
                browser.dispatch_event(element, "click")
        elif isinstance(action, (MouseMoveAction, ScrollAction)):
            # Cosmetic mirroring: forward to every other participant.
            self.broadcast_action(action, exclude=participant_id)
        else:
            # Presence snapshots and unknown future kinds are not
            # participant-appliable; ignore them.
            self.stats.inc("action_errors")

    def broadcast_action(self, action: UserAction, exclude: Optional[str] = None) -> None:
        """Queue an action for delivery to all (other) participants —
        used for host-side pointer mirroring and participant fan-out."""
        for participant_id, state in self.participants.items():
            if participant_id != exclude:
                state.outbound_actions.append(action)
                # A held poll must deliver queued actions now, not at
                # its hold timeout.
                self._wake_member(state)

    # -- authentication ---------------------------------------------------------------------------

    def _authenticate(self, request: HttpRequest) -> bool:
        if not self._auth.verify(request.method, request.target, request.body):
            self.stats.inc("auth_failures")
            self._emit(HMAC_REJECT, method=request.method, path=request.path)
            return False
        return True
