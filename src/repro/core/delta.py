"""Delta envelopes: incremental DOM updates over the polling protocol.

The baseline protocol regenerates and ships the *entire* cloned page to
every participant on each document change (paper §4.1.2).  For small
edits — one text node on a large page — that dominates response size
and the per-KB generation cost.  This module provides the diff engine
behind the ``<delta>`` envelope section: the agent retains a canonical
snapshot of each generated document state, diffs the participant's
last-acknowledged snapshot against the current one, and ships a compact
list of node operations instead of the whole page.  Ajax-Snippet applies
the operations in place; any mismatch triggers a resync with a full
envelope, so deltas are purely an optimization — never a correctness
dependency.

**Canonical content tree.**  Both endpoints reason about the same shape:
an ``<html>`` element whose first child is ``<head>`` (holding the
envelope's hChild records) followed by the top elements
(body/frameset/noframes) in envelope order.  On the participant this is
exactly the post-update document with Ajax-Snippet's own ``<script>``
removed, so operations computed on canonical trees apply verbatim.

**Operations.**  Each op is a JSON-ready dict addressing a node by a
*section* (``head``, ``body``, ``frameset`` or ``noframes``) and a
*path* of child indices inside that section:

* ``{"op": "text",    "sec": s, "path": p, "data": d}`` — set Text data
* ``{"op": "comment", "sec": s, "path": p, "data": d}`` — set Comment data
* ``{"op": "attrs",   "sec": s, "path": p, "attrs": [[n, v], ...]}`` —
  replace an element's attribute list
* ``{"op": "replace", "sec": s, "path": p, "node": payload}`` — swap the
  node at ``p`` for a freshly built one
* ``{"op": "insert",  "sec": s, "path": p, "node": payload}`` — insert a
  node so it lands at index ``p[-1]``
* ``{"op": "remove",  "sec": s, "path": p}`` — remove the node at ``p``
* ``{"op": "top",     "sec": s, "attrs": [...]}`` — create the top
  element if missing, then replace its attributes
* ``{"op": "drop",    "sec": s}`` — remove an obsolete top element

Node payloads carry Text/Comment data raw (no HTML escaping round-trip,
which matters inside raw-text elements) and elements as ``outerHTML``
re-parsed in the target parent's context.

Ops are emitted so that *sequential* application is well defined: a
parent's child-list edits come before recursion into surviving children,
removals repeat at a fixed index, and insert indices are in final
(new-tree) coordinates.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Optional

from ..html import Comment, Element, Text
from ..html.dom import Node, _ParentNode
from ..html.parser import parse_fragment
from .xmlformat import NewContent

__all__ = [
    "DeltaError",
    "SECTION_NAMES",
    "apply_delta",
    "content_tree",
    "diff_trees",
]

#: Top-level sections an op may address (besides ``head``).
SECTION_NAMES = ("body", "frameset", "noframes")


class DeltaError(Exception):
    """A delta cannot be applied to this tree (the receiver resyncs)."""


# -- canonical content tree --------------------------------------------------------------


def content_tree(content: NewContent) -> Element:
    """Build the canonical ``<html>`` tree for an envelope's content.

    The tree goes through the same serialize/parse round trip the full
    update procedure uses on the participant, so snapshots diffed here
    are node-for-node identical to what participants actually hold.
    """
    html = Element("html")
    head = Element("head")
    html.append_child(head)
    for record in content.head_children:
        child = Element(record.tag, dict(record.attributes))
        child.inner_html = record.inner_html
        head.append_child(child)
    for top in content.top_elements:
        element = Element(top.name, dict(top.attributes))
        element.inner_html = top.inner_html
        html.append_child(element)
    return html


def _section(root: Element, name: str) -> Optional[Element]:
    for child in root.children:
        if child.tag == name:
            return child
    return None


# -- diff --------------------------------------------------------------------------------


def diff_trees(
    old_root: Element,
    new_root: Element,
    metrics=None,
    node: Optional[str] = None,
    stats: Optional[Dict[str, int]] = None,
) -> List[Dict]:
    """Operations turning ``old_root`` into ``new_root`` (canonical trees).

    Matched subtrees that are the *same object* (incremental snapshots
    share unchanged nodes) or carry equal DOM version stamps are skipped
    without descending or serializing — version draws are globally
    unique (:mod:`repro.html.dom`), so equality is a sound "identical
    subtree" certificate.  Serialized comparison keys are computed
    lazily and only for children that survive those short-circuits,
    making the diff O(changed region), not O(page).

    With ``metrics`` (a :class:`~repro.obs.registry.MetricsRegistry`),
    diff wall-time and op counts are published as ``delta_diff_seconds``
    / ``delta_diff_ops``, labeled by ``node``.  With ``stats`` (a dict),
    ``visited`` (parent pairs descended into), ``skipped`` (subtrees
    short-circuited) and ``serialized`` (comparison keys computed) are
    accumulated into it.
    """
    started = _time.perf_counter() if metrics is not None else 0.0
    if stats is not None:
        for key in ("visited", "skipped", "serialized"):
            stats.setdefault(key, 0)
    ctx = _DiffContext(stats)
    ops: List[Dict] = []

    old_head = _section(old_root, "head") or Element("head")
    new_head = _section(new_root, "head") or Element("head")
    _diff_children(old_head, new_head, "head", [], ops, ctx)

    old_tops = {el.tag: el for el in old_root.children if el.tag in SECTION_NAMES}
    new_tops = [el for el in new_root.children if el.tag in SECTION_NAMES]
    new_names = {el.tag for el in new_tops}
    for name in SECTION_NAMES:
        if name in old_tops and name not in new_names:
            ops.append({"op": "drop", "sec": name})
    for el in new_tops:
        old = old_tops.get(el.tag)
        if old is None:
            ops.append({"op": "top", "sec": el.tag, "attrs": _attr_list(el)})
            old = Element(el.tag)
        elif old is not el and old.attributes != el.attributes:
            ops.append({"op": "top", "sec": el.tag, "attrs": _attr_list(el)})
        if ctx.same_subtree(old, el):
            continue
        _diff_children(old, el, el.tag, [], ops, ctx)
    if metrics is not None:
        labels = {"node": node} if node else {}
        metrics.histogram("delta_diff_seconds", **labels).observe(
            _time.perf_counter() - started
        )
        metrics.counter("delta_diff_ops", **labels).inc(len(ops))
    return ops


def _attr_list(element: Element) -> List[List[str]]:
    return [[name, value] for name, value in element.attributes]


def _shallow_match(a: Node, b: Node) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, Element):
        return a.tag == b.tag
    return True


class _DiffContext:
    """Per-diff scratch: lazy serialization keys + skip accounting."""

    __slots__ = ("_keys", "counts")

    def __init__(self, counts: Optional[Dict[str, int]] = None):
        self._keys: Dict[int, str] = {}
        self.counts = counts

    def key(self, node: Node) -> str:
        """``node.to_html()``, computed at most once per node."""
        node_id = id(node)
        text = self._keys.get(node_id)
        if text is None:
            text = node.to_html()
            self._keys[node_id] = text
            if self.counts is not None:
                self.counts["serialized"] += 1
        return text

    def same_subtree(self, a: Node, b: Node) -> bool:
        """Deep equality, cheap-first: object identity, then version
        stamps (globally unique draws — equality certifies an identical
        subtree), then memoized serialized comparison."""
        if a is b:
            if self.counts is not None:
                self.counts["skipped"] += 1
            return True
        if type(a) is not type(b):
            return False
        if isinstance(a, Element):
            if a.tag != b.tag:
                return False
            if a._subtree_version == b._subtree_version:
                if self.counts is not None:
                    self.counts["skipped"] += 1
                return True
            return self.key(a) == self.key(b)
        return a.data == b.data


def _node_payload(node: Node) -> Dict:
    if isinstance(node, Text):
        return {"t": "text", "data": node.data}
    if isinstance(node, Comment):
        return {"t": "comment", "data": node.data}
    if isinstance(node, Element):
        return {"t": "element", "html": node.to_html()}
    raise DeltaError("cannot encode node %r" % (node,))


#: LCS table size bound; beyond it, gap alignment degrades gracefully to
#: positional pairing (still correct — just coarser ops, and oversized
#: diffs fall back to full envelopes anyway).
_LCS_CELL_LIMIT = 10000


def _diff_children(
    old_parent: _ParentNode,
    new_parent: _ParentNode,
    sec: str,
    path: List[int],
    ops: List[Dict],
    ctx: _DiffContext,
) -> None:
    if ctx.counts is not None:
        ctx.counts["visited"] += 1
    old = old_parent.child_nodes
    new = new_parent.child_nodes
    pairs = _match_children(old, new, ctx)

    matched_old = {oi for oi, _ni, _deep in pairs}
    matched_new = {ni for _oi, ni, _deep in pairs}
    # Removals first, in descending OLD coordinates (each removal leaves
    # smaller indices untouched), then insertions in ascending FINAL
    # coordinates: at insert time indices 0..k-1 are already final.
    for oi in sorted((i for i in range(len(old)) if i not in matched_old), reverse=True):
        ops.append({"op": "remove", "sec": sec, "path": path + [oi]})
    for ni in (i for i in range(len(new)) if i not in matched_new):
        ops.append(
            {"op": "insert", "sec": sec, "path": path + [ni], "node": _node_payload(new[ni])}
        )
    # Surviving pairs are recursed (or replaced) only after this list is
    # final, so their paths are plain new-tree coordinates.
    for oi, ni, deep in pairs:
        if deep:
            continue
        if _shallow_match(old[oi], new[ni]):
            _diff_matched(old[oi], new[ni], sec, path + [ni], ops, ctx)
        else:
            ops.append(
                {
                    "op": "replace",
                    "sec": sec,
                    "path": path + [ni],
                    "node": _node_payload(new[ni]),
                }
            )


def _match_children(old: List[Node], new: List[Node], ctx: _DiffContext):
    """Pair up old/new child indices: ``[(oi, ni, deep_equal), ...]``.

    Deep-equal nodes are trimmed from both ends and anchored via an LCS
    over the middle, so an insertion between look-alike siblings does
    not misalign — and rewrite — everything after it.  Equality goes
    through :meth:`_DiffContext.same_subtree`, so shared or
    version-identical subtrees match without being serialized; only the
    changed middle window pays for comparison keys.  Between anchors,
    leftovers pair positionally; a shallow-matched pair recurses, a
    mismatched one becomes a replace.
    """
    pairs = []
    prefix = 0
    while prefix < len(old) and prefix < len(new) and ctx.same_subtree(old[prefix], new[prefix]):
        pairs.append((prefix, prefix, True))
        prefix += 1
    suffix = 0
    while (
        suffix < len(old) - prefix
        and suffix < len(new) - prefix
        and ctx.same_subtree(old[len(old) - 1 - suffix], new[len(new) - 1 - suffix])
    ):
        suffix += 1
        pairs.append((len(old) - suffix, len(new) - suffix, True))

    mid_old = range(prefix, len(old) - suffix)
    mid_new = range(prefix, len(new) - suffix)
    if len(mid_old) * len(mid_new) <= _LCS_CELL_LIMIT:
        anchors = _lcs_pairs(old, new, mid_old, mid_new, ctx)
    else:
        anchors = []

    # Walk the gaps between consecutive anchors, pairing leftovers
    # positionally.
    gap_old_start, gap_new_start = prefix, prefix
    for anchor_old, anchor_new in anchors + [(len(old) - suffix, len(new) - suffix)]:
        run_old = range(gap_old_start, anchor_old)
        run_new = range(gap_new_start, anchor_new)
        for k in range(min(len(run_old), len(run_new))):
            pairs.append((run_old[k], run_new[k], False))
        if anchor_old < len(old) - suffix:
            pairs.append((anchor_old, anchor_new, True))
        gap_old_start, gap_new_start = anchor_old + 1, anchor_new + 1
    return pairs


def _lcs_pairs(old: List[Node], new: List[Node], mid_old: range, mid_new: range, ctx: _DiffContext):
    """Longest common subsequence of the middle windows, as index pairs."""
    rows = len(mid_old)
    cols = len(mid_new)
    if not rows or not cols:
        return []
    equal = [
        [ctx.same_subtree(old[mid_old[r]], new[mid_new[c]]) for c in range(cols)]
        for r in range(rows)
    ]
    lengths = [[0] * (cols + 1) for _ in range(rows + 1)]
    for r in range(rows - 1, -1, -1):
        for c in range(cols - 1, -1, -1):
            if equal[r][c]:
                lengths[r][c] = lengths[r + 1][c + 1] + 1
            else:
                lengths[r][c] = max(lengths[r + 1][c], lengths[r][c + 1])
    anchors = []
    r = c = 0
    while r < rows and c < cols:
        if equal[r][c]:
            anchors.append((mid_old[r], mid_new[c]))
            r += 1
            c += 1
        elif lengths[r + 1][c] >= lengths[r][c + 1]:
            r += 1
        else:
            c += 1
    return anchors


def _diff_matched(
    old_node: Node, new_node: Node, sec: str, path: List[int], ops: List[Dict], ctx: _DiffContext
):
    if isinstance(old_node, Text):
        if old_node.data != new_node.data:
            ops.append({"op": "text", "sec": sec, "path": path, "data": new_node.data})
    elif isinstance(old_node, Comment):
        if old_node.data != new_node.data:
            ops.append({"op": "comment", "sec": sec, "path": path, "data": new_node.data})
    else:
        if old_node.attributes != new_node.attributes:
            ops.append(
                {"op": "attrs", "sec": sec, "path": path, "attrs": _attr_list(new_node)}
            )
        _diff_children(old_node, new_node, sec, path, ops, ctx)


# -- apply -------------------------------------------------------------------------------


def apply_delta(
    root: Element,
    ops: List[Dict],
    metrics=None,
    node: Optional[str] = None,
    events=None,
    t: Optional[float] = None,
) -> int:
    """Apply ``ops`` to a canonical tree in place; returns the op count.

    Raises :class:`DeltaError` on any structural mismatch — a missing
    section, a dangling path, a type-confused op, or a malformed op
    record.  Callers treat that as "this participant needs a resync",
    not as a fatal condition.

    With ``metrics``, apply wall-time and op counts are published as
    ``delta_apply_seconds`` / ``delta_apply_ops``, labeled by ``node``.
    With ``events`` (an :class:`~repro.obs.events.EventBus`) and ``t``
    (the sim-time stamp), a failing op is recorded as a
    ``delta.apply_failed`` event before the :class:`DeltaError` leaves
    the engine — the black box then names the exact op that broke.
    """
    if not isinstance(ops, list):
        raise _apply_failure(events, t, node, "ops must be a list", None)
    started = _time.perf_counter() if metrics is not None else 0.0
    applied = 0
    for op in ops:
        if not isinstance(op, dict):
            raise _apply_failure(
                events, t, node, "op must be an object, got %r" % (op,), op
            )
        try:
            _apply_one(root, op)
        except (KeyError, TypeError, AttributeError) as exc:
            raise _apply_failure(
                events, t, node, "malformed op %r: %s" % (op, exc), op
            )
        except DeltaError as exc:
            raise _apply_failure(events, t, node, str(exc), op)
        applied += 1
    if metrics is not None:
        labels = {"node": node} if node else {}
        metrics.histogram("delta_apply_seconds", **labels).observe(
            _time.perf_counter() - started
        )
        metrics.counter("delta_apply_ops", **labels).inc(applied)
    return applied


def _apply_failure(events, t, node, message: str, op) -> DeltaError:
    """Build the DeltaError for a failed apply, emitting the structured
    ``delta.apply_failed`` event first when a bus is attached."""
    if events is not None:
        from ..obs.events import DELTA_APPLY_FAILED

        data: Dict[str, object] = {"error": message}
        if isinstance(op, dict):
            data["op"] = op.get("op")
            data["sec"] = op.get("sec")
            data["path"] = op.get("path")
        events.emit(
            DELTA_APPLY_FAILED, t if t is not None else 0.0, node=node or "", **data
        )
    return DeltaError(message)


def _apply_one(root: Element, op: Dict) -> None:
    kind = op["op"]
    sec = op["sec"]
    if sec != "head" and sec not in SECTION_NAMES:
        raise DeltaError("unknown section %r" % (sec,))

    if kind == "drop":
        if sec == "head":
            raise DeltaError("cannot drop the head section")
        section = _section(root, sec)
        if section is None:
            raise DeltaError("drop of missing section %r" % (sec,))
        root.remove_child(section)
        return
    if kind == "top":
        if sec == "head":
            raise DeltaError("head is not a top element")
        section = _section(root, sec)
        if section is None:
            section = Element(sec)
            root.append_child(section)
        for name, _value in list(section.attributes):
            section.remove_attribute(name)
        for name, value in op["attrs"]:
            section.set_attribute(name, value)
        return

    section = _section(root, sec)
    if section is None:
        raise DeltaError("section %r not present" % (sec,))
    path = op["path"]
    if not isinstance(path, list) or not all(isinstance(i, int) and i >= 0 for i in path):
        raise DeltaError("bad path %r" % (path,))

    if kind == "insert":
        parent = _walk(section, path[:-1])
        index = path[-1] if path else _bad_path(path)
        if not isinstance(parent, _ParentNode) or index > len(parent.child_nodes):
            raise DeltaError("insert index %r out of range" % (path,))
        reference = parent.child_nodes[index] if index < len(parent.child_nodes) else None
        parent.insert_before(_build_node(op["node"], _context_tag(parent)), reference)
        return

    node = _walk(section, path)
    if kind == "remove":
        if node is section:
            raise DeltaError("cannot remove a section via a node op")
        node.parent.remove_child(node)
    elif kind == "replace":
        if node is section:
            raise DeltaError("cannot replace a section via a node op")
        parent = node.parent
        parent.replace_child(_build_node(op["node"], _context_tag(parent)), node)
    elif kind == "text":
        if not isinstance(node, Text):
            raise DeltaError("text op on non-Text node at %r" % (path,))
        node.data = op["data"]
    elif kind == "comment":
        if not isinstance(node, Comment):
            raise DeltaError("comment op on non-Comment node at %r" % (path,))
        node.data = op["data"]
    elif kind == "attrs":
        if not isinstance(node, Element):
            raise DeltaError("attrs op on non-Element node at %r" % (path,))
        for name, _value in list(node.attributes):
            node.remove_attribute(name)
        for name, value in op["attrs"]:
            node.set_attribute(name, value)
    else:
        raise DeltaError("unknown op kind %r" % (kind,))


def _bad_path(path) -> int:
    raise DeltaError("empty insert path %r" % (path,))


def _walk(section: Element, path: List[int]) -> Node:
    node: Node = section
    for index in path:
        if not isinstance(node, _ParentNode) or index >= len(node.child_nodes):
            raise DeltaError("path %r does not resolve" % (path,))
        node = node.child_nodes[index]
    return node


def _context_tag(parent: _ParentNode) -> str:
    return parent.tag if isinstance(parent, Element) else "body"


def _build_node(payload: Dict, context_tag: str) -> Node:
    if not isinstance(payload, dict):
        raise DeltaError("bad node payload %r" % (payload,))
    kind = payload.get("t")
    if kind == "text":
        return Text(payload["data"])
    if kind == "comment":
        return Comment(payload["data"])
    if kind == "element":
        nodes = parse_fragment(payload["html"], context_tag)
        if len(nodes) != 1 or not isinstance(nodes[0], Element):
            raise DeltaError("element payload did not parse to one element")
        return nodes[0]
    raise DeltaError("unknown node payload kind %r" % (kind,))
