"""Pluggable push/pull transports and the adaptive per-member controller.

The paper's Ajax-Snippet is pure pull: the agent answers every poll
immediately, even when empty, "to avoid hanging requests" (§4.1.1).
Bozdag, Mesbah & van Deursen's push-vs-pull comparison shows that
choice trades **data coherence** (how stale a member's view may get)
for **server load** (how many requests the host must absorb) — and
their architectural-style companion argues the delivery mechanism
should be an interchangeable element, not baked into the component.
This module makes it one:

* :class:`IntervalPollTransport` — the paper's behaviour: every poll is
  answered immediately; pacing comes from the client's poll interval.
  Request rate is flat and change-independent; staleness averages half
  a poll interval.
* :class:`LongPollTransport` — comet: a poll that would be answered
  empty is parked until the document changes (or a hold timeout
  expires), then released *into that tick's broadcast plan*.  Staleness
  collapses to the network round trip; request rate tracks the change
  rate.
* :class:`PushTransport` — streamed multi-envelope push: a held
  connection ships up to ``max_envelopes`` consecutive envelopes
  (chained deltas, each joining its tick's broadcast plan) before
  releasing, lingering ``stream_linger`` after each capture to batch
  rapid edits.  Coherence stays near long-poll while request rate drops
  by the achieved batch factor.

Negotiation is per member and wire-compatible with the seed protocol:
a client requesting a non-default mode adds a ``"transport"`` key to
its poll body, and the agent answers with an ``X-RCB-Transport`` header
*only* when the granted mode differs from what the client reported —
so a default (poll/poll) deployment is byte-identical to the seed.

On top sits :class:`AdaptiveTransportController`: per member, a
``staleness_p95`` breach (sampled by the PR-4
:class:`~repro.obs.health.HealthMonitor`) escalates
poll → long-poll → push, while sustained host serve pressure (poll
arrival rate above budget) de-escalates held members and widens the
poll interval.  Dwell-window hysteresis keeps members from flapping;
every switch emits a ``transport.switch`` event and feeds the
``transport_switches`` counter and per-member ``transport_mode`` gauge.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TRANSPORT_HEADER",
    "TRANSPORT_LONGPOLL",
    "TRANSPORT_MODES",
    "TRANSPORT_POLL",
    "TRANSPORT_PUSH",
    "AdaptiveTransportController",
    "IntervalPollTransport",
    "LongPollTransport",
    "PushTransport",
    "Transport",
    "coerce_transport",
    "coerce_transport_mode",
    "default_transport_mode",
    "transport_for_mode",
]

TRANSPORT_POLL = "poll"
TRANSPORT_LONGPOLL = "longpoll"
TRANSPORT_PUSH = "push"

#: Escalation order: coherence improves left to right.
TRANSPORT_MODES: Tuple[str, ...] = (TRANSPORT_POLL, TRANSPORT_LONGPOLL, TRANSPORT_PUSH)

#: Mode -> ladder index, the value the per-member ``transport_mode``
#: gauge reports (0 poll, 1 longpoll, 2 push).
MODE_INDEX: Dict[str, int] = {mode: index for index, mode in enumerate(TRANSPORT_MODES)}

#: Response header carrying the granted mode — sent only when it
#: differs from the mode the client reported, so the default
#: configuration stays byte-identical to the seed protocol.
TRANSPORT_HEADER = "X-RCB-Transport"

#: Environment variable forcing the session-wide default mode (the CI
#: transport matrix runs the whole tier-1 suite under each value).
TRANSPORT_ENV = "RCB_TRANSPORT"


def default_transport_mode() -> str:
    """The deployment's default mode: ``RCB_TRANSPORT`` or ``poll``."""
    mode = os.environ.get(TRANSPORT_ENV)
    if mode is None or mode == "":
        return TRANSPORT_POLL
    if mode not in TRANSPORT_MODES:
        raise ValueError(
            "%s must be one of %s, got %r" % (TRANSPORT_ENV, "/".join(TRANSPORT_MODES), mode)
        )
    return mode


class Transport:
    """One delivery strategy for poll responses.

    Transports are server-side configuration objects (hold timing,
    batching limits); they carry no per-request state, so one instance
    may be shared by every member granted the same mode.
    """

    mode = TRANSPORT_POLL
    #: Whether an empty-handed poll is parked instead of answered.
    holds = False
    #: Longest a poll may stay parked (seconds); None for interval poll.
    hold_timeout: Optional[float] = None
    #: Envelopes one held connection may ship before releasing.
    max_envelopes = 1
    #: After a capture, wait this long for follow-up changes to batch.
    stream_linger = 0.0

    def describe(self) -> str:
        return self.mode

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.describe())


class IntervalPollTransport(Transport):
    """The paper's pull: answer immediately, client paces the interval."""


class LongPollTransport(Transport):
    """Comet: park empty-handed polls until a change or the timeout."""

    mode = TRANSPORT_LONGPOLL
    holds = True

    def __init__(self, hold_timeout: float = 25.0):
        if hold_timeout <= 0:
            raise ValueError("hold_timeout must be positive")
        self.hold_timeout = hold_timeout

    def describe(self) -> str:
        return "%s, hold<=%gs" % (self.mode, self.hold_timeout)


class PushTransport(Transport):
    """Streamed push: one held connection ships several envelopes."""

    mode = TRANSPORT_PUSH
    holds = True

    def __init__(
        self,
        hold_timeout: float = 25.0,
        max_envelopes: int = 4,
        stream_linger: float = 0.05,
    ):
        # The linger must stay well under typical edit cadence: it
        # batches genuine bursts only.  A linger near the edit interval
        # makes every stream wait for max_envelopes, turning push into
        # added staleness instead of less.
        if hold_timeout <= 0:
            raise ValueError("hold_timeout must be positive")
        if max_envelopes < 1:
            raise ValueError("max_envelopes must be at least 1")
        if stream_linger < 0:
            raise ValueError("stream_linger must be non-negative")
        self.hold_timeout = hold_timeout
        self.max_envelopes = max_envelopes
        self.stream_linger = stream_linger

    def describe(self) -> str:
        return "%s, hold<=%gs, <=%d envelopes, linger %gs" % (
            self.mode,
            self.hold_timeout,
            self.max_envelopes,
            self.stream_linger,
        )


def transport_for_mode(mode: str) -> Transport:
    """A default-parameter transport instance for ``mode``."""
    if mode == TRANSPORT_POLL:
        return IntervalPollTransport()
    if mode == TRANSPORT_LONGPOLL:
        return LongPollTransport()
    if mode == TRANSPORT_PUSH:
        return PushTransport()
    raise ValueError("unknown transport mode %r" % (mode,))


def coerce_transport(value) -> Transport:
    """A :class:`Transport` from None (environment default), a mode
    string, or an already-built instance."""
    if value is None:
        return transport_for_mode(default_transport_mode())
    if isinstance(value, Transport):
        return value
    if isinstance(value, str):
        return transport_for_mode(value)
    raise TypeError("transport must be None, a mode string, or a Transport")


def coerce_transport_mode(value) -> str:
    """A validated mode string from None / str / Transport (the
    client-side snippet only needs the mode, never the hold tuning)."""
    if value is None:
        return default_transport_mode()
    if isinstance(value, Transport):
        return value.mode
    if isinstance(value, str):
        if value not in TRANSPORT_MODES:
            raise ValueError("unknown transport mode %r" % (value,))
        return value
    raise TypeError("transport must be None, a mode string, or a Transport")


class AdaptiveTransportController:
    """Per-member transport escalation driven by the SLO engine.

    Consumes the :class:`~repro.obs.health.HealthMonitor`'s windowed
    ``staleness_p95`` per member and the agent's poll arrival rate:

    * a member whose staleness p95 stays at or above ``stale_breach_ms``
      for ``escalate_after`` consecutive checks is escalated one step
      along poll → long-poll → push;
    * when the host's poll rate exceeds ``host_poll_budget`` for
      ``deescalate_after`` consecutive checks, the poll interval widens
      by ``widen_factor`` (up to ``max_poll_interval``) and every
      escalated member whose dwell allows steps back down.

    Hysteresis is a per-member **dwell window**: after any switch the
    member is pinned for ``dwell`` seconds, so a noisy signal cannot
    flap the mode.  Switches go through
    :meth:`~repro.core.agent.RCBAgent.set_member_transport`, which
    emits ``transport.switch`` on the event bus and maintains the
    ``transport_switches`` counter and ``transport_mode`` gauges; the
    member itself learns the new mode from the ``X-RCB-Transport``
    header on its next poll exchange.
    """

    def __init__(
        self,
        session,
        monitor,
        agent=None,
        check_interval: float = 1.0,
        dwell: float = 10.0,
        escalate_after: int = 2,
        deescalate_after: int = 3,
        stale_breach_ms: Optional[float] = None,
        stale_clear_ms: Optional[float] = None,
        host_poll_budget: Optional[float] = None,
        budget_headroom: float = 1.25,
        widen_factor: float = 1.5,
        max_poll_interval: float = 8.0,
    ):
        if dwell < 0:
            raise ValueError("dwell must be non-negative")
        if escalate_after < 1 or deescalate_after < 1:
            raise ValueError("streak lengths must be at least 1")
        self.session = session
        self.monitor = monitor
        self.agent = agent if agent is not None else session.agent
        self.check_interval = check_interval
        self.dwell = dwell
        self.escalate_after = escalate_after
        self.deescalate_after = deescalate_after
        breach, clear = self._staleness_thresholds(monitor)
        self.stale_breach_ms = stale_breach_ms if stale_breach_ms is not None else breach
        self.stale_clear_ms = stale_clear_ms if stale_clear_ms is not None else clear
        #: Poll arrivals per second the host absorbs before "pressure";
        #: None computes ``headroom * members / base poll interval``
        #: fresh at each check (the rate interval polling would cost).
        self.host_poll_budget = host_poll_budget
        self.budget_headroom = budget_headroom
        self.widen_factor = widen_factor
        self.max_poll_interval = max_poll_interval
        self._base_poll_interval = max(self.agent.poll_interval, 1e-3)
        #: member -> {"mode": ladder index, "since": last switch time or
        #: None, "breach": consecutive breaching checks}.
        self._members: Dict[str, Dict] = {}
        self._pressure_streak = 0
        self._last_polls: Optional[int] = None
        self._last_check_t: Optional[float] = None
        #: Every switch this controller made: (t, member, from, to, reason).
        self.switches: List[Tuple[float, str, str, str, str]] = []
        self.last_poll_rate = 0.0
        self.checks = 0

    @staticmethod
    def _staleness_thresholds(monitor) -> Tuple[float, float]:
        for rule in getattr(monitor, "rules", ()) or ():
            if rule.name == "staleness_p95":
                return float(rule.breach), float(rule.warn)
        return 5000.0, 2500.0

    def _state_for(self, member: str) -> Dict:
        state = self._members.get(member)
        if state is None:
            mode = self.agent.transport_mode_for(member)
            state = self._members[member] = {
                "mode": MODE_INDEX.get(mode, 0),
                "since": None,
                "breach": 0,
            }
        return state

    def _dwell_ok(self, state: Dict, now: float) -> bool:
        return state["since"] is None or now - state["since"] >= self.dwell

    def _switch(self, member: str, state: Dict, new_index: int, now: float, reason: str) -> None:
        old_mode = TRANSPORT_MODES[state["mode"]]
        new_mode = TRANSPORT_MODES[new_index]
        state["mode"] = new_index
        state["since"] = now
        state["breach"] = 0
        self.agent.set_member_transport(member, new_mode, reason=reason)
        self.switches.append((now, member, old_mode, new_mode, reason))

    def _poll_rate(self, now: float) -> float:
        polls = self.agent.stats["polls"]
        if self._last_check_t is None:
            rate = 0.0
        else:
            dt = now - self._last_check_t
            rate = (polls - self._last_polls) / dt if dt > 0 else 0.0
        self._last_polls = polls
        self._last_check_t = now
        return rate

    def check(self) -> Dict[str, object]:
        """One control round: read signals, maybe switch members."""
        self.checks += 1
        now = self.session.sim.now
        members = list(self.session.member_times())
        rate = self.last_poll_rate = self._poll_rate(now)
        budget = self.host_poll_budget
        if budget is None:
            budget = self.budget_headroom * max(1, len(members)) / self._base_poll_interval
        pressured = bool(members) and rate > budget
        self._pressure_streak = self._pressure_streak + 1 if pressured else 0
        switched: List[str] = []
        if self._pressure_streak >= self.deescalate_after:
            widened = min(self.max_poll_interval, self.agent.poll_interval * self.widen_factor)
            if widened > self.agent.poll_interval:
                self.agent.poll_interval = widened
            for member in members:
                state = self._state_for(member)
                if state["mode"] > 0 and self._dwell_ok(state, now):
                    self._switch(member, state, state["mode"] - 1, now, "host-pressure")
                    switched.append(member)
            self._pressure_streak = 0
        else:
            for member in members:
                state = self._state_for(member)
                p95 = self.monitor.staleness_p95(member)
                if p95 >= self.stale_breach_ms:
                    state["breach"] += 1
                elif p95 < self.stale_clear_ms:
                    state["breach"] = 0
                if (
                    state["breach"] >= self.escalate_after
                    and state["mode"] < len(TRANSPORT_MODES) - 1
                    and self._dwell_ok(state, now)
                ):
                    self._switch(member, state, state["mode"] + 1, now, "staleness-breach")
                    switched.append(member)
        # Members that left stop being tracked.
        current = set(members)
        for member in list(self._members):
            if member not in current:
                del self._members[member]
        return {
            "t": now,
            "poll_rate": rate,
            "budget": budget,
            "pressured": pressured,
            "switched": switched,
        }

    def member_mode(self, member: str) -> str:
        """The mode this controller believes ``member`` is in."""
        return TRANSPORT_MODES[self._state_for(member)["mode"]]

    def run(self, interval: Optional[float] = None):
        """Generator process: check forever on a cadence (pair with the
        monitor's own :meth:`~repro.obs.health.HealthMonitor.run`)."""
        interval = interval if interval is not None else self.check_interval
        sim = self.session.sim
        while True:
            self.check()
            yield sim.timeout(interval)

    def __repr__(self):
        return "AdaptiveTransportController(%d members, %d switches)" % (
            len(self._members),
            len(self.switches),
        )
