"""Broadcast plans: one serialized body shared by co-due polls.

A :class:`BroadcastPlan` wraps a :class:`~repro.core.xmlformat.WireTemplate`
— the pre-encoded envelope bytes for one ``(doc_time, base_time,
mode_key)`` — and stamps out per-receiver :class:`~repro.http.wire.WirePlan`
bodies.  Everything page-sized is appended to the receiver's plan *by
reference* (zero-copy); the only bytes materialized per receiver are
the spliced userActions payload, and receivers with no queued actions
share one module-level constant even for that.

The agent keys plans exactly like its PR-1 diff memo: ``base_time`` 0
is the full envelope, any other base is a delta plan, and the whole
plan table is invalidated together with the envelope caches when
``doc_time`` advances.  A base whose diff could not be built (evicted
snapshot) or lost on size is remembered as a :class:`PlanFallback`, so
co-due members of a hopeless base don't re-attempt the diff — but the
fallback stats and events are still replayed per serve, keeping
observability identical to the unbatched path.
"""

from __future__ import annotations

from typing import Optional

from ..http.wire import WirePlan
from .xmlformat import EMPTY_ACTIONS_WIRE, WireTemplate

__all__ = ["BroadcastPlan", "PlanFallback", "merge_wire_bodies"]


def merge_wire_bodies(bodies):
    """One response body carrying several envelopes back to back — the
    streamed-push wire format (the snippet splits on the XML
    declaration).  All-:class:`~repro.http.wire.WirePlan` inputs merge
    into one plan by reference, keeping the zero-copy accounting of
    each captured envelope; any legacy str body degrades the merge to a
    joined str (the unbatched serve path is str end to end)."""
    if len(bodies) == 1:
        return bodies[0]
    if any(isinstance(body, str) for body in bodies):
        return "".join(
            body if isinstance(body, str) else body.to_bytes().decode("utf-8")
            for body in bodies
        )
    merged = WirePlan()
    for body in bodies:
        merged.extend_plan(body)
    return merged


class BroadcastPlan:
    """Shared serialized body for every co-due poll of one base."""

    __slots__ = (
        "template",
        "is_delta",
        "serves",
        "empty_len",
        "_memo_actions",
        "_memo_plan",
    )

    def __init__(self, template: WireTemplate, is_delta: bool = False):
        self.template = template
        self.is_delta = is_delta
        #: Polls served from this plan; every serve after the first is
        #: a batched poll (shared diff + shared serialized body).
        self.serves = 0
        #: Wire length with the empty-actions payload — the size the
        #: full-vs-delta decision compares (the personalized actions
        #: bytes are identical on both candidates, so they cancel).
        self.empty_len = (
            template.pre_len + len(EMPTY_ACTIONS_WIRE) + template.post_len
        )
        #: Last shared personalization, keyed by payload identity:
        #: every co-due member carrying the tick's broadcast actions
        #: (or none) gets the *same* immutable body, so after the first
        #: splice the serve is a single attribute probe.
        self._memo_actions: Optional[bytes] = None
        self._memo_plan: Optional[WirePlan] = None

    def personalize(
        self, actions_wire: Optional[bytes] = None, shared: bool = True
    ) -> WirePlan:
        """A receiver's body: shared template + spliced actions.

        ``actions_wire`` is the already-escaped userActions CDATA
        payload (``js_escape(encode_actions(...)).encode("ascii")``);
        ``None`` means no queued actions and appends the shared empty
        payload by reference, making the whole body zero-copy.
        ``shared`` says whether the payload bytes outlive this body
        (e.g. the agent's broadcast-actions memo) or were built for it
        alone — it affects the zero-copy/copied accounting and whether
        the spliced body may be memoized for the next co-due member.
        """
        if shared and actions_wire is self._memo_actions:
            memo = self._memo_plan
            if memo is not None:
                return memo
        plan = WirePlan()
        template = self.template
        plan.extend_shared(template.pre, template.pre_len)
        if actions_wire is None:
            plan.append_shared(EMPTY_ACTIONS_WIRE)
        elif shared:
            plan.append_shared(actions_wire)
        else:
            plan.append_owned(actions_wire)
        plan.extend_shared(template.post, template.post_len)
        if template.buckets is not None:
            # Label the payload bytes for cost attribution.  The dict
            # is built per splice (not per serve: memoized bodies share
            # theirs), so attribution rides the existing memo for free.
            buckets = dict(template.buckets)
            buckets["userActions"] = len(
                EMPTY_ACTIONS_WIRE if actions_wire is None else actions_wire
            )
            plan.buckets = buckets
        if shared:
            self._memo_actions = actions_wire
            self._memo_plan = plan
        return plan

    def __repr__(self):
        return "BroadcastPlan(%s, %d bytes empty, %d serves)" % (
            "delta" if self.is_delta else "full",
            self.empty_len,
            self.serves,
        )


class PlanFallback:
    """A remembered delta-plan failure for one ``(base_time, mode_key)``.

    Stored in the plan table where the delta plan would live, so co-due
    members skip straight to the full plan without re-diffing; carries
    what the per-serve DELTA_FALLBACK event replay needs.
    """

    __slots__ = ("reason", "delta_bytes", "full_bytes")

    def __init__(
        self,
        reason: str,
        delta_bytes: Optional[int] = None,
        full_bytes: Optional[int] = None,
    ):
        self.reason = reason
        self.delta_bytes = delta_bytes
        self.full_bytes = full_bytes

    def __repr__(self):
        return "PlanFallback(%s)" % self.reason
