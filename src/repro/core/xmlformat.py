"""The XML response envelope (paper Fig. 4): build and parse.

RCB-Agent answers an Ajax polling request that needs new content with an
``application/xml`` document of this exact shape::

    <?xml version='1.0' encoding='utf-8'?>
    <newContent>
      <docTime>documentTimestamp</docTime>
      <docContent>
        <docHead>
          <hChild1><![CDATA[escape(hData1)]]></hChild1>
          ...
        </docHead>
        <docBody><![CDATA[escape(bData)]]></docBody>
        <!-- or, for frame pages -->
        <docFrameSet><![CDATA[escape(fData)]]></docFrameSet>
        <docNoFrames><![CDATA[escape(nData)]]></docNoFrames>
      </docContent>
      <userActions>userActionData</userActions>
    </newContent>

Each CDATA payload is a JavaScript-``escape()``-encoded record carrying
an element's attribute name-value list and its innerHTML value — the
combination of DOM structure and innerHTML performance the paper calls
out in §4.1.2.  The escape encoding leaves no ``]``, ``<`` or ``&``
characters in the payload, which is what makes the content "precisely
contained" in the XML message.

**Delta envelopes** extend the format: when the agent can diff the
participant's last-acknowledged document state against the current one
(see :mod:`repro.core.delta`), ``docContent`` is replaced by a
``baseTime`` marker plus a ``delta`` section carrying the JSON-encoded
node operations::

    <newContent>
      <docTime>documentTimestamp</docTime>
      <baseTime>participantTimestamp</baseTime>
      <delta><![CDATA[escape(opsJson)]]></delta>
      <userActions>userActionData</userActions>
    </newContent>

A receiver whose document is not exactly at ``baseTime`` discards the
delta and resyncs with a full envelope.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

__all__ = [
    "NewContent",
    "HeadChild",
    "TopElement",
    "build_envelope",
    "head_child_payload",
    "top_element_payload",
    "payload_encode",
    "head_child_prefix",
    "top_element_prefix",
    "PAYLOAD_SUFFIX",
    "assemble_envelope",
    "parse_envelope",
    "js_escape",
    "js_unescape",
    "EnvelopeError",
    "WireTemplate",
    "wire_envelope_template",
    "wire_delta_template",
    "split_wire_template",
    "EMPTY_ACTIONS_WIRE",
    "WIRE_ACTIONS_OPEN",
    "WIRE_ACTIONS_CLOSE",
]

#: Characters JavaScript's escape() leaves unencoded.
_JS_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789@*_+-./"
)


class EnvelopeError(Exception):
    """Malformed envelope."""


class _JsEscapeTable(dict):
    """``str.translate`` table computing escapes lazily, memoized per
    code point (the working set is the page's alphabet, not Unicode)."""

    def __missing__(self, code: int) -> str:
        char = chr(code)
        if char in _JS_SAFE:
            result = char
        elif code < 256:
            result = "%%%02X" % code
        elif code <= 0xFFFF:
            result = "%%u%04X" % code
        else:
            offset = code - 0x10000
            result = "%%u%04X%%u%04X" % (
                0xD800 + (offset >> 10),
                0xDC00 + (offset & 0x3FF),
            )
        self[code] = result
        return result


_JS_ESCAPE_TABLE = _JsEscapeTable()


def js_escape(text: str) -> str:
    """JavaScript ``escape()``: %XX below 256, %uXXXX above.

    Like the real function, operates on UTF-16 code units: astral-plane
    characters are emitted as a surrogate pair of %uXXXX escapes.
    """
    return text.translate(_JS_ESCAPE_TABLE)


def js_unescape(text: str) -> str:
    """Invert :func:`js_escape` (JavaScript ``unescape()``).

    %uXXXX surrogate pairs are recombined into their astral character.
    """
    units: List[int] = []
    out: List[str] = []

    def flush_units():
        while units:
            unit = units.pop(0)
            if 0xD800 <= unit <= 0xDBFF and units and 0xDC00 <= units[0] <= 0xDFFF:
                low = units.pop(0)
                out.append(chr(0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)))
            else:
                out.append(chr(unit))

    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char != "%":
            flush_units()
            out.append(char)
            index += 1
            continue
        if text[index + 1 : index + 2] in ("u", "U"):
            hex_part = text[index + 2 : index + 6]
            if len(hex_part) == 4 and _is_hex(hex_part):
                units.append(int(hex_part, 16))
                index += 6
                continue
        hex_part = text[index + 1 : index + 3]
        if len(hex_part) == 2 and _is_hex(hex_part):
            flush_units()
            out.append(chr(int(hex_part, 16)))
            index += 3
            continue
        flush_units()
        out.append(char)
        index += 1
    flush_units()
    return "".join(out)


def _is_hex(text: str) -> bool:
    return all(c in "0123456789abcdefABCDEF" for c in text)


class HeadChild:
    """One child element of the cloned document's head."""

    __slots__ = ("tag", "attributes", "inner_html")

    def __init__(self, tag: str, attributes: List[Tuple[str, str]], inner_html: str):
        self.tag = tag
        self.attributes = list(attributes)
        self.inner_html = inner_html

    def __eq__(self, other):
        return (
            isinstance(other, HeadChild)
            and self.tag == other.tag
            and self.attributes == other.attributes
            and self.inner_html == other.inner_html
        )

    def __repr__(self):
        return "HeadChild(<%s>, %d attrs)" % (self.tag, len(self.attributes))


class TopElement:
    """A top-level child of the cloned document: body/frameset/noframes."""

    __slots__ = ("name", "attributes", "inner_html")

    def __init__(self, name: str, attributes: List[Tuple[str, str]], inner_html: str):
        if name not in ("body", "frameset", "noframes"):
            raise EnvelopeError("unsupported top element %r" % (name,))
        self.name = name
        self.attributes = list(attributes)
        self.inner_html = inner_html

    def __eq__(self, other):
        return (
            isinstance(other, TopElement)
            and self.name == other.name
            and self.attributes == other.attributes
            and self.inner_html == other.inner_html
        )

    def __repr__(self):
        return "TopElement(<%s>, %d attrs)" % (self.name, len(self.attributes))


class NewContent:
    """The decoded payload of one envelope."""

    def __init__(
        self,
        doc_time: int,
        head_children: Optional[List[HeadChild]] = None,
        top_elements: Optional[List[TopElement]] = None,
        user_actions_json: str = "[]",
        cookies_json: str = "[]",
        base_time: Optional[int] = None,
        delta_ops_json: Optional[str] = None,
    ):
        self.doc_time = int(doc_time)
        self.head_children = list(head_children or [])
        self.top_elements = list(top_elements or [])
        self.user_actions_json = user_actions_json
        #: Optional replicated host cookies (extension feature; the
        #: paper mentions the capability without needing it).
        self.cookies_json = cookies_json
        #: Delta envelopes: the document timestamp the operations apply
        #: against, and the JSON-encoded ops (repro.core.delta format).
        self.base_time = None if base_time is None else int(base_time)
        self.delta_ops_json = delta_ops_json
        if delta_ops_json is not None:
            if self.base_time is None:
                raise EnvelopeError("delta content requires a base_time")
            if self.head_children or self.top_elements:
                raise EnvelopeError("delta and full content are mutually exclusive")

    @property
    def uses_frames(self) -> bool:
        """Whether the content carries a frameset page."""
        return any(top.name == "frameset" for top in self.top_elements)

    @property
    def is_delta(self) -> bool:
        """Whether this envelope carries incremental operations instead
        of the full document content."""
        return self.delta_ops_json is not None

    def __eq__(self, other):
        return (
            isinstance(other, NewContent)
            and self.doc_time == other.doc_time
            and self.head_children == other.head_children
            and self.top_elements == other.top_elements
            and self.user_actions_json == other.user_actions_json
            and self.cookies_json == other.cookies_json
            and self.base_time == other.base_time
            and self.delta_ops_json == other.delta_ops_json
        )

    def __repr__(self):
        if self.is_delta:
            return "NewContent(t=%d, delta from t=%d)" % (self.doc_time, self.base_time)
        return "NewContent(t=%d, %d head children, %s)" % (
            self.doc_time,
            len(self.head_children),
            "+".join(t.name for t in self.top_elements) or "empty",
        )


_TOP_TAG_NAMES = {"body": "docBody", "frameset": "docFrameSet", "noframes": "docNoFrames"}
_TOP_NAME_TAGS = {v: k for k, v in _TOP_TAG_NAMES.items()}


def head_child_payload(child: HeadChild) -> str:
    """The escaped CDATA payload of one head child (index-independent,
    so the incremental generator can cache it across positions)."""
    return js_escape(
        json.dumps({"tag": child.tag, "attrs": child.attributes, "inner": child.inner_html})
    )


def top_element_payload(top: TopElement) -> str:
    """The escaped CDATA payload of one top element."""
    return js_escape(json.dumps({"attrs": top.attributes, "inner": top.inner_html}))


# -- spliced payload construction ---------------------------------------------------
#
# A payload is js_escape(json.dumps({..., "inner": inner})) with "inner"
# as the record's final key.  Both the JSON string escape (with
# ensure_ascii, json.dumps' default) and js_escape map each UTF-16 code
# unit independently, so both distribute over concatenation.  That lets
# the incremental generator assemble a payload from three spans — the
# escaped record prefix up to the opening quote of the "inner" value,
# per-subtree *encoded* segments (see :func:`payload_encode`) cached
# across generations, and the constant closing span — byte-identical to
# the monolithic helpers above.


def payload_encode(text: str) -> str:
    """``js_escape`` of the JSON string-escape of ``text``.

    ``payload_encode(a + b) == payload_encode(a) + payload_encode(b)``
    for any split point, which is what makes per-subtree encoded
    segments spliceable.
    """
    return js_escape(json.dumps(text)[1:-1])


def head_child_prefix(tag: str, attributes) -> str:
    """Escaped head-child payload up to (and including) the opening
    quote of the ``inner`` JSON string value."""
    return js_escape(json.dumps({"tag": tag, "attrs": list(attributes), "inner": ""})[:-2])


def top_element_prefix(attributes) -> str:
    """Escaped top-element payload up to (and including) the opening
    quote of the ``inner`` JSON string value."""
    return js_escape(json.dumps({"attrs": list(attributes), "inner": ""})[:-2])


#: Escaped closer for a spliced payload: the quote ending the ``inner``
#: string value plus the record's closing brace.
PAYLOAD_SUFFIX = js_escape('"}')


def assemble_envelope(
    doc_time: int,
    head_payloads: List[str],
    top_payloads: List[Tuple[str, str]],
    user_actions_json: str = "[]",
    cookies_json: str = "[]",
) -> str:
    """Assemble a full (non-delta) envelope from pre-escaped payloads.

    Byte-identical to :func:`build_envelope` on the equivalent
    :class:`NewContent` — both routes share the same payload encoding
    (the helpers above) and the same wrapper format strings.
    ``top_payloads`` pairs each payload with its top-element *name*
    (``body``/``frameset``/``noframes``).
    """
    parts = ["<?xml version='1.0' encoding='utf-8'?>", "<newContent>"]
    parts.append("<docTime>%d</docTime>" % doc_time)
    parts.append("<docContent>")
    parts.append("<docHead>")
    for index, payload in enumerate(head_payloads, start=1):
        parts.append("<hChild%d><![CDATA[%s]]></hChild%d>" % (index, payload, index))
    parts.append("</docHead>")
    for name, payload in top_payloads:
        tag = _TOP_TAG_NAMES[name]
        parts.append("<%s><![CDATA[%s]]></%s>" % (tag, payload, tag))
    parts.append("</docContent>")
    parts.append(
        "<userActions><![CDATA[%s]]></userActions>" % js_escape(user_actions_json)
    )
    if cookies_json not in ("", "[]"):
        parts.append(
            "<docCookies><![CDATA[%s]]></docCookies>" % js_escape(cookies_json)
        )
    parts.append("</newContent>")
    return "".join(parts)


def build_envelope(content: NewContent) -> str:
    """Serialize a :class:`NewContent` to the Fig. 4 XML text."""
    if not content.is_delta:
        return assemble_envelope(
            content.doc_time,
            [head_child_payload(child) for child in content.head_children],
            [(top.name, top_element_payload(top)) for top in content.top_elements],
            content.user_actions_json,
            content.cookies_json,
        )
    parts = ["<?xml version='1.0' encoding='utf-8'?>", "<newContent>"]
    parts.append("<docTime>%d</docTime>" % content.doc_time)
    parts.append("<baseTime>%d</baseTime>" % content.base_time)
    parts.append("<delta><![CDATA[%s]]></delta>" % js_escape(content.delta_ops_json))
    parts.append(
        "<userActions><![CDATA[%s]]></userActions>"
        % js_escape(content.user_actions_json)
    )
    if content.cookies_json not in ("", "[]"):
        parts.append(
            "<docCookies><![CDATA[%s]]></docCookies>" % js_escape(content.cookies_json)
        )
    parts.append("</newContent>")
    return "".join(parts)


# -- bytes-level wire assembly -------------------------------------------------------
#
# Every character an envelope can carry is ASCII: payloads, the delta
# ops, userActions, and docCookies are all js_escape output (the safe
# set is ASCII and every escape is %XX/%uXXXX), and the XML wrapper is
# ASCII by construction.  UTF-8 encoding of ASCII text distributes over
# concatenation, so an envelope's bytes can be spliced from
# per-section *pre-encoded* bytes segments wrapped in the constants
# below — byte-for-byte equal to ``assemble_envelope(...).encode()``.
# A :class:`WireTemplate` is that splice with the userActions CDATA
# payload left open: ``pre`` ends with the CDATA opener, ``post``
# begins with its closer, and a receiver-specific body drops in
# between (see :mod:`repro.core.serveplan`).

_WIRE_XML_DECL = b"<?xml version='1.0' encoding='utf-8'?>"
_WIRE_OPEN = b"<newContent>"
_WIRE_CLOSE = b"</newContent>"
_WIRE_HEAD_OPEN = b"<docHead>"
_WIRE_HEAD_CLOSE = b"</docHead>"
_WIRE_CONTENT_OPEN = b"<docContent>"
_WIRE_CONTENT_CLOSE = b"</docContent>"

#: The userActions CDATA slot a wire template leaves open.
WIRE_ACTIONS_OPEN = b"<userActions><![CDATA["
WIRE_ACTIONS_CLOSE = b"]]></userActions>"

#: ``js_escape("[]")`` pre-encoded: the shared empty-actions payload.
EMPTY_ACTIONS_WIRE = js_escape("[]").encode("ascii")

#: Memoized per-index head-child wrappers and per-name top wrappers.
_HCHILD_WRAPS: Dict[int, Tuple[bytes, bytes]] = {}
_TOP_WRAPS: Dict[str, Tuple[bytes, bytes]] = {
    name: (("<%s><![CDATA[" % tag).encode(), ("]]></%s>" % tag).encode())
    for name, tag in _TOP_TAG_NAMES.items()
}


def _hchild_wrap(index: int) -> Tuple[bytes, bytes]:
    wrap = _HCHILD_WRAPS.get(index)
    if wrap is None:
        wrap = _HCHILD_WRAPS[index] = (
            ("<hChild%d><![CDATA[" % index).encode(),
            ("]]></hChild%d>" % index).encode(),
        )
    return wrap


class WireTemplate:
    """One envelope's bytes, split around the userActions CDATA slot.

    ``pre`` and ``post`` are shared immutable buffer lists with their
    total lengths precomputed; per-receiver plans splice a personalized
    actions payload between them without copying either side.

    ``buckets`` labels the *payload* bytes the template carries
    (``head`` / ``body`` / ``delta`` / ``docCookies`` — see
    :mod:`repro.obs.attribution`); wrapper scaffolding is deliberately
    unlabeled and lands in the ``framing`` residual at ship time.  The
    dict is computed once per template, so attribution adds nothing to
    the per-receiver splice.
    """

    __slots__ = ("pre", "post", "pre_len", "post_len", "buckets")

    def __init__(self, pre, post, buckets=None):
        self.pre = pre
        self.post = post
        self.pre_len = sum(len(buffer) for buffer in pre)
        self.post_len = sum(len(buffer) for buffer in post)
        self.buckets: Optional[Dict[str, int]] = buckets

    def __repr__(self):
        return "WireTemplate(%d+%d buffers, %d+%d bytes)" % (
            len(self.pre),
            len(self.post),
            self.pre_len,
            self.post_len,
        )


def wire_envelope_template(
    doc_time: int,
    head_payloads: List[bytes],
    top_payloads: List[Tuple[str, bytes]],
    cookies_json: str = "[]",
) -> WireTemplate:
    """A full-envelope template from pre-encoded payload bytes.

    Mirrors :func:`assemble_envelope` piece by piece — same wrapper
    strings, same section order, same docCookies omission rule — so
    splicing any actions payload into the slot yields exactly
    ``assemble_envelope(..., user_actions_json).encode()``.
    """
    pre = [
        _WIRE_XML_DECL,
        _WIRE_OPEN,
        b"<docTime>%d</docTime>" % doc_time,
        _WIRE_CONTENT_OPEN,
        _WIRE_HEAD_OPEN,
    ]
    head_bytes = 0
    for index, payload in enumerate(head_payloads, start=1):
        open_b, close_b = _hchild_wrap(index)
        pre.append(open_b)
        pre.append(payload)
        pre.append(close_b)
        head_bytes += len(payload)
    pre.append(_WIRE_HEAD_CLOSE)
    body_bytes = 0
    for name, payload in top_payloads:
        open_b, close_b = _TOP_WRAPS[name]
        pre.append(open_b)
        pre.append(payload)
        pre.append(close_b)
        body_bytes += len(payload)
    pre.append(_WIRE_CONTENT_CLOSE)
    pre.append(WIRE_ACTIONS_OPEN)
    post = [WIRE_ACTIONS_CLOSE]
    buckets = {"head": head_bytes, "body": body_bytes}
    if cookies_json not in ("", "[]"):
        cookies_payload = js_escape(cookies_json).encode("ascii")
        post.append(b"<docCookies><![CDATA[" + cookies_payload + b"]]></docCookies>")
        buckets["docCookies"] = len(cookies_payload)
    post.append(_WIRE_CLOSE)
    return WireTemplate(pre, post, buckets)


def wire_delta_template(doc_time: int, base_time: int, delta_ops_json: str) -> WireTemplate:
    """A delta-envelope template, mirroring :func:`build_envelope`'s
    delta branch (deltas never carry docCookies: the agent replicates
    cookies only on full envelopes)."""
    delta_payload = js_escape(delta_ops_json).encode("ascii")
    pre = [
        _WIRE_XML_DECL,
        _WIRE_OPEN,
        b"<docTime>%d</docTime>" % doc_time,
        b"<baseTime>%d</baseTime>" % base_time,
        b"<delta><![CDATA[" + delta_payload + b"]]></delta>",
        WIRE_ACTIONS_OPEN,
    ]
    post = [WIRE_ACTIONS_CLOSE, _WIRE_CLOSE]
    return WireTemplate(pre, post, {"delta": len(delta_payload)})


def split_wire_template(xml_text: str) -> Optional[WireTemplate]:
    """A template from an already-assembled envelope's text.

    Fallback for envelopes generated without per-section bytes: the
    encoded text is split once around the (empty) userActions payload,
    and both halves are shared as :class:`memoryview` slices — no
    per-receiver copy of either page-sized half.  Returns None when the
    text has no userActions section to splice.
    """
    data = xml_text.encode("utf-8")
    start = data.find(WIRE_ACTIONS_OPEN)
    if start == -1:
        return None
    start += len(WIRE_ACTIONS_OPEN)
    end = data.find(WIRE_ACTIONS_CLOSE, start)
    if end == -1:
        return None
    view = memoryview(data)
    template = WireTemplate([view[:start]], [view[end:]])
    # Without per-section payloads the decomposition is coarse: the
    # whole envelope counts as ``body`` (matching the legacy-str path).
    template.buckets = {"body": template.pre_len + template.post_len}
    return template


def parse_envelope(text: str) -> NewContent:
    """Parse Fig. 4 XML text back into a :class:`NewContent`."""
    if "<newContent>" not in text:
        raise EnvelopeError("not a newContent envelope")
    doc_time_text = _extract(text, "docTime")
    if doc_time_text is None or not doc_time_text.strip().lstrip("-").isdigit():
        raise EnvelopeError("missing or bad docTime")
    doc_time = int(doc_time_text.strip())

    head_children: List[HeadChild] = []
    index = 1
    while True:
        raw = _extract(text, "hChild%d" % index)
        if raw is None:
            break
        record = _decode_payload(raw)
        try:
            head_children.append(
                HeadChild(record["tag"], [tuple(p) for p in record["attrs"]], record["inner"])
            )
        except (KeyError, TypeError) as exc:
            raise EnvelopeError("bad hChild%d payload: %s" % (index, exc))
        index += 1

    top_elements: List[TopElement] = []
    for tag, name in _TOP_NAME_TAGS.items():
        raw = _extract(text, tag)
        if raw is None:
            continue
        record = _decode_payload(raw)
        try:
            top_elements.append(
                TopElement(name, [tuple(p) for p in record["attrs"]], record["inner"])
            )
        except (KeyError, TypeError) as exc:
            raise EnvelopeError("bad %s payload: %s" % (tag, exc))

    actions_raw = _extract(text, "userActions")
    actions_json = js_unescape(_strip_cdata(actions_raw)) if actions_raw else "[]"
    cookies_raw = _extract(text, "docCookies")
    cookies_json = js_unescape(_strip_cdata(cookies_raw)) if cookies_raw else "[]"

    base_time: Optional[int] = None
    delta_ops_json: Optional[str] = None
    delta_raw = _extract(text, "delta")
    if delta_raw is not None:
        base_time_text = _extract(text, "baseTime")
        if base_time_text is None or not base_time_text.strip().lstrip("-").isdigit():
            raise EnvelopeError("delta envelope missing or bad baseTime")
        base_time = int(base_time_text.strip())
        delta_ops_json = js_unescape(_strip_cdata(delta_raw))
        if head_children or top_elements:
            raise EnvelopeError("envelope carries both delta and full content")

    return NewContent(
        doc_time,
        head_children,
        top_elements,
        actions_json,
        cookies_json,
        base_time=base_time,
        delta_ops_json=delta_ops_json,
    )


def _extract(text: str, tag: str) -> Optional[str]:
    open_tag = "<%s>" % tag
    close_tag = "</%s>" % tag
    start = text.find(open_tag)
    if start == -1:
        return None
    start += len(open_tag)
    end = text.find(close_tag, start)
    if end == -1:
        raise EnvelopeError("unterminated <%s>" % (tag,))
    return text[start:end]


def _strip_cdata(raw: str) -> str:
    raw = raw.strip()
    if raw.startswith("<![CDATA[") and raw.endswith("]]>"):
        return raw[len("<![CDATA[") : -len("]]>")]
    return raw


def _decode_payload(raw: str) -> Dict:
    decoded = js_unescape(_strip_cdata(raw))
    try:
        record = json.loads(decoded)
    except ValueError as exc:
        raise EnvelopeError("payload is not valid JSON: %s" % (exc,))
    if not isinstance(record, dict):
        raise EnvelopeError("payload must be an object")
    return record
