"""Cache-mode policies: who gets which objects from the host's cache.

The paper (§4.1.2) is explicit that switching between cache mode and
non-cache mode "is very flexible and fully controlled by RCB-Agent":
different participants can use different modes, different pages sent to
one participant can use different modes, and even different objects on
the same page can use different modes.  These policies make that
flexibility concrete.

A policy answers two questions:

* :meth:`use_cache_for` — should *this object*, on *this page*, going to
  *this participant*, be rewritten to an agent URL (served from the host
  browser's cache) or left pointing at the origin server?
* :meth:`mode_key` — which participants can share one generated
  envelope?  Participants with equal keys receive byte-identical
  content, preserving the paper's generate-once-reuse property within
  each mode group.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

__all__ = [
    "CacheModePolicy",
    "AlwaysCachePolicy",
    "NeverCachePolicy",
    "PerParticipantCachePolicy",
    "ContentTypeCachePolicy",
    "SizeThresholdCachePolicy",
    "coerce_cache_policy",
]


class CacheModePolicy:
    """Base class; concrete policies override the two decision hooks."""

    def use_cache_for(
        self,
        participant_id: str,
        page_url: str,
        object_url: str,
        content_type: str,
        size: int,
    ) -> bool:
        """Decide whether this object is served from the host's cache."""
        raise NotImplementedError

    def mode_key(self, participant_id: str) -> str:
        """Envelope-sharing key; default: all participants share."""
        return "shared"

    @property
    def ever_uses_cache(self) -> bool:
        """False lets the agent skip cache bookkeeping entirely."""
        return True


class AlwaysCachePolicy(CacheModePolicy):
    """Every cached object is served from the host (the paper's cache
    mode; the right default inside a LAN)."""

    def use_cache_for(self, participant_id, page_url, object_url, content_type, size):
        """Decide whether this object is served from the host's cache."""
        return True


class NeverCachePolicy(CacheModePolicy):
    """Participants always fetch objects from the origin servers
    (non-cache mode)."""

    def use_cache_for(self, participant_id, page_url, object_url, content_type, size):
        """Decide whether this object is served from the host's cache."""
        return False

    @property
    def ever_uses_cache(self) -> bool:
        """False lets the agent skip cache bookkeeping entirely."""
        return False


class PerParticipantCachePolicy(CacheModePolicy):
    """Different participants use different modes (§4.1.2): e.g. the
    participant in the same LAN uses cache mode, the remote one does not.
    """

    def __init__(self, cached_participants: Iterable[str], default: bool = False):
        self.cached_participants: Set[str] = set(cached_participants)
        self.default = default

    def enable_for(self, participant_id: str) -> None:
        """Switch a participant to cache mode."""
        self.cached_participants.add(participant_id)

    def disable_for(self, participant_id: str) -> None:
        """Switch a participant to non-cache mode."""
        self.cached_participants.discard(participant_id)

    def use_cache_for(self, participant_id, page_url, object_url, content_type, size):
        """Decide whether this object is served from the host's cache."""
        if participant_id in self.cached_participants:
            return True
        return self.default

    def mode_key(self, participant_id: str) -> str:
        """Envelope-sharing key for this participant's mode group."""
        in_cache_group = (
            participant_id in self.cached_participants or self.default
        )
        return "cache" if in_cache_group else "origin"


class ContentTypeCachePolicy(CacheModePolicy):
    """Per-object mode by content type: e.g. serve stylesheets and
    scripts (render-blocking) from the host, images from the origin."""

    def __init__(self, cached_types: Iterable[str]):
        self.cached_types = {t.lower() for t in cached_types}

    def use_cache_for(self, participant_id, page_url, object_url, content_type, size):
        """Decide whether this object is served from the host's cache."""
        return (content_type or "").split(";")[0].strip().lower() in self.cached_types


class SizeThresholdCachePolicy(CacheModePolicy):
    """Per-object mode by size.

    The interesting WAN configuration: small objects are latency-bound,
    so the nearby host wins; large objects are bandwidth-bound, so the
    origin's fat downlink beats the host's thin uplink.  ``max_bytes``
    caps what the host serves (None = no cap); ``min_bytes`` sets a floor.
    """

    def __init__(self, max_bytes: Optional[int] = None, min_bytes: int = 0):
        if max_bytes is not None and max_bytes < min_bytes:
            raise ValueError("max_bytes below min_bytes")
        self.max_bytes = max_bytes
        self.min_bytes = min_bytes

    def use_cache_for(self, participant_id, page_url, object_url, content_type, size):
        """Decide whether this object is served from the host's cache."""
        if size < self.min_bytes:
            return False
        if self.max_bytes is not None and size > self.max_bytes:
            return False
        return True


def coerce_cache_policy(cache_mode) -> CacheModePolicy:
    """Accept the legacy bool API or a policy instance."""
    if isinstance(cache_mode, CacheModePolicy):
        return cache_mode
    if cache_mode is True:
        return AlwaysCachePolicy()
    if cache_mode is False:
        return NeverCachePolicy()
    raise TypeError("cache_mode must be a bool or a CacheModePolicy, got %r" % (cache_mode,))
