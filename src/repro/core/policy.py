"""Co-browsing moderation policies (paper §3.3).

Each session is hosted and moderated by the co-browsing host.  When a
participant's action arrives, the policy decides whether RCB-Agent
performs it immediately, holds it for the host's explicit confirmation,
or ignores it.  With multiple participants, the policy also decides
*whose* interactions are allowed.  The paper deliberately leaves policy
specification application-dependent; these classes cover the behaviours
it names.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from .actions import UserAction

__all__ = [
    "ModerationPolicy",
    "OpenPolicy",
    "ObserveOnlyPolicy",
    "ConfirmPolicy",
    "AllowListPolicy",
    "PendingAction",
]


class PendingAction:
    """An action held for host confirmation."""

    __slots__ = ("participant_id", "action")

    def __init__(self, participant_id: str, action: UserAction):
        self.participant_id = participant_id
        self.action = action

    def __repr__(self):
        return "PendingAction(%s, %r)" % (self.participant_id, self.action)


class ModerationPolicy:
    """Decides the fate of each incoming participant action."""

    #: Decision constants.
    APPLY = "apply"
    HOLD = "hold"
    DROP = "drop"

    def decide(self, participant_id: str, action: UserAction) -> str:
        """Return APPLY, HOLD, or DROP for this action."""
        raise NotImplementedError


class OpenPolicy(ModerationPolicy):
    """Every participant's actions are applied immediately — the typical
    co-shopping configuration where anyone may navigate."""

    def decide(self, participant_id: str, action: UserAction) -> str:
        """Return APPLY, HOLD, or DROP for this action."""
        return self.APPLY


class ObserveOnlyPolicy(ModerationPolicy):
    """Participants watch; their actions are dropped (online-training
    style sessions where the instructor presides)."""

    def decide(self, participant_id: str, action: UserAction) -> str:
        """Return APPLY, HOLD, or DROP for this action."""
        return self.DROP


class ConfirmPolicy(ModerationPolicy):
    """Actions are held until the host inspects and confirms them."""

    def __init__(self, auto_apply_kinds: Tuple[str, ...] = ("mousemove", "scroll")):
        #: Pointer/scroll mirroring is cosmetic and never needs approval.
        self.auto_apply_kinds = frozenset(auto_apply_kinds)

    def decide(self, participant_id: str, action: UserAction) -> str:
        """Return APPLY, HOLD, or DROP for this action."""
        if action.kind in self.auto_apply_kinds:
            return self.APPLY
        return self.HOLD


class AllowListPolicy(ModerationPolicy):
    """Only listed participants may interact; others observe.

    ``interaction_kinds`` optionally restricts which action kinds are
    allowed even for listed participants (e.g. form filling but not
    clicking through to new pages).
    """

    def __init__(
        self,
        allowed_participants: Optional[Set[str]] = None,
        interaction_kinds: Optional[Set[str]] = None,
    ):
        self.allowed_participants = set(allowed_participants or set())
        self.interaction_kinds = (
            set(interaction_kinds) if interaction_kinds is not None else None
        )

    def allow(self, participant_id: str) -> None:
        """Grant a participant interaction rights."""
        self.allowed_participants.add(participant_id)

    def revoke(self, participant_id: str) -> None:
        """Withdraw a participant's interaction rights."""
        self.allowed_participants.discard(participant_id)

    def decide(self, participant_id: str, action: UserAction) -> str:
        """Return APPLY, HOLD, or DROP for this action."""
        if participant_id not in self.allowed_participants:
            return self.DROP
        if self.interaction_kinds is not None and action.kind not in self.interaction_kinds:
            return self.DROP
        return self.APPLY
