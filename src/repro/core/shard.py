"""Sharded multi-agent serving: a session directory over a pool of hosts.

One :class:`~repro.core.agent.RCBAgent` is the throughput ceiling of
everything before this module: every poll, diff, and serve funnels
through a single host loop, so the fleet cannot grow past what one
agent answers per tick.  This module converts the single-host serving
path into a **pool of hosts** behind a consistent-hash directory:

* :class:`SessionDirectory` — maps member ids to agent instances on a
  virtual-node hash ring with the *bounded-load* refinement (no
  instance holds more than ``ceil(load_factor * K / N)`` keys), so
  placement is sticky, uniform, and moves only a minimal key range on
  membership change:

  - adding one instance migrates at most ``ceil(K/N)`` keys, and every
    migrated key lands on the new instance (its plain ring successor);
  - removing one instance migrates exactly that instance's keys and
    nothing else.

* :class:`AgentPool` — runs one serving instance per shard inside the
  sim kernel.  Each shard is a :class:`~repro.core.relay.RelayAgent`
  polling the root agent over the normal timestamp protocol and
  re-serving the full protocol downstream, so every member's
  acknowledged ``doc_time`` means the same thing on every shard and the
  snapshot ring keeps answering deltas per shard.  Joins route through
  the directory; membership changes rebalance by re-attaching members
  to their new shard **resuming from their acknowledged doc_time** (no
  renavigation, so the new shard can answer with a delta instead of a
  full resync).

* **Host-death failover** (:meth:`AgentPool.fail_shard`) — the
  designated standby (the dead shard's ring successor) is promoted to
  acting host for the dead shard's whole key range in one bulk
  handover; it already holds the session content and a live snapshot
  ring, so recovered members resume from where they were.  The
  promotion lands in the flight recorder as a ``shard.promote`` event
  plus one ``shard.migrate`` per moved member.

``shards=1`` keeps the seed serving path: the directory maps every
member to the root agent itself and joins construct the exact snippet
:meth:`~repro.core.session.CoBrowsingSession.join` would, so
single-shard sessions stay byte-identical on the wire.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from math import ceil
from typing import Dict, List, Optional, Tuple

from ..browser.browser import Browser
from ..http import RequestFailed
from ..net import LAN_PROFILE, Host
from ..net.socket import NetworkError
from ..obs import SHARD_MIGRATE, SHARD_PROMOTE
from .agent import AGENT_DEFAULT_PORT, RCBAgent
from .relay import RelayAgent
from .session import SessionError
from .snippet import AjaxSnippet

__all__ = ["ROOT_SHARD", "AgentPool", "SessionDirectory", "render_shard_table"]

#: Directory instance id of the root agent (the ``shards=1`` serving
#: path, and the shard namespace's reserved name).
ROOT_SHARD = "root"


class SessionDirectory:
    """Consistent-hash placement of member keys onto agent instances.

    A classic virtual-node ring (``replicas`` vnodes per instance,
    positions from a seeded keyed hash so layouts are reproducible
    run-to-run) with consistent hashing *with bounded loads*: a key
    whose ring successor is already at the capacity cap spills to the
    next instance along the ring, so no instance ever holds more than
    ``ceil(load_factor * K / N)`` of the ``K`` assigned keys.
    Assignments are sticky — a placed key stays put until its instance
    leaves — which is what makes rebalancing observable and minimal.
    """

    def __init__(self, replicas: int = 64, load_factor: float = 1.25, seed: int = 0):
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        if load_factor < 1.0:
            raise ValueError("load_factor must be at least 1.0")
        self.replicas = replicas
        self.load_factor = load_factor
        self.seed = seed
        #: Sorted ``(vnode_hash, instance_id)`` ring.
        self._ring: List[Tuple[int, str]] = []
        #: Sticky ``key -> instance`` placements (may briefly point at a
        #: removed instance mid-``remove_instance``; queries re-place).
        self.assignments: Dict[str, str] = {}
        #: Live instances and their current assigned-key counts.
        self._counts: Dict[str, int] = {}

    def _hash(self, text: str) -> int:
        digest = hashlib.blake2b(
            ("%d:%s" % (self.seed, text)).encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    # -- membership --------------------------------------------------------------------

    def instances(self) -> List[str]:
        """Live instance ids, sorted."""
        return sorted(self._counts)

    def capacity(self, extra: int = 0) -> int:
        """The bounded-load cap per instance for the current population
        (``extra`` counts keys about to be placed)."""
        live = len(self._counts)
        if live == 0:
            return 0
        return max(1, ceil(self.load_factor * (len(self.assignments) + extra) / live))

    def add_instance(self, instance_id: str) -> Dict[str, Tuple[str, str]]:
        """Register an instance; returns ``{key: (old, new)}`` migrations.

        Only keys whose *plain* ring successor is the new instance are
        candidates (the minimal range consistent hashing hands over),
        and at most ``ceil(K/N)`` of them move — lowest ring positions
        first, so the choice is deterministic.
        """
        if instance_id in self._counts:
            raise ValueError("instance %r already registered" % (instance_id,))
        for replica in range(self.replicas):
            self._ring.append(
                (self._hash("%s#%d" % (instance_id, replica)), instance_id)
            )
        self._ring.sort()
        self._counts[instance_id] = 0
        if not self.assignments:
            return {}
        candidates = [
            key for key in self.assignments if self._plain_owner(key) == instance_id
        ]
        candidates.sort(key=self._hash)
        quota = ceil(len(self.assignments) / len(self._counts))
        migrations: Dict[str, Tuple[str, str]] = {}
        for key in candidates[:quota]:
            old = self.assignments[key]
            if old == instance_id:
                continue
            self._assign(key, instance_id)
            migrations[key] = (old, instance_id)
        return migrations

    def remove_instance(
        self, instance_id: str, promote_to: Optional[str] = None
    ) -> Dict[str, Tuple[str, str]]:
        """Deregister an instance; returns ``{key: (old, new)}`` migrations.

        Only the removed instance's keys move.  With ``promote_to`` (the
        failover handover) every orphaned key bulk-reassigns to the
        promoted instance in one step; without it each orphan re-places
        along the ring (graceful drain).
        """
        if instance_id not in self._counts:
            raise KeyError("no instance %r in the directory" % (instance_id,))
        if promote_to is not None and promote_to not in self._counts:
            raise KeyError("promotion target %r is not live" % (promote_to,))
        del self._counts[instance_id]
        self._ring = [entry for entry in self._ring if entry[1] != instance_id]
        orphans = sorted(
            key for key, owner in self.assignments.items() if owner == instance_id
        )
        migrations: Dict[str, Tuple[str, str]] = {}
        for key in orphans:
            if promote_to is not None:
                self._assign(key, promote_to)
                migrations[key] = (instance_id, promote_to)
            elif self._ring:
                migrations[key] = (instance_id, self.place(key))
            else:
                del self.assignments[key]
        return migrations

    def successor(self, instance_id: str) -> Optional[str]:
        """The next distinct live instance along the ring — the
        designated standby a host-death failover promotes."""
        if instance_id not in self._counts:
            raise KeyError("no instance %r in the directory" % (instance_id,))
        if len(self._counts) < 2:
            return None
        index = bisect_left(self._ring, (self._hash("%s#0" % instance_id), ""))
        for step in range(len(self._ring)):
            candidate = self._ring[(index + step) % len(self._ring)][1]
            if candidate != instance_id:
                return candidate
        return None

    # -- placement ---------------------------------------------------------------------

    def place(self, key: str) -> str:
        """The instance serving ``key`` (sticky; places on first use)."""
        owner = self.assignments.get(key)
        if owner is not None and owner in self._counts:
            return owner
        if not self._ring:
            raise KeyError("no live instances in the directory")
        cap = self.capacity(extra=0 if key in self.assignments else 1)
        index = bisect_left(self._ring, (self._hash(key), ""))
        chosen: Optional[str] = None
        seen = set()
        for step in range(len(self._ring)):
            candidate = self._ring[(index + step) % len(self._ring)][1]
            if candidate in seen:
                continue
            seen.add(candidate)
            if self._counts[candidate] < cap:
                chosen = candidate
                break
        if chosen is None:
            # Every instance at the cap (tiny rings, rounding): fall
            # back to the plain successor so placement always succeeds.
            chosen = self._ring[index % len(self._ring)][1]
        self._assign(key, chosen)
        return chosen

    def release(self, key: str) -> None:
        """Forget a key's placement (the member left)."""
        owner = self.assignments.pop(key, None)
        if owner is not None and owner in self._counts:
            self._counts[owner] -= 1

    def load(self) -> Dict[str, int]:
        """Assigned-key count per live instance."""
        return dict(self._counts)

    def _plain_owner(self, key: str) -> str:
        """Ring successor of ``key`` with no bounded-load skipping."""
        index = bisect_left(self._ring, (self._hash(key), ""))
        return self._ring[index % len(self._ring)][1]

    def _assign(self, key: str, instance_id: str) -> None:
        old = self.assignments.get(key)
        if old == instance_id:
            return
        if old is not None and old in self._counts:
            self._counts[old] -= 1
        self.assignments[key] = instance_id
        self._counts[instance_id] += 1

    def __len__(self) -> int:
        return len(self.assignments)

    def __repr__(self):
        return "SessionDirectory(%d keys across %d instances)" % (
            len(self.assignments),
            len(self._counts),
        )


class AgentPool:
    """A pool of serving instances behind a :class:`SessionDirectory`.

    Wraps an existing :class:`~repro.core.session.CoBrowsingSession`:
    the session's root agent stays the moderation/content authority,
    and ``shards`` serving instances (relays re-serving the full
    protocol) fan its content out to directory-routed members.

        pool = AgentPool(session, shards=8)
        run(pool.start())
        snippet = run(pool.join_browser(member_browser))
        pool.fail_shard("shard-3")   # failure injection

    ``shards=1`` adds no instances at all: the directory maps every
    member to the root agent and :meth:`join_browser` builds the exact
    snippet a plain ``session.join`` would — same URL, same request
    bytes on the wire.
    """

    def __init__(
        self,
        session,
        shards: int = 4,
        replicas: int = 64,
        load_factor: float = 1.25,
        seed: int = 0,
        relay_port: int = AGENT_DEFAULT_PORT,
        segment: str = "shards",
    ):
        if shards < 1:
            raise SessionError("shards must be at least 1")
        self.session = session
        self.sim = session.sim
        self.shards = shards
        self.relay_port = relay_port
        self.segment = segment
        self.directory = SessionDirectory(
            replicas=replicas, load_factor=load_factor, seed=seed
        )
        #: Live shard instances (empty in the single-shard passthrough).
        self.relays: Dict[str, RelayAgent] = {}
        #: Real (browser-backed) member channels this pool manages.
        self.snippets: Dict[str, AjaxSnippet] = {}
        self.promotions = 0
        self.migrations = 0
        self._started = False
        self._next_index = 0
        session.pool = self
        fleet = getattr(session, "fleet", None)
        if fleet is not None and getattr(fleet, "shard_of", None) is None:
            fleet.shard_of = self.shard_of
        if shards == 1:
            self.directory.add_instance(ROOT_SHARD)
            self._started = True

    # -- lifecycle ---------------------------------------------------------------------

    def start(self):
        """Generator process: bring up one host + relay per shard and
        register each with the directory.  No-op for ``shards=1``."""
        if self.shards == 1:
            return
        if self._started:
            raise SessionError("pool already started")
        self._started = True
        for _ in range(self.shards):
            yield from self.add_shard()

    def add_shard(self) -> "RelayAgent":
        """Generator: one more serving instance joins the pool; existing
        members rebalance onto it (at most ``ceil(K/N)`` move)."""
        if self.shards == 1:
            raise SessionError("a single-shard pool serves from the root agent")
        agent = self.session.agent
        shard_id = "shard-%d" % self._next_index
        self._next_index += 1
        network = self.session.host_browser.host.network
        shard_host = Host(network, shard_id, LAN_PROFILE, segment=self.segment)
        shard_browser = Browser(shard_host, name=shard_id)
        relay = RelayAgent(
            upstream_url=agent.url,
            port=self.relay_port,
            secret=agent.secret,
            relay_id=shard_id,
            enable_delta=agent.enable_delta,
            delta_history=agent.delta_history,
            enable_batched_serve=agent.enable_batched_serve,
            transport=agent.transport.mode,
            poll_backoff=self.session._derive_backoff(shard_id),
            metrics=self.session.metrics,
            tracer=self.session.tracer,
            events=self.session.events,
            attribution=self.session.attribution,
            telemetry=self.session._member_telemetry(shard_id),
        )
        relay.install(shard_browser)
        try:
            yield from relay.connect_upstream()
        except BaseException:
            relay.uninstall()
            raise
        relay.set_fallbacks([agent.url])
        self.relays[shard_id] = relay
        migrations = self.directory.add_instance(shard_id)
        self._apply_migrations(migrations, reason="rebalance")
        self._update_gauges()
        return relay

    def remove_shard(self, shard_id: str) -> "RelayAgent":
        """Gracefully drain one shard: its members re-place along the
        ring (minimal movement) before the instance shuts down."""
        relay = self.relays.get(shard_id)
        if relay is None:
            raise SessionError("no shard %r in this pool" % (shard_id,))
        if len(self.relays) < 2:
            raise SessionError("cannot remove the last shard")
        del self.relays[shard_id]
        migrations = self.directory.remove_instance(shard_id)
        self._apply_migrations(migrations, reason="rebalance")
        self._retire(relay)
        return relay

    def fail_shard(self, shard_id: str) -> "RelayAgent":
        """Kill a shard host mid-run (failure injection) and promote the
        designated standby.

        The standby — the dead shard's ring successor — is already a
        live serving instance holding the session content and its own
        snapshot ring, so the directory hands it the dead shard's whole
        key range in one bulk promotion and recovered members resume
        from their acknowledged ``doc_time`` (delta resume, no full
        resync).  Emits one ``shard.promote`` plus a ``shard.migrate``
        per recovered member.
        """
        relay = self.relays.get(shard_id)
        if relay is None:
            raise SessionError("no shard %r in this pool" % (shard_id,))
        standby = self.directory.successor(shard_id)
        if standby is None:
            raise SessionError("cannot fail the last shard")
        del self.relays[shard_id]
        migrations = self.directory.remove_instance(shard_id, promote_to=standby)
        self.promotions += 1
        self.session.metrics.counter("shard_promotions").inc()
        if self.session.events is not None:
            self.session.events.emit(
                SHARD_PROMOTE,
                self.sim.now,
                node=standby,
                dead=shard_id,
                members=len(migrations),
            )
        self._apply_migrations(migrations, reason="failover")
        self._retire(relay)
        return relay

    def _retire(self, relay: RelayAgent) -> None:
        self.session.agent.disconnect(relay.relay_id)
        relay.uninstall()
        self.session.metrics.gauge("shard_members", node=relay.relay_id).set(0)
        self._update_gauges()

    def close(self) -> None:
        """Disconnect every pool-managed member and shut every shard."""
        for member_id, snippet in list(self.snippets.items()):
            if snippet.connected:
                snippet.disconnect()
            self.session.participants.pop(member_id, None)
        self.snippets.clear()
        for relay in self.relays.values():
            relay.uninstall()
        self.relays.clear()

    # -- directory-routed membership ---------------------------------------------------

    def agent_of(self, shard_id: str) -> RCBAgent:
        """The serving instance behind a directory id."""
        if shard_id == ROOT_SHARD:
            return self.session.agent
        return self.relays[shard_id]

    def agent_for(self, member_id: str) -> RCBAgent:
        """The instance serving ``member_id`` (placing it on first use).
        Members re-query after a membership change: the directory's
        sticky assignment reflects any migration or promotion."""
        return self.agent_of(self.directory.place(member_id))

    def shard_of(self, member_id: str) -> Optional[str]:
        """Directory id serving a member (None: not a pool member) —
        the fleet view's per-shard rollup resolver."""
        return self.directory.assignments.get(member_id)

    def join_browser(
        self,
        participant_browser: Browser,
        participant_id: Optional[str] = None,
        browser_type: str = "firefox",
        fetch_objects: bool = True,
    ):
        """Generator: a real participant joins through the directory.

        Mirrors :meth:`~repro.core.session.CoBrowsingSession.join`
        byte-for-byte except for the target URL, which the directory
        chooses — so ``shards=1`` is wire-identical to a plain join.
        """
        member_id = participant_id or participant_browser.name
        if member_id in self.session.participants or member_id in self.snippets:
            raise SessionError("participant id %r already joined" % (member_id,))
        target = self.agent_for(member_id)
        snippet = AjaxSnippet(
            participant_browser,
            target.url,
            participant_id=member_id,
            secret=target.secret,
            browser_type=browser_type,
            fetch_objects=fetch_objects,
            backoff=self.session._derive_backoff(member_id),
            transport=self.session.agent.transport.mode,
            metrics=self.session.metrics,
            tracer=self.session.tracer,
            events=self.session.events,
            telemetry=self.session._member_telemetry(member_id),
        )
        yield from snippet.connect()
        self.snippets[member_id] = snippet
        self.session.participants[member_id] = snippet
        self.session._update_membership_gauge()
        self._update_gauges()
        return snippet

    def leave(self, member_id: str) -> None:
        """A pool-managed member leaves: channel down, placement freed."""
        snippet = self.snippets.pop(member_id, None)
        shard = self.directory.assignments.get(member_id)
        if snippet is not None:
            snippet.disconnect()
            self.session.participants.pop(member_id, None)
            self.session._update_membership_gauge()
            if shard is not None:
                self.agent_of(shard).disconnect(member_id)
        self.directory.release(member_id)
        self._update_gauges()

    # -- migration ---------------------------------------------------------------------

    def _apply_migrations(
        self, migrations: Dict[str, Tuple[str, str]], reason: str
    ) -> None:
        if not migrations:
            return
        self.migrations += len(migrations)
        self.session.metrics.counter("shard_migrations").inc(len(migrations))
        for key in sorted(migrations):
            src, dst = migrations[key]
            if self.session.events is not None:
                self.session.events.emit(
                    SHARD_MIGRATE,
                    self.sim.now,
                    node=key,
                    src=src,
                    dst=dst,
                    reason=reason,
                )
            snippet = self.snippets.get(key)
            if snippet is not None:
                self.sim.process(self._rehome(key, snippet, dst))

    def _rehome(self, member_id: str, old: AjaxSnippet, shard_id: str):
        """Generator: re-attach a live member to its new shard, resuming
        from the acknowledged ``doc_time`` — the document is preserved,
        so the new shard can answer with a delta, not a full resync."""
        if old.connected:
            old.disconnect()
        target = self.agent_of(shard_id)
        fresh = AjaxSnippet(
            old.browser,
            target.url,
            participant_id=member_id,
            secret=target.secret,
            poll_interval=old.poll_interval,
            browser_type=old.browser_type,
            fetch_objects=old.fetch_objects,
            backoff=old.backoff,
            transport=old.transport_mode,
            metrics=self.session.metrics,
            tracer=self.session.tracer,
            events=self.session.events,
            telemetry=old.telemetry,
        )
        fresh.last_doc_time = old.last_doc_time
        self.snippets[member_id] = fresh
        self.session.participants[member_id] = fresh
        for attempt in range(1, 4):
            try:
                yield from fresh.attach(old.poll_interval)
                return
            except (RequestFailed, NetworkError):
                yield self.sim.timeout(0.5 * attempt)
        # Target still unreachable after retries: leave the channel
        # down; the member re-places on its next explicit lookup.

    # -- accounting --------------------------------------------------------------------

    def member_times(self) -> Dict[str, int]:
        return self.session.member_times()

    def wait_until_synced(self, timeout: float = 60.0):
        waited = yield from self.session.wait_until_synced(timeout=timeout)
        return waited

    def summary(self) -> Dict[str, object]:
        """Per-shard accounting for ``repro shards`` and tests."""
        load = self.directory.load()
        per_shard: Dict[str, Dict[str, object]] = {}
        for shard_id in sorted(load):
            agent = self.agent_of(shard_id)
            per_shard[shard_id] = {
                "members": load[shard_id],
                "polls": agent.stats["polls"],
                "doc_time": agent.doc_time,
                "connected": shard_id == ROOT_SHARD or agent.connected,
            }
        return {
            "shards": len(load),
            "members": len(self.directory.assignments),
            "promotions": self.promotions,
            "migrations": self.migrations,
            "per_shard": per_shard,
        }

    def _update_gauges(self) -> None:
        for shard_id, count in self.directory.load().items():
            self.session.metrics.gauge("shard_members", node=shard_id).set(count)

    def __repr__(self):
        return "AgentPool(%d shards, %d members)" % (
            len(self.directory.load()),
            len(self.directory.assignments),
        )


def render_shard_table(pool: AgentPool, title: str = "Shard pool") -> str:
    """The ``repro shards`` table: one row per serving instance."""
    summary = pool.summary()
    lines = [
        "%s — %d shards, %d members, %d promotions, %d migrations"
        % (
            title,
            summary["shards"],
            summary["members"],
            summary["promotions"],
            summary["migrations"],
        ),
        "%-12s %8s %10s %10s %-9s" % ("shard", "members", "polls", "doc_time", "state"),
    ]
    for shard_id, row in summary["per_shard"].items():
        lines.append(
            "%-12s %8d %10d %10d %-9s"
            % (
                shard_id,
                row["members"],
                row["polls"],
                row["doc_time"],
                "up" if row["connected"] else "down",
            )
        )
    return "\n".join(lines)
