"""Request authentication: session secrets and HMAC request signing.

The paper's security design (§3.4): RCB-Agent generates a one-time
session secret, shares it with participants out of band, and every
request Ajax-Snippet sends carries an HMAC computed over the request and
appended as an extra parameter of the request-URI.  The agent recomputes
the HMAC (discarding the HMAC parameter itself) and compares.  Responses
are deliberately not authenticated (the paper defers that as future
work), and this reproduction matches that scope.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import random
from typing import Optional, Tuple

__all__ = [
    "Authenticator",
    "generate_session_secret",
    "sign_request_target",
    "verify_request_target",
    "compute_hmac",
    "AuthError",
    "HMAC_PARAM",
]

#: The request-URI parameter carrying the signature.
HMAC_PARAM = "rcbmac"

_SECRET_ALPHABET = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


class AuthError(Exception):
    """Signature missing or invalid."""


def generate_session_secret(length: int = 20, rng: Optional[random.Random] = None) -> str:
    """A random one-time session secret (shared out of band, §3.4)."""
    if length < 8:
        raise ValueError("secret length below 8 is too weak")
    rng = rng or random.Random()
    return "".join(rng.choice(_SECRET_ALPHABET) for _ in range(length))


def compute_hmac(secret: str, method: str, target: str, body: bytes = b"") -> str:
    """HMAC-SHA256 over the canonical request representation."""
    body_digest = hashlib.sha256(body).hexdigest()
    canonical = "%s\n%s\n%s" % (method, target, body_digest)
    mac = _hmac.new(secret.encode("utf-8"), canonical.encode("utf-8"), hashlib.sha256)
    return mac.hexdigest()


def sign_request_target(secret: str, method: str, target: str, body: bytes = b"") -> str:
    """Return ``target`` with the HMAC appended as a URI parameter.

    The signature covers the strip-normalized target (empty query parts
    removed), matching what :func:`verify_request_target` reconstructs.
    """
    normalized, _existing = strip_hmac_param(target)
    signature = compute_hmac(secret, method, normalized, body)
    separator = "&" if "?" in target else "?"
    return "%s%s%s=%s" % (target, separator, HMAC_PARAM, signature)


def strip_hmac_param(target: str) -> Tuple[str, Optional[str]]:
    """Split a signed target into (unsigned target, signature or None)."""
    if "?" not in target:
        return target, None
    path, query = target.split("?", 1)
    kept = []
    signature = None
    for pair in query.split("&"):
        if pair.startswith(HMAC_PARAM + "="):
            signature = pair[len(HMAC_PARAM) + 1 :]
        elif pair:
            kept.append(pair)
    unsigned = path if not kept else path + "?" + "&".join(kept)
    return unsigned, signature


def verify_request_target(secret: str, method: str, target: str, body: bytes = b"") -> str:
    """Verify a signed target; returns the unsigned target.

    Raises :class:`AuthError` on a missing or mismatched signature.  The
    comparison is constant-time.
    """
    unsigned, signature = strip_hmac_param(target)
    if signature is None:
        raise AuthError("request carries no %s parameter" % (HMAC_PARAM,))
    expected = compute_hmac(secret, method, unsigned, body)
    if not _hmac.compare_digest(expected, signature):
        raise AuthError("HMAC mismatch for %s %s" % (method, unsigned))
    return unsigned


class Authenticator:
    """One endpoint's view of the session secret.

    Bundles the ``secret is None`` (trusted-LAN) and HMAC-signing
    configurations behind one object so every protocol role — agent,
    snippet, and relay, which both *signs* upstream requests and
    *verifies* downstream ones — shares the same code path.
    """

    __slots__ = ("secret",)

    def __init__(self, secret: Optional[str]):
        self.secret = secret

    @property
    def enabled(self) -> bool:
        """Whether requests are authenticated at all."""
        return self.secret is not None

    def sign(self, method: str, target: str, body: bytes = b"") -> str:
        """Sign an outgoing request target (no-op when auth is off)."""
        if self.secret is None:
            return target
        return sign_request_target(self.secret, method, target, body)

    def verify(self, method: str, target: str, body: bytes = b"") -> bool:
        """Whether an incoming request's signature checks out.

        Always True when authentication is disabled.
        """
        if self.secret is None:
            return True
        try:
            verify_request_target(self.secret, method, target, body)
        except AuthError:
            return False
        return True

    def __repr__(self):
        return "Authenticator(%s)" % ("hmac" if self.enabled else "open")
