"""Co-browsing session orchestration.

Ties together a host browser running :class:`~repro.core.agent.RCBAgent`
and any number of participant browsers running
:class:`~repro.core.snippet.AjaxSnippet`.  This is the high-level public
API most examples and benchmarks drive:

    session = CoBrowsingSession(host_browser, port=3000)
    snippet = run(session.join(participant_browser))
    run(session.host_navigate("http://site.com/"))
    run(session.wait_until_synced())

Topologies are free-form (paper §3.3): a browser may host one session
and join others; participants may join or leave at any time.

Two distribution modes:

* **Flat** (the paper's): every participant polls the host agent
  directly.  Host load is O(N).
* **Fan-out tree** (:meth:`CoBrowsingSession.fanout_tree`): every
  joining participant runs a :class:`~repro.core.relay.RelayAgent` and
  is attached to the least-loaded node with a free child slot, so the
  host serves at most ``branching`` direct children and content cascades
  down the tiers.  Host load is O(branching); relay deaths heal by
  re-attaching orphans to their grandparent (root as last resort).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Union

from ..browser.browser import Browser
from ..obs import (
    RELAY_DEATH,
    ClientTelemetry,
    EventBus,
    FleetView,
    Histogram,
    MetricsRegistry,
    Tracer,
)
from .agent import AGENT_DEFAULT_PORT, RCBAgent
from .policy import ModerationPolicy
from .relay import RelayAgent
from .snippet import AjaxSnippet, BackoffPolicy
from .transport import AdaptiveTransportController

__all__ = ["CoBrowsingSession", "SessionError"]

#: Tree-node id of the host agent (never a participant id: those default
#: to browser host names, which are non-empty).
_ROOT = ""


class SessionError(Exception):
    """Session-level misuse (joining twice, syncing with no page...)."""


class _TreeNode:
    """Fan-out bookkeeping for one node (the root agent or a relay)."""

    __slots__ = ("node_id", "url", "parent", "children", "depth", "order")

    def __init__(self, node_id: str, url: str, parent: Optional[str], depth: int, order: int):
        self.node_id = node_id
        self.url = url
        self.parent = parent
        self.children: List[str] = []
        self.depth = depth
        self.order = order

    def __repr__(self):
        return "_TreeNode(%r, depth=%d, %d children)" % (
            self.node_id,
            self.depth,
            len(self.children),
        )


class CoBrowsingSession:
    """One host-moderated co-browsing session."""

    def __init__(
        self,
        host_browser: Browser,
        port: int = AGENT_DEFAULT_PORT,
        cache_mode: bool = True,
        policy: Optional[ModerationPolicy] = None,
        secret: Optional[str] = None,
        poll_interval: float = 1.0,
        agent: Optional[RCBAgent] = None,
        enable_delta: bool = True,
        enable_batched_serve: bool = True,
        transport=None,
        backoff: Optional[BackoffPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        events: Optional[EventBus] = None,
        attribution=None,
        telemetry=None,
    ):
        self.host_browser = host_browser
        self.sim = host_browser.sim
        # ``telemetry`` opts the whole session into the fleet telemetry
        # plane: a FleetView instance, or any truthy value for one with
        # defaults.  Off (None/False) keeps every poll body
        # byte-identical to the seed wire format.
        if telemetry is not None and not isinstance(telemetry, FleetView):
            telemetry = FleetView() if telemetry else None
        if agent is None:
            agent = RCBAgent(
                port=port,
                cache_mode=cache_mode,
                policy=policy,
                secret=secret,
                poll_interval=poll_interval,
                enable_delta=enable_delta,
                enable_batched_serve=enable_batched_serve,
                transport=transport,
                metrics=metrics,
                tracer=tracer,
                metrics_node=host_browser.name,
                events=events,
                attribution=attribution,
                telemetry=telemetry,
            )
        else:
            if tracer is not None and agent.tracer is None:
                agent.tracer = tracer
            if events is not None and agent.events is None:
                agent.events = events
            if attribution is not None and agent.attribution is None:
                agent.attribution = attribution
            if telemetry is not None and agent.telemetry is None:
                agent.telemetry = telemetry
        self.agent = agent
        #: The session-wide registry/tracer/event-bus/byte-sink every
        #: member publishes into.
        self.metrics = self.agent.metrics
        self.tracer = self.agent.tracer
        self.events = self.agent.events
        self.attribution = self.agent.attribution
        if self.attribution is not None and self.attribution.tier_of is None:
            # Wire the tier resolver so rollups can group members by
            # relay-tree depth.
            self.attribution.tier_of = self.member_tier
        #: Host-side fleet view (None unless telemetry was requested).
        self.fleet = self.agent.telemetry
        if self.fleet is not None and getattr(self.fleet, "tier_of", None) is None:
            self.fleet.tier_of = self.member_tier
        if self.events is not None:
            # Satellite: surface ring-buffer eviction counts as gauges.
            self.events.attach_registry(self.metrics)
        self.agent.install(host_browser)
        self.participants: Dict[str, AjaxSnippet] = {}
        #: Fan-out mode: participant id -> its RelayAgent.
        self.relays: Dict[str, RelayAgent] = {}
        #: Poll-retry pacing handed to every member (each gets its own
        #: RNG stream via :meth:`BackoffPolicy.derive`).  None keeps the
        #: original constant-delay retry.
        self.backoff = backoff

        #: The :class:`~repro.core.shard.AgentPool` serving this session
        #: (the pool registers itself; None outside sharded serving).
        self.pool = None

        self.branching: Optional[int] = None
        self._relay_port = AGENT_DEFAULT_PORT
        self._reattach_backoff: Optional[BackoffPolicy] = None
        self._tree_rng: Optional[random.Random] = None
        self._nodes: Dict[str, _TreeNode] = {}
        self._join_order = 0

    # -- membership -----------------------------------------------------------------

    def fanout_tree(
        self,
        branching: int = 4,
        relay_port: int = AGENT_DEFAULT_PORT,
        backoff: Optional[BackoffPolicy] = None,
        seed: Optional[int] = None,
    ) -> None:
        """Switch joins to cascaded-relay mode.

        Every subsequent :meth:`join` installs a
        :class:`~repro.core.relay.RelayAgent` on the participant's
        browser and attaches it to the least-loaded node with a free
        slot, so no node — the host included — ever serves more than
        ``branching`` direct children.  ``backoff`` paces orphan
        re-attachment after a relay death (default: exponential from
        0.5 s to 8 s with ±25% jitter).  ``seed`` makes attach-point
        tie-breaking draw from a fixed RNG stream instead of join
        order, so scale benchmarks get reproducible-but-unbiased tree
        shapes; None keeps the earliest-joined rule.
        """
        if branching < 1:
            raise SessionError("branching must be at least 1")
        if self.branching is not None:
            raise SessionError("fanout_tree() was already enabled")
        self.branching = branching
        self._tree_rng = random.Random(seed) if seed is not None else None
        self._relay_port = relay_port
        self._reattach_backoff = backoff or BackoffPolicy(
            base=0.5, cap=8.0, jitter=0.25, multiplier=2.0
        )
        self._nodes[_ROOT] = _TreeNode(_ROOT, self.agent.url, None, 0, 0)
        self._join_order = 1

    def join(
        self,
        participant_browser: Browser,
        participant_id: Optional[str] = None,
        browser_type: str = "firefox",
        fetch_objects: bool = True,
    ):
        """A participant joins: generator process returning its snippet
        (flat mode) or its :class:`RelayAgent` (fan-out mode).

        The participant only needs a regular JavaScript-enabled browser;
        everything it runs arrives with the initial page.
        """
        if not participant_browser.javascript_enabled:
            raise SessionError(
                "participant browsers must have JavaScript enabled (paper §1)"
            )
        if self.branching is not None:
            relay = yield from self._join_fanout(
                participant_browser, participant_id, browser_type, fetch_objects
            )
            return relay
        snippet = AjaxSnippet(
            participant_browser,
            self.agent.url,
            participant_id=participant_id,
            secret=self.agent.secret,
            browser_type=browser_type,
            fetch_objects=fetch_objects,
            backoff=self._derive_backoff(participant_id or participant_browser.name),
            transport=self.agent.transport.mode,
            metrics=self.metrics,
            tracer=self.tracer,
            events=self.events,
            telemetry=self._member_telemetry(
                participant_id or participant_browser.name
            ),
        )
        yield from snippet.connect()
        if snippet.participant_id in self.participants:
            snippet.disconnect()
            raise SessionError("participant id %r already joined" % snippet.participant_id)
        self.participants[snippet.participant_id] = snippet
        self._update_membership_gauge()
        return snippet

    def _derive_backoff(self, member_id: str) -> Optional[BackoffPolicy]:
        if self.backoff is None:
            return None
        return self.backoff.derive(member_id)

    def _member_telemetry(self, member_id: str):
        """A per-member digest reporter, or None when the fleet
        telemetry plane is off (keeping the wire byte-identical)."""
        if self.fleet is None:
            return None
        return ClientTelemetry(
            member_id,
            byte_cap=self.fleet.byte_cap,
            flush_interval=self.fleet.flush_interval,
        )

    def _join_fanout(
        self,
        participant_browser: Browser,
        participant_id: Optional[str],
        browser_type: str,
        fetch_objects: bool,
    ):
        member_id = participant_id or participant_browser.name
        if member_id in self.relays or member_id in self.participants:
            raise SessionError("participant id %r already joined" % member_id)
        parent = self._least_loaded_node()
        relay = RelayAgent(
            upstream_url=parent.url,
            port=self._relay_port,
            secret=self.agent.secret,
            relay_id=member_id,
            browser_type=browser_type,
            fetch_objects=fetch_objects,
            enable_delta=self.agent.enable_delta,
            delta_history=self.agent.delta_history,
            enable_batched_serve=self.agent.enable_batched_serve,
            transport=self.agent.transport.mode,
            poll_backoff=self._derive_backoff(member_id),
            reattach_backoff=self._reattach_backoff.derive(member_id),
            on_reattach=self._on_relay_reattach,
            metrics=self.metrics,
            tracer=self.tracer,
            events=self.events,
            attribution=self.attribution,
            telemetry=self._member_telemetry(member_id),
        )
        relay.install(participant_browser)
        try:
            yield from relay.connect_upstream()
        except BaseException:
            relay.uninstall()
            raise
        node = _TreeNode(
            member_id, relay.url, parent.node_id, parent.depth + 1, self._join_order
        )
        self._join_order += 1
        parent.children.append(member_id)
        self._nodes[member_id] = node
        self.relays[member_id] = relay
        relay.set_fallbacks(self._fallbacks_for(node))
        self._update_membership_gauge()
        return relay

    def _update_membership_gauge(self) -> None:
        self.metrics.gauge("session_members").set(
            len(self.participants) + len(self.relays)
        )

    def _least_loaded_node(self) -> _TreeNode:
        """The attach point for the next joiner: among nodes with a free
        child slot, the shallowest, least-filled, earliest-joined — so
        tiers fill breadth-first and the tree never degenerates into a
        chain."""
        candidates = [
            node for node in self._nodes.values() if len(node.children) < self.branching
        ]
        if self._tree_rng is not None:
            best = min((n.depth, len(n.children)) for n in candidates)
            tied = [n for n in candidates if (n.depth, len(n.children)) == best]
            return self._tree_rng.choice(sorted(tied, key=lambda n: n.order))
        return min(candidates, key=lambda n: (n.depth, len(n.children), n.order))

    def _fallbacks_for(self, node: _TreeNode) -> List[str]:
        """The re-attachment chain for ``node``: grandparent first, then
        farther ancestors, the root agent always last."""
        chain: List[str] = []
        parent = self._nodes.get(node.parent) if node.parent is not None else None
        ancestor = self._nodes.get(parent.parent) if parent and parent.parent is not None else None
        while ancestor is not None and ancestor.node_id != _ROOT:
            chain.append(ancestor.url)
            ancestor = (
                self._nodes.get(ancestor.parent) if ancestor.parent is not None else None
            )
        chain.append(self.agent.url)
        return chain

    def _node_by_url(self, url: str) -> Optional[_TreeNode]:
        for node in self._nodes.values():
            if node.url == url:
                return node
        return None

    def _on_relay_reattach(self, relay: RelayAgent, url: str) -> None:
        """A relay re-homed itself after its parent died: move its
        subtree in the bookkeeping and refresh the fallback chains."""
        node = self._nodes.get(relay.relay_id)
        if node is None:
            return
        old_parent = self._nodes.get(node.parent) if node.parent is not None else None
        if old_parent is not None and node.node_id in old_parent.children:
            old_parent.children.remove(node.node_id)
        new_parent = self._node_by_url(url) or self._nodes[_ROOT]
        node.parent = new_parent.node_id
        new_parent.children.append(node.node_id)
        self._reroot_depths(node, new_parent.depth + 1)
        self._refresh_fallbacks(node)

    def _reroot_depths(self, node: _TreeNode, depth: int) -> None:
        node.depth = depth
        for child_id in node.children:
            child = self._nodes.get(child_id)
            if child is not None:
                self._reroot_depths(child, depth + 1)

    def _refresh_fallbacks(self, node: _TreeNode) -> None:
        relay = self.relays.get(node.node_id)
        if relay is not None:
            relay.set_fallbacks(self._fallbacks_for(node))
        for child_id in node.children:
            child = self._nodes.get(child_id)
            if child is not None:
                self._refresh_fallbacks(child)

    def fail_relay(self, participant_id: str) -> RelayAgent:
        """Kill a relay mid-session (failure injection).

        The relay's port closes and its established connections drop, so
        its children's polls start failing; they re-attach to their
        grandparent (root as last resort) on their own.  Returns the
        dead relay for inspection.
        """
        relay = self.relays.pop(participant_id, None)
        if relay is None:
            raise SessionError("no relay %r in this session" % participant_id)
        if self.events is not None:
            dead_node = self._nodes.get(participant_id)
            self.events.emit(
                RELAY_DEATH,
                self.sim.now,
                node=participant_id,
                reason="injected",
                children=len(relay.participants),
                tier=dead_node.depth if dead_node is not None else None,
            )
        self._update_membership_gauge()
        node = self._nodes.pop(participant_id, None)
        if node is not None and node.parent is not None:
            parent = self._nodes.get(node.parent)
            if parent is not None and participant_id in parent.children:
                parent.children.remove(participant_id)
            self._upstream_server(node.parent).disconnect(participant_id)
        # Orphaned children keep their (now dangling) parent pointer
        # until their own re-attachment reports the new location.
        relay.uninstall()
        return relay

    def _upstream_server(self, node_id: str) -> RCBAgent:
        return self.agent if node_id == _ROOT else self.relays[node_id]

    def leave(self, member: Union[AjaxSnippet, RelayAgent]) -> None:
        """A participant leaves: stop polling, drop bookkeeping.

        A leaving relay is handled like a failed one — its children
        notice the dead port and re-attach to an ancestor.
        """
        if isinstance(member, RelayAgent):
            if member.relay_id in self.relays:
                self.fail_relay(member.relay_id)
            return
        member.disconnect()
        self.participants.pop(member.participant_id, None)
        self.agent.disconnect(member.participant_id)
        self._update_membership_gauge()

    def close(self) -> None:
        """Disconnect every participant and uninstall the agent."""
        if self.pool is not None:
            self.pool.close()
            self.pool = None
        for snippet in list(self.participants.values()):
            self.leave(snippet)
        for relay in list(self.relays.values()):
            relay.uninstall()
        self.relays.clear()
        self._nodes.clear()
        self.agent.uninstall()

    # -- host-side driving -------------------------------------------------------------

    def host_navigate(self, url, **kwargs):
        """Host visits a page (generator process returning the Page)."""
        page = yield from self.host_browser.navigate(url, **kwargs)
        return page

    def adaptive_transport(self, monitor, **kwargs) -> AdaptiveTransportController:
        """An :class:`~repro.core.transport.AdaptiveTransportController`
        wired to this session's agent and the given health monitor.  The
        caller starts it: ``sim.process(controller.run())``."""
        return AdaptiveTransportController(self, monitor, agent=self.agent, **kwargs)

    # -- synchronization barriers -----------------------------------------------------------

    def _member_time(self, member: Union[AjaxSnippet, RelayAgent]) -> int:
        """A member's acknowledged timestamp — a snippet's last applied
        envelope, or a relay's adopted upstream time (both advance only
        after the content is fully applied)."""
        if isinstance(member, RelayAgent):
            return member.doc_time
        return member.last_doc_time

    def member_times(self) -> Dict[str, int]:
        """Every member's acknowledged timestamp (ms), by member id —
        the raw staleness signal the SLO engine samples."""
        times: Dict[str, int] = {
            member_id: self._member_time(snippet)
            for member_id, snippet in self.participants.items()
        }
        for member_id, relay in self.relays.items():
            times[member_id] = self._member_time(relay)
        return times

    def member_tier(self, member_id: str) -> Optional[int]:
        """The fan-out tier a member serves at (None when flat/unknown)."""
        node = self._nodes.get(member_id)
        return node.depth if node is not None else None

    def is_synced(
        self, snippet: Optional[Union[AjaxSnippet, RelayAgent]] = None
    ) -> bool:
        """Whether the participant(s) have the host's latest content."""
        if snippet is not None:
            members = [snippet]
        else:
            members = list(self.participants.values()) + list(self.relays.values())
        return all(self._member_time(m) >= self.agent.doc_time for m in members)

    def wait_until_synced(
        self,
        snippet: Optional[Union[AjaxSnippet, RelayAgent]] = None,
        timeout: float = 60.0,
    ):
        """Generator process: block until content is synchronized.

        Returns the simulated time spent waiting.  Raises
        :class:`SessionError` after ``timeout`` simulated seconds.
        """
        started = self.sim.now
        while not self.is_synced(snippet):
            if self.sim.now - started > timeout:
                raise SessionError("synchronization timed out")
            yield self.sim.timeout(0.05)
        return self.sim.now - started

    def run_for(self, seconds: float) -> None:
        """Advance the simulation clock (convenience for scripts)."""
        self.sim.run(until=self.sim.now + seconds)

    # -- fan-out accounting ------------------------------------------------------------

    def tree_depth(self) -> int:
        """Deepest participant tier (0 when flat or empty)."""
        if not self._nodes:
            return 0
        return max(node.depth for node in self._nodes.values())

    def relay_summary(self) -> Dict[str, object]:
        """Fan-out accounting for :func:`~repro.metrics.render_relay_summary`.

        ``host_content_bytes`` is what the root's uplink actually
        carried in envelopes; ``relay_content_bytes`` is the envelope
        traffic the relays absorbed — bytes the host's uplink *saved*.
        Per-tier rows carry node counts, polls served, content bytes
        served, the mean last content-sync latency observed at that
        tier's upstream links, and the tier's sync-latency distribution
        (``sync_p50``/``sync_p95``/``sync_p99``, merged from each
        member's registry histogram).
        """
        root_stats = self.agent.stats
        tiers: Dict[int, Dict[str, object]] = {}
        tier_histograms: Dict[int, Histogram] = {}
        totals = {"content_bytes": 0, "object_requests": 0, "reattachments": 0}
        for node_id, relay in self.relays.items():
            node = self._nodes.get(node_id)
            depth = node.depth if node is not None else 1
            tier = tiers.setdefault(
                depth,
                {"nodes": 0, "polls": 0, "content_bytes": 0, "sync_samples": []},
            )
            tier["nodes"] += 1
            tier["polls"] += relay.stats["polls"]
            served = relay.stats["full_bytes_sent"] + relay.stats["delta_bytes_sent"]
            tier["content_bytes"] += served
            if relay.upstream is not None:
                tier["sync_samples"].append(relay.upstream.stats.last_sync_seconds)
                aggregate = tier_histograms.get(depth)
                if aggregate is None:
                    aggregate = tier_histograms[depth] = Histogram("tier_sync_seconds", ())
                aggregate.merge(relay.upstream.stats.histogram("sync_seconds"))
            totals["content_bytes"] += served
            totals["object_requests"] += relay.stats["object_requests"]
            totals["reattachments"] += relay.stats["reattachments"]
        for depth, tier in tiers.items():
            samples = tier.pop("sync_samples")
            tier["mean_sync_seconds"] = (
                sum(samples) / len(samples) if samples else 0.0
            )
            aggregate = tier_histograms.get(depth)
            tier["sync_p50"] = aggregate.p50 if aggregate else 0.0
            tier["sync_p95"] = aggregate.p95 if aggregate else 0.0
            tier["sync_p99"] = aggregate.p99 if aggregate else 0.0
        return {
            "branching": self.branching,
            "members": len(self.relays) + len(self.participants),
            "relays": len(self.relays),
            "depth": self.tree_depth(),
            "host_polls": root_stats["polls"],
            "host_content_bytes": root_stats["full_bytes_sent"]
            + root_stats["delta_bytes_sent"],
            "host_object_requests": root_stats["object_requests"],
            "relay_content_bytes": totals["content_bytes"],
            "relay_object_requests": totals["object_requests"],
            "reattachments": totals["reattachments"],
            "tiers": {depth: tiers[depth] for depth in sorted(tiers)},
        }

    def __repr__(self):
        mode = "flat" if self.branching is None else "fanout(k=%d)" % self.branching
        return "CoBrowsingSession(host=%r, %d participants, %s)" % (
            self.host_browser.name,
            len(self.participants) + len(self.relays),
            mode,
        )
