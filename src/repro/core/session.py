"""Co-browsing session orchestration.

Ties together a host browser running :class:`~repro.core.agent.RCBAgent`
and any number of participant browsers running
:class:`~repro.core.snippet.AjaxSnippet`.  This is the high-level public
API most examples and benchmarks drive:

    session = CoBrowsingSession(host_browser, port=3000)
    snippet = run(session.join(participant_browser))
    run(session.host_navigate("http://site.com/"))
    run(session.wait_until_synced())

Topologies are free-form (paper §3.3): a browser may host one session
and join others; participants may join or leave at any time.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..browser.browser import Browser
from .agent import AGENT_DEFAULT_PORT, RCBAgent
from .policy import ModerationPolicy
from .snippet import AjaxSnippet

__all__ = ["CoBrowsingSession", "SessionError"]


class SessionError(Exception):
    """Session-level misuse (joining twice, syncing with no page...)."""


class CoBrowsingSession:
    """One host-moderated co-browsing session."""

    def __init__(
        self,
        host_browser: Browser,
        port: int = AGENT_DEFAULT_PORT,
        cache_mode: bool = True,
        policy: Optional[ModerationPolicy] = None,
        secret: Optional[str] = None,
        poll_interval: float = 1.0,
        agent: Optional[RCBAgent] = None,
        enable_delta: bool = True,
    ):
        self.host_browser = host_browser
        self.sim = host_browser.sim
        if agent is None:
            agent = RCBAgent(
                port=port,
                cache_mode=cache_mode,
                policy=policy,
                secret=secret,
                poll_interval=poll_interval,
                enable_delta=enable_delta,
            )
        self.agent = agent
        self.agent.install(host_browser)
        self.participants: Dict[str, AjaxSnippet] = {}

    # -- membership -----------------------------------------------------------------

    def join(
        self,
        participant_browser: Browser,
        participant_id: Optional[str] = None,
        browser_type: str = "firefox",
        fetch_objects: bool = True,
    ):
        """A participant joins: generator process returning its snippet.

        The participant only needs a regular JavaScript-enabled browser;
        everything it runs arrives with the initial page.
        """
        if not participant_browser.javascript_enabled:
            raise SessionError(
                "participant browsers must have JavaScript enabled (paper §1)"
            )
        snippet = AjaxSnippet(
            participant_browser,
            self.agent.url,
            participant_id=participant_id,
            secret=self.agent.secret,
            browser_type=browser_type,
            fetch_objects=fetch_objects,
        )
        yield from snippet.connect()
        if snippet.participant_id in self.participants:
            snippet.disconnect()
            raise SessionError("participant id %r already joined" % snippet.participant_id)
        self.participants[snippet.participant_id] = snippet
        return snippet

    def leave(self, snippet: AjaxSnippet) -> None:
        """A participant leaves: stop polling, drop bookkeeping."""
        snippet.disconnect()
        self.participants.pop(snippet.participant_id, None)
        self.agent.disconnect(snippet.participant_id)

    def close(self) -> None:
        """Disconnect every participant and uninstall the agent."""
        for snippet in list(self.participants.values()):
            self.leave(snippet)
        self.agent.uninstall()

    # -- host-side driving -------------------------------------------------------------

    def host_navigate(self, url, **kwargs):
        """Host visits a page (generator process returning the Page)."""
        page = yield from self.host_browser.navigate(url, **kwargs)
        return page

    # -- synchronization barriers -----------------------------------------------------------

    def is_synced(self, snippet: Optional[AjaxSnippet] = None) -> bool:
        """Whether the participant(s) have the host's latest content."""
        snippets = [snippet] if snippet is not None else list(self.participants.values())
        return all(s.last_doc_time >= self.agent.doc_time for s in snippets)

    def wait_until_synced(
        self, snippet: Optional[AjaxSnippet] = None, timeout: float = 60.0
    ):
        """Generator process: block until content is synchronized.

        Returns the simulated time spent waiting.  Raises
        :class:`SessionError` after ``timeout`` simulated seconds.
        """
        started = self.sim.now
        while not self.is_synced(snippet):
            if self.sim.now - started > timeout:
                raise SessionError("synchronization timed out")
            yield self.sim.timeout(0.05)
        return self.sim.now - started

    def run_for(self, seconds: float) -> None:
        """Advance the simulation clock (convenience for scripts)."""
        self.sim.run(until=self.sim.now + seconds)

    def __repr__(self):
        return "CoBrowsingSession(host=%r, %d participants)" % (
            self.host_browser.name,
            len(self.participants),
        )
