"""Response content generation — the paper's Fig. 3 pipeline.

Given the host browser's current document, produce the XML envelope a
participant needs to render the same page:

1. Clone the ``documentElement`` (all later changes touch only the
   clone; the host document is never mutated).
2. Rewrite relative URLs of supplementary objects to absolute URLs of
   the original web servers, using the observer-recorded download map
   where available.
3. In cache mode, rewrite absolute URLs of cached objects to RCB-Agent
   URLs, so the participant browser fetches them from the host browser.
4. Rewrite event attributes (onsubmit/onclick/onchange) to call
   Ajax-Snippet functions, tagging each interactive element with a
   stable reference so its actions can be resolved on the host.
5. Extract attribute lists and innerHTML values of the top-level
   children and assemble the Fig. 4 XML envelope.

The generator runs once per new document state; the produced XML is
reusable for every connected participant (paper §4.1.2).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..browser.cache import CacheReadSession
from ..html import Document, Element
from ..http import quote
from ..net.url import Url, UrlError, parse_url, resolve_url
from .xmlformat import HeadChild, NewContent, TopElement, build_envelope

__all__ = ["ContentGenerator", "GeneratedContent", "OBJECT_URL_ATTRIBUTES", "AGENT_OBJECT_PATH"]

#: Attributes holding supplementary-object URLs, per tag.
OBJECT_URL_ATTRIBUTES: Tuple[Tuple[str, str], ...] = (
    ("img", "src"),
    ("script", "src"),
    ("frame", "src"),
    ("iframe", "src"),
    ("embed", "src"),
    ("input", "src"),
    ("body", "background"),
    ("link", "href"),
)

#: Navigation attributes also made absolute (harmless, aids debugging).
_NAVIGATION_ATTRIBUTES: Tuple[Tuple[str, str], ...] = (
    ("a", "href"),
    ("form", "action"),
)

#: Path on the agent that serves cached objects (cache mode).
AGENT_OBJECT_PATH = "/obj"

#: Event-attribute rewrites: tag -> (attribute, snippet call).
_EVENT_REWRITES: Dict[str, Tuple[str, str]] = {
    "form": ("onsubmit", "return rcbSubmit(this)"),
    "a": ("onclick", "return rcbClick(this)"),
    "input": ("onchange", "rcbInput(this)"),
    "select": ("onchange", "rcbInput(this)"),
    "textarea": ("onchange", "rcbInput(this)"),
    "button": ("onclick", "return rcbClick(this)"),
}

#: Attribute carrying the stable element reference on rewritten elements.
REF_ATTRIBUTE = "data-rcbref"


class GeneratedContent:
    """One generation result: envelope text plus bookkeeping."""

    def __init__(
        self,
        content: NewContent,
        xml_text: str,
        object_map: Dict[str, str],
        generation_seconds: float,
        urls_rewritten: int,
        cache_rewrites: int,
    ):
        self.content = content
        self.xml_text = xml_text
        #: agent request-URI -> cache key (the paper's mapping table).
        self.object_map = object_map
        #: Wall-clock time spent generating (the paper's M5 metric).
        self.generation_seconds = generation_seconds
        self.urls_rewritten = urls_rewritten
        self.cache_rewrites = cache_rewrites

    def __repr__(self):
        return "GeneratedContent(%d bytes xml, %d cache objects, %.4fs)" % (
            len(self.xml_text),
            len(self.object_map),
            self.generation_seconds,
        )


class ContentGenerator:
    """Implements the Fig. 3 response content generation procedure."""

    def __init__(self, agent_object_path: str = AGENT_OBJECT_PATH):
        self.agent_object_path = agent_object_path
        self.generations = 0

    def generate(
        self,
        document: Document,
        base_url: Url,
        doc_time: int,
        cache_session: Optional[CacheReadSession] = None,
        cache_mode: bool = False,
        url_map: Optional[Dict[str, str]] = None,
        user_actions_json: str = "[]",
        sign_target=None,
        should_cache=None,
        cookies_json: str = "[]",
    ) -> GeneratedContent:
        """Produce the envelope for the document's current state.

        ``url_map`` maps raw attribute values to the absolute URLs the
        observer recorded during the host's own download (Fig. 3 step 2);
        values not in the map are resolved against ``base_url``.

        ``sign_target``, when given, is applied to every agent object URL
        written into the clone (cache mode under HMAC authentication: the
        host signs the URLs with the shared session secret so the
        participant browser's plain GETs verify).

        ``should_cache`` refines cache mode per object: a callable
        ``(object_url, content_type, size) -> bool`` consulted for every
        cached object (paper §4.1.2: different objects on the same page
        may use different modes).
        """
        started = time.perf_counter()
        root = document.document_element
        if root is None:
            raise ValueError("document has no <html> element")

        # Step 1: clone; everything below operates on the clone only.
        clone = root.clone(deep=True)

        # Steps 2-4 in one traversal.
        object_map: Dict[str, str] = {}
        urls_rewritten = 0
        cache_rewrites = 0
        tag_counters: Dict[str, int] = {}
        for element in self._walk(clone):
            index = tag_counters.get(element.tag, 0)
            tag_counters[element.tag] = index + 1

            rewritten = self._rewrite_urls(element, base_url, url_map)
            urls_rewritten += rewritten

            if cache_mode and cache_session is not None:
                cache_rewrites += self._rewrite_for_cache(
                    element, cache_session, object_map, sign_target, should_cache
                )

            self._rewrite_events(element, index)

        # Step 5: extract per-child attribute lists and innerHTML values.
        head_children: List[HeadChild] = []
        top_elements: List[TopElement] = []
        for child in clone.children:
            if child.tag == "head":
                for head_child in child.children:
                    head_children.append(
                        HeadChild(
                            head_child.tag,
                            head_child.attributes,
                            head_child.inner_html,
                        )
                    )
            elif child.tag in ("body", "frameset", "noframes"):
                top_elements.append(
                    TopElement(child.tag, child.attributes, child.inner_html)
                )

        content = NewContent(
            doc_time, head_children, top_elements, user_actions_json, cookies_json
        )
        xml_text = build_envelope(content)
        elapsed = time.perf_counter() - started
        self.generations += 1
        return GeneratedContent(
            content, xml_text, object_map, elapsed, urls_rewritten, cache_rewrites
        )

    # -- traversal -----------------------------------------------------------------

    @staticmethod
    def _walk(root: Element):
        """The clone root plus its descendant elements, pre-order —
        matching the traversal order used to resolve references on the
        host document."""
        yield root
        yield from root.descendant_elements()

    # -- step 2: relative -> absolute ------------------------------------------------

    def _rewrite_urls(
        self, element: Element, base_url: Url, url_map: Optional[Dict[str, str]]
    ) -> int:
        rewritten = 0
        for tag, attribute in OBJECT_URL_ATTRIBUTES + _NAVIGATION_ATTRIBUTES:
            if element.tag != tag:
                continue
            raw = element.get_attribute(attribute)
            if not raw:
                continue
            absolute = self._to_absolute(raw, base_url, url_map)
            if absolute is not None and absolute != raw:
                element.set_attribute(attribute, absolute)
                rewritten += 1
        return rewritten

    @staticmethod
    def _to_absolute(
        raw: str, base_url: Url, url_map: Optional[Dict[str, str]]
    ) -> Optional[str]:
        if url_map and raw in url_map:
            return url_map[raw]
        try:
            parsed = parse_url(raw)
            if parsed.is_absolute:
                return raw
            return str(resolve_url(base_url, parsed))
        except UrlError:
            return None

    # -- step 3: absolute -> agent URL (cache mode) -------------------------------------

    def _rewrite_for_cache(
        self,
        element: Element,
        cache_session: CacheReadSession,
        object_map: Dict[str, str],
        sign_target=None,
        should_cache=None,
    ) -> int:
        rewritten = 0
        for tag, attribute in OBJECT_URL_ATTRIBUTES:
            if element.tag != tag:
                continue
            if tag == "link":
                rel = (element.get_attribute("rel") or "").lower()
                if rel not in ("stylesheet", "icon", "shortcut icon"):
                    continue
            if tag == "input" and element.get_attribute("type") != "image":
                continue
            url = element.get_attribute(attribute)
            if not url or not cache_session.contains(url):
                continue
            if should_cache is not None:
                entry = cache_session.peek(url)
                if entry is None or not should_cache(url, entry.content_type, entry.size):
                    continue
            target = "%s?key=%s" % (self.agent_object_path, quote(url))
            object_map[target] = url
            written = sign_target(target) if sign_target is not None else target
            element.set_attribute(attribute, written)
            rewritten += 1
        return rewritten

    # -- step 4: event-attribute rewriting ------------------------------------------------

    @staticmethod
    def _rewrite_events(element: Element, same_tag_index: int) -> None:
        rewrite = _EVENT_REWRITES.get(element.tag)
        if rewrite is None:
            return
        attribute, call = rewrite
        element.set_attribute(attribute, call)
        element.set_attribute(
            REF_ATTRIBUTE, "%s:%d" % (element.tag, same_tag_index)
        )
