"""Response content generation — the paper's Fig. 3 pipeline.

Given the host browser's current document, produce the XML envelope a
participant needs to render the same page:

1. Clone the ``documentElement`` (all later changes touch only the
   clone; the host document is never mutated).
2. Rewrite relative URLs of supplementary objects to absolute URLs of
   the original web servers, using the observer-recorded download map
   where available.
3. In cache mode, rewrite absolute URLs of cached objects to RCB-Agent
   URLs, so the participant browser fetches them from the host browser.
4. Rewrite event attributes (onsubmit/onclick/onchange) to call
   Ajax-Snippet functions, tagging each interactive element with a
   stable reference so its actions can be resolved on the host.
5. Extract attribute lists and innerHTML values of the top-level
   children and assemble the Fig. 4 XML envelope.

The generator runs once per new document state; the produced XML is
reusable for every connected participant (paper §4.1.2).

**Incremental generation.**  The paper's pipeline is O(page) per
document change.  When the caller passes a ``mode_key``, the generator
retains the previous rewritten clone and, on the next generation,
re-clones and re-rewrites only subtrees whose DOM version stamps (see
:mod:`repro.html.dom`) changed — every untouched subtree is the *same*
clone object, its serialized segment comes from the serializer's
segment cache, and its envelope payload string is reused outright.  The
output is byte-identical to a from-scratch run because both paths share
one builder and one envelope assembler.  Reuse is fenced by a
fingerprint of everything besides the DOM that influences rewriting
(base URL, cache-mode flag + cache content revision, the signing and
cache-policy callables, the observer URL map); any mismatch falls back
to a full rebuild.  Event-attribute rewrites additionally depend on
pre-order same-tag indices, so each cloned element records the
interactive-tag counters at its subtree boundaries — a subtree is only
reused when its incoming counters are unchanged, otherwise its
``data-rcbref`` indices could be stale.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..browser.cache import CacheReadSession
from ..html import Document, Element
from ..html.dom import RAW_TEXT_ELEMENTS, Comment, Node, Text
from ..html.parser import _SELF_CLOSING_SIBLINGS
from ..html.serializer import (
    SegmentCache,
    serialize_children,
    serialize_children_cached,
    transform_children_cached,
)
from ..http import quote
from ..net.url import Url, UrlError, parse_url, resolve_url
from .xmlformat import (
    PAYLOAD_SUFFIX,
    HeadChild,
    NewContent,
    TopElement,
    assemble_envelope,
    head_child_prefix,
    payload_encode,
    top_element_prefix,
)

__all__ = ["ContentGenerator", "GeneratedContent", "OBJECT_URL_ATTRIBUTES", "AGENT_OBJECT_PATH"]

#: Attributes holding supplementary-object URLs, per tag.
OBJECT_URL_ATTRIBUTES: Tuple[Tuple[str, str], ...] = (
    ("img", "src"),
    ("script", "src"),
    ("frame", "src"),
    ("iframe", "src"),
    ("embed", "src"),
    ("input", "src"),
    ("body", "background"),
    ("link", "href"),
)

#: Navigation attributes also made absolute (harmless, aids debugging).
_NAVIGATION_ATTRIBUTES: Tuple[Tuple[str, str], ...] = (
    ("a", "href"),
    ("form", "action"),
)

#: Path on the agent that serves cached objects (cache mode).
AGENT_OBJECT_PATH = "/obj"

#: Event-attribute rewrites: tag -> (attribute, snippet call).
_EVENT_REWRITES: Dict[str, Tuple[str, str]] = {
    "form": ("onsubmit", "return rcbSubmit(this)"),
    "a": ("onclick", "return rcbClick(this)"),
    "input": ("onchange", "rcbInput(this)"),
    "select": ("onchange", "rcbInput(this)"),
    "textarea": ("onchange", "rcbInput(this)"),
    "button": ("onclick", "return rcbClick(this)"),
}

#: Attribute carrying the stable element reference on rewritten elements.
REF_ATTRIBUTE = "data-rcbref"

#: tag -> attributes to absolutize, precomputed so the per-element hot
#: path is one dict probe instead of a scan over every (tag, attribute)
#: pair in the module tables.
_URL_ATTRIBUTES_BY_TAG: Dict[str, Tuple[str, ...]] = {}
for _tag, _attr in OBJECT_URL_ATTRIBUTES + _NAVIGATION_ATTRIBUTES:
    _URL_ATTRIBUTES_BY_TAG[_tag] = _URL_ATTRIBUTES_BY_TAG.get(_tag, ()) + (_attr,)

#: tag -> attributes eligible for cache-mode rewriting.
_CACHE_ATTRIBUTES_BY_TAG: Dict[str, Tuple[str, ...]] = {}
for _tag, _attr in OBJECT_URL_ATTRIBUTES:
    _CACHE_ATTRIBUTES_BY_TAG[_tag] = _CACHE_ATTRIBUTES_BY_TAG.get(_tag, ()) + (_attr,)

#: Interactive tags whose pre-order same-tag index feeds data-rcbref.
_EVENT_TAGS: Tuple[str, ...] = tuple(sorted(_EVENT_REWRITES))
_EVENT_SLOT: Dict[str, int] = {tag: slot for slot, tag in enumerate(_EVENT_TAGS)}


class GeneratedContent:
    """One generation result: envelope text plus bookkeeping."""

    def __init__(
        self,
        content: NewContent,
        xml_text: str,
        object_map: Dict[str, str],
        generation_seconds: float,
        urls_rewritten: int,
        cache_rewrites: int,
        mode: str = "full",
        segments_reused: int = 0,
        segments_total: int = 0,
        dirty_subtrees: int = 0,
        reused_subtrees: int = 0,
        urlcache_hits: int = 0,
        canonical_root: Optional[Element] = None,
        head_segments: Optional[List[bytes]] = None,
        top_segments: Optional[List[Tuple[str, bytes]]] = None,
    ):
        self.content = content
        self.xml_text = xml_text
        #: agent request-URI -> cache key (the paper's mapping table).
        self.object_map = object_map
        #: Wall-clock time spent generating (the paper's M5 metric).
        self.generation_seconds = generation_seconds
        self.urls_rewritten = urls_rewritten
        self.cache_rewrites = cache_rewrites
        #: ``"full"`` or ``"incremental"`` — which pipeline ran.
        self.mode = mode
        #: Envelope sections (head children / top elements) whose cached
        #: payload string was reused, out of ``segments_total``.
        self.segments_reused = segments_reused
        self.segments_total = segments_total
        #: Clone subtrees rebuilt because their source versions changed,
        #: and subtrees reused wholesale.
        self.dirty_subtrees = dirty_subtrees
        self.reused_subtrees = reused_subtrees
        #: Hits in the (base_url, raw) -> absolute URL memo this run.
        self.urlcache_hits = urlcache_hits
        #: Canonical content tree for delta snapshots (built on request;
        #: unchanged subtrees are shared with the previous snapshot, so
        #: version-guided diffs skip them without descending).
        self.canonical_root = canonical_root
        #: Pre-encoded (ASCII bytes) section payloads for the zero-copy
        #: wire path, cached per clone element across generations; None
        #: unless the caller asked for ``encode_segments``.
        self.head_segments = head_segments
        self.top_segments = top_segments

    @property
    def reuse_ratio(self) -> float:
        """Fraction of clone subtrees reused rather than rebuilt (0.0
        for a full generation: nothing was carried over)."""
        touched = self.reused_subtrees + self.dirty_subtrees
        if not touched:
            return 0.0
        return self.reused_subtrees / touched

    def __repr__(self):
        return "GeneratedContent(%d bytes xml, %d cache objects, %.4fs, %s)" % (
            len(self.xml_text),
            len(self.object_map),
            self.generation_seconds,
            self.mode,
        )


class _ModeState:
    """Retained pipeline state for one ``mode_key``."""

    __slots__ = ("src_root", "clone_root", "fingerprint", "url_map", "object_map")

    def __init__(self):
        self.src_root: Optional[Element] = None
        self.clone_root: Optional[Element] = None
        self.fingerprint: Optional[tuple] = None
        self.url_map: Dict[str, str] = {}
        #: Cumulative request-URI -> cache key mapping.  Sound across
        #: incremental runs because the fingerprint pins the cache
        #: revision: while it holds, every mapping written for a reused
        #: subtree still resolves.
        self.object_map: Dict[str, str] = {}


class _GenPass:
    """Per-generation scratch: configuration + work counters."""

    __slots__ = (
        "base_url",
        "base_key",
        "url_map",
        "cache_mode",
        "cache_session",
        "sign_target",
        "should_cache",
        "object_map",
        "urls_rewritten",
        "cache_rewrites",
        "dirty_subtrees",
        "reused_subtrees",
        "segments_reused",
        "segments_total",
    )

    def __init__(self, base_url, url_map, cache_mode, cache_session, sign_target, should_cache):
        self.base_url = base_url
        self.base_key = str(base_url)
        self.url_map = url_map
        self.cache_mode = cache_mode
        self.cache_session = cache_session
        self.sign_target = sign_target
        self.should_cache = should_cache
        self.object_map: Dict[str, str] = {}
        self.urls_rewritten = 0
        self.cache_rewrites = 0
        self.dirty_subtrees = 0
        self.reused_subtrees = 0
        self.segments_reused = 0
        self.segments_total = 0


class ContentGenerator:
    """Implements the Fig. 3 response content generation procedure."""

    def __init__(self, agent_object_path: str = AGENT_OBJECT_PATH, url_cache_size: int = 4096):
        self.agent_object_path = agent_object_path
        self.generations = 0
        #: LRU memo for (base_url, raw) -> absolute resolution.
        self._url_memo: "OrderedDict[Tuple[str, str], Optional[str]]" = OrderedDict()
        self._url_cache_size = url_cache_size
        self.url_cache_hits = 0
        #: Serialized-subtree cache shared by this generator's runs.
        self.segment_cache = SegmentCache()
        #: Payload-encoded (JSON-string + js_escape) subtree cache.
        self.encoded_cache = SegmentCache()
        #: Retained incremental state per mode_key.
        self._modes: Dict[str, _ModeState] = {}

    def generate(
        self,
        document: Document,
        base_url: Url,
        doc_time: int,
        cache_session: Optional[CacheReadSession] = None,
        cache_mode: bool = False,
        url_map: Optional[Dict[str, str]] = None,
        user_actions_json: str = "[]",
        sign_target=None,
        should_cache=None,
        cookies_json: str = "[]",
        mode_key: Optional[str] = None,
        build_canonical: bool = False,
        encode_segments: bool = False,
    ) -> GeneratedContent:
        """Produce the envelope for the document's current state.

        ``url_map`` maps raw attribute values to the absolute URLs the
        observer recorded during the host's own download (Fig. 3 step 2);
        values not in the map are resolved against ``base_url``.

        ``sign_target``, when given, is applied to every agent object URL
        written into the clone (cache mode under HMAC authentication: the
        host signs the URLs with the shared session secret so the
        participant browser's plain GETs verify).

        ``should_cache`` refines cache mode per object: a callable
        ``(object_url, content_type, size) -> bool`` consulted for every
        cached object (paper §4.1.2: different objects on the same page
        may use different modes).

        ``mode_key`` opts into incremental generation: the rewritten
        clone is retained under that key and later calls rebuild only
        version-changed subtrees.  For the reuse fence to ever hold,
        pass the *same* ``sign_target``/``should_cache`` objects across
        calls — fresh closures per call force a full rebuild every time.
        ``build_canonical`` additionally builds the canonical content
        tree (:func:`repro.core.delta.content_tree` shape) with
        unchanged subtrees shared against the previous build.
        ``encode_segments`` additionally exposes each section's payload
        pre-encoded to ASCII bytes (cached per clone element, like the
        payload strings), for the zero-copy wire templates.
        """
        started = time.perf_counter()
        root = document.document_element
        if root is None:
            raise ValueError("document has no <html> element")

        url_hits_before = self.url_cache_hits
        gen = _GenPass(base_url, url_map, cache_mode, cache_session, sign_target, should_cache)
        state = self._modes.get(mode_key) if mode_key is not None else None
        fingerprint = self._fingerprint(gen)
        incremental = (
            state is not None
            and state.src_root is root
            and state.fingerprint == fingerprint
            and state.url_map == (url_map or {})
        )

        # Steps 1-4 in one traversal: clone + rewrite, reusing unchanged
        # subtrees of the previous clone in incremental mode.
        counters = [0] * len(_EVENT_TAGS)
        if incremental:
            gen.object_map = state.object_map
            clone = self._sync_node(root, state.clone_root, counters, gen)
        else:
            clone = self._build_element(root, None, counters, gen)

        # Step 5: extract per-child attribute lists and innerHTML values,
        # through the per-section payload cache.
        head_children: List[HeadChild] = []
        head_payloads: List[str] = []
        head_clones: List[Element] = []
        top_elements: List[TopElement] = []
        top_payloads: List[Tuple[str, str]] = []
        top_clones: List[Element] = []
        head_segments: Optional[List[bytes]] = [] if encode_segments else None
        top_segments: Optional[List[Tuple[str, bytes]]] = [] if encode_segments else None
        for child in clone.children:
            if child.tag == "head":
                for head_child in child.children:
                    record, payload = self._segment(head_child, True, gen)
                    head_children.append(record)
                    head_payloads.append(payload)
                    head_clones.append(head_child)
                    if head_segments is not None:
                        head_segments.append(self._segment_bytes(head_child))
            elif child.tag in ("body", "frameset", "noframes"):
                record, payload = self._segment(child, False, gen)
                top_elements.append(record)
                top_payloads.append((record.name, payload))
                top_clones.append(child)
                if top_segments is not None:
                    top_segments.append((record.name, self._segment_bytes(child)))

        content = NewContent(
            doc_time, head_children, top_elements, user_actions_json, cookies_json
        )
        xml_text = assemble_envelope(
            doc_time, head_payloads, top_payloads, user_actions_json, cookies_json
        )
        canonical_root = None
        if build_canonical:
            canonical_root = self._canonical(head_clones, top_clones)

        if mode_key is not None:
            if state is None:
                state = self._modes[mode_key] = _ModeState()
            state.src_root = root
            state.clone_root = clone
            state.fingerprint = fingerprint
            state.url_map = dict(url_map or {})
            state.object_map = gen.object_map

        elapsed = time.perf_counter() - started
        self.generations += 1
        return GeneratedContent(
            content,
            xml_text,
            dict(gen.object_map),
            elapsed,
            gen.urls_rewritten,
            gen.cache_rewrites,
            mode="incremental" if incremental else "full",
            segments_reused=gen.segments_reused,
            segments_total=gen.segments_total,
            dirty_subtrees=gen.dirty_subtrees,
            reused_subtrees=gen.reused_subtrees,
            urlcache_hits=self.url_cache_hits - url_hits_before,
            canonical_root=canonical_root,
            head_segments=head_segments,
            top_segments=top_segments,
        )

    def forget(self, mode_key: Optional[str] = None) -> None:
        """Drop retained incremental state (all modes when key is None)."""
        if mode_key is None:
            self._modes.clear()
        else:
            self._modes.pop(mode_key, None)

    # -- reuse fence ---------------------------------------------------------------

    @staticmethod
    def _callable_key(fn) -> Optional[tuple]:
        """Identity of a rewrite callable, unwrapping bound methods so a
        re-bound ``obj.method`` still fingerprints as the same thing."""
        if fn is None:
            return None
        return (getattr(fn, "__func__", fn), id(getattr(fn, "__self__", None)))

    def _fingerprint(self, gen: _GenPass) -> tuple:
        session = gen.cache_session
        cache_id = None
        cache_revision = None
        if session is not None:
            backing = getattr(session, "backing", None)
            cache_id = id(backing) if backing is not None else id(session)
            cache_revision = getattr(session, "revision", None)
        return (
            gen.base_key,
            bool(gen.cache_mode),
            cache_id,
            cache_revision,
            self._callable_key(gen.sign_target),
            self._callable_key(gen.should_cache),
        )

    # -- clone + rewrite (Fig. 3 steps 1-4) ------------------------------------------

    def _sync_node(self, src: Node, old_clone, counters: List[int], gen: _GenPass) -> Node:
        """A rewritten clone of ``src``, reusing ``old_clone`` when the
        source subtree and the incoming interactive-tag counters are
        both unchanged since ``old_clone`` was built."""
        if isinstance(src, Element):
            if (
                old_clone is not None
                and old_clone._rcb_src is src
                and old_clone._rcb_sub == src._subtree_version
                and old_clone._rcb_in == tuple(counters)
            ):
                counters[:] = old_clone._rcb_out
                gen.reused_subtrees += 1
                return old_clone
            return self._build_element(src, old_clone, counters, gen)
        return src.clone(deep=False)

    def _build_element(
        self, src: Element, old_clone: Optional[Element], counters: List[int], gen: _GenPass
    ) -> Element:
        """Clone + rewrite one element, syncing its children against the
        old clone's children (matched by source-node identity).

        When the old clone maps to the same source element at the same
        incoming counters, it is *repaired in place*: its attributes are
        reset and re-rewritten, and its child list is only reassigned if
        the synced children actually differ — so a dirty ancestor chain
        costs O(its own children), not a detach/re-append of every
        reused descendant.  The repaired element is version-stamped,
        which both invalidates its cached segments/payloads/canonicals
        and (via parent propagation) those of its in-place ancestors.
        """
        gen.dirty_subtrees += 1
        entry_counters = tuple(counters)
        in_place = (
            old_clone is not None
            and getattr(old_clone, "_rcb_src", None) is src
            and old_clone._rcb_in == entry_counters
        )
        old_children: List[Node] = list(old_clone.child_nodes) if old_clone is not None else []
        if in_place:
            element = old_clone
            element._attributes.clear()
            element._attributes.update(src._attributes)
        else:
            element = src.clone(deep=False)
        element._rcb_src = src
        element._rcb_sub = src._subtree_version
        element._rcb_in = entry_counters

        gen.urls_rewritten += self._rewrite_urls_memo(element, gen)
        if gen.cache_mode and gen.cache_session is not None:
            gen.cache_rewrites += self._rewrite_for_cache(
                element, gen.cache_session, gen.object_map, gen.sign_target, gen.should_cache
            )
        slot = _EVENT_SLOT.get(element.tag)
        if slot is not None:
            self._rewrite_events(element, counters[slot])
            counters[slot] += 1

        old_by_src: Optional[Dict[int, Node]] = None
        if old_children:
            old_by_src = {}
            for old_child in old_children:
                src_ref = getattr(old_child, "_rcb_src", None)
                if src_ref is not None:
                    # The clone's strong _rcb_src reference keeps the
                    # source node alive, so this id cannot be recycled.
                    old_by_src[id(src_ref)] = old_child
        new_children: List[Node] = []
        for child in src.child_nodes:
            old_child = old_by_src.get(id(child)) if old_by_src is not None else None
            new_children.append(self._sync_node(child, old_child, counters, gen))
        if in_place:
            if len(new_children) != len(old_children) or any(
                new is not old for new, old in zip(new_children, old_children)
            ):
                element.child_nodes[:] = new_children
                for child_node in new_children:
                    child_node.parent = element
            element._stamp_mutation()
        else:
            for child_node in new_children:
                element.append_child(child_node)
        element._rcb_out = tuple(counters)
        return element

    # -- envelope sections -----------------------------------------------------------

    def _segment(self, element: Element, is_head_child: bool, gen: _GenPass):
        """``(record, payload)`` for one envelope section, cached on the
        clone element keyed by its subtree version."""
        gen.segments_total += 1
        if getattr(element, "_rcb_seg_ver", None) == element._subtree_version:
            gen.segments_reused += 1
            return element._rcb_record, element._rcb_payload
        inner = serialize_children_cached(element, self.segment_cache)
        # Spliced payload: escaped record prefix + cached per-subtree
        # encoded segments + constant closer.  Byte-identical to
        # js_escape(json.dumps(record)) because both component escapes
        # map code units independently (see repro.core.xmlformat).
        encoded = transform_children_cached(
            element, payload_encode, self.encoded_cache, self.segment_cache
        )
        if is_head_child:
            record = HeadChild(element.tag, element.attributes, inner)
            payload = head_child_prefix(record.tag, record.attributes) + encoded + PAYLOAD_SUFFIX
        else:
            record = TopElement(element.tag, element.attributes, inner)
            payload = top_element_prefix(record.attributes) + encoded + PAYLOAD_SUFFIX
        element._rcb_record = record
        element._rcb_payload = payload
        element._rcb_seg_ver = element._subtree_version
        return record, payload

    @staticmethod
    def _segment_bytes(element: Element) -> bytes:
        """The element's payload pre-encoded to immutable ASCII bytes,
        cached alongside the payload string (payloads are pure ASCII:
        js_escape leaves nothing above 0x7F unescaped)."""
        if getattr(element, "_rcb_payload_b_ver", None) == element._subtree_version:
            return element._rcb_payload_b
        payload_b = element._rcb_payload.encode("ascii")
        element._rcb_payload_b = payload_b
        element._rcb_payload_b_ver = element._subtree_version
        return payload_b

    # -- canonical snapshot tree -------------------------------------------------------

    def _canonical(self, head_clones: List[Element], top_clones: List[Element]) -> Element:
        """The canonical content tree for this generation, mirroring what
        a participant holds after parsing the envelope sections.

        Section subtrees come from :meth:`_canonical_for`, which caches
        its result on each clone element keyed by subtree version, so an
        unchanged section (or any unchanged subtree of a dirty section)
        contributes the *same* node objects as the previous snapshot.
        They are appended raw — no reparenting, no version stamping:
        snapshots are read-only diff inputs, and object identity across
        snapshots is exactly what lets the version-guided diff skip
        unchanged regions without descending.
        """
        html = Element("html")
        head = Element("head")
        html.child_nodes.append(head)
        head.parent = html
        for clone_el in head_clones:
            head.child_nodes.append(self._canonical_for(clone_el))
        for clone_el in top_clones:
            html.child_nodes.append(self._canonical_for(clone_el))
        return html

    def _canonical_for(self, clone_el: Element) -> Element:
        """The parse-normalized mirror of one clone element, cached by
        subtree version.

        Participants re-parse each section's innerHTML, so the snapshot
        must be node-for-node what :func:`repro.html.parser.parse_fragment`
        would produce from the serialized markup.  A direct structural
        mirror matches that parse for every tree the parser itself could
        have produced; the exceptions are its normalizations — adjacent
        text merging, empty text dropping, void children, implied end
        tags, raw-text and comment delimiter ambiguities.  The cheap
        normalizations are applied inline; a subtree whose shape the
        parser would genuinely restructure falls back to a *localized*
        serialize-and-parse round trip, keeping the cost O(subtree)
        rather than O(page).
        """
        if getattr(clone_el, "_rcb_canon_ver", None) == clone_el._subtree_version:
            return clone_el._rcb_canon
        canon = Element(clone_el.tag, dict(clone_el._attributes))
        mirrored = True
        if canon.is_void:
            pass  # the parser never attaches children to a void element
        elif clone_el.tag in RAW_TEXT_ELEMENTS:
            data = "".join(
                child.data for child in clone_el.child_nodes if isinstance(child, Text)
            )
            if any(not isinstance(c, Text) for c in clone_el.child_nodes) or (
                "</" + clone_el.tag
            ) in data.lower():
                mirrored = False
            elif data:
                canon.child_nodes.append(Text(data))
                canon.child_nodes[-1].parent = canon
        else:
            pending: List[str] = []
            for child in clone_el.child_nodes:
                if isinstance(child, Text):
                    if child.data:
                        pending.append(child.data)
                    continue
                if pending:
                    canon.child_nodes.append(Text("".join(pending)))
                    canon.child_nodes[-1].parent = canon
                    pending = []
                if isinstance(child, Comment):
                    if "-->" in child.data:
                        mirrored = False
                        break
                    canon.child_nodes.append(Comment(child.data))
                    canon.child_nodes[-1].parent = canon
                elif isinstance(child, Element):
                    if clone_el.tag in _SELF_CLOSING_SIBLINGS.get(child.tag, ()):
                        # The parser would close clone_el at this child's
                        # start tag and restructure the section.
                        mirrored = False
                        break
                    canon.child_nodes.append(self._canonical_for(child))
                else:
                    mirrored = False
                    break
            else:
                if pending:
                    canon.child_nodes.append(Text("".join(pending)))
                    canon.child_nodes[-1].parent = canon
        if not mirrored:
            canon = Element(clone_el.tag, dict(clone_el._attributes))
            canon.inner_html = serialize_children(clone_el)
        clone_el._rcb_canon = canon
        clone_el._rcb_canon_ver = clone_el._subtree_version
        return canon

    # -- traversal -----------------------------------------------------------------

    @staticmethod
    def _walk(root: Element):
        """The clone root plus its descendant elements, pre-order —
        matching the traversal order used to resolve references on the
        host document."""
        yield root
        yield from root.descendant_elements()

    # -- step 2: relative -> absolute ------------------------------------------------

    def _rewrite_urls_memo(self, element: Element, gen: _GenPass) -> int:
        attributes = _URL_ATTRIBUTES_BY_TAG.get(element.tag)
        if attributes is None:
            return 0
        rewritten = 0
        for attribute in attributes:
            raw = element.get_attribute(attribute)
            if not raw:
                continue
            absolute = self._resolve_memo(raw, gen)
            if absolute is not None and absolute != raw:
                element.set_attribute(attribute, absolute)
                rewritten += 1
        return rewritten

    def _resolve_memo(self, raw: str, gen: _GenPass) -> Optional[str]:
        if gen.url_map and raw in gen.url_map:
            return gen.url_map[raw]
        memo = self._url_memo
        key = (gen.base_key, raw)
        if key in memo:
            memo.move_to_end(key)
            self.url_cache_hits += 1
            return memo[key]
        try:
            parsed = parse_url(raw)
            absolute = raw if parsed.is_absolute else str(resolve_url(gen.base_url, parsed))
        except UrlError:
            absolute = None
        memo[key] = absolute
        if len(memo) > self._url_cache_size:
            memo.popitem(last=False)
        return absolute

    def _rewrite_urls(
        self, element: Element, base_url: Url, url_map: Optional[Dict[str, str]]
    ) -> int:
        """Uncached single-element form (kept for direct callers)."""
        attributes = _URL_ATTRIBUTES_BY_TAG.get(element.tag)
        if attributes is None:
            return 0
        rewritten = 0
        for attribute in attributes:
            raw = element.get_attribute(attribute)
            if not raw:
                continue
            absolute = self._to_absolute(raw, base_url, url_map)
            if absolute is not None and absolute != raw:
                element.set_attribute(attribute, absolute)
                rewritten += 1
        return rewritten

    @staticmethod
    def _to_absolute(
        raw: str, base_url: Url, url_map: Optional[Dict[str, str]]
    ) -> Optional[str]:
        if url_map and raw in url_map:
            return url_map[raw]
        try:
            parsed = parse_url(raw)
            if parsed.is_absolute:
                return raw
            return str(resolve_url(base_url, parsed))
        except UrlError:
            return None

    # -- step 3: absolute -> agent URL (cache mode) -------------------------------------

    def _rewrite_for_cache(
        self,
        element: Element,
        cache_session: CacheReadSession,
        object_map: Dict[str, str],
        sign_target=None,
        should_cache=None,
    ) -> int:
        attributes = _CACHE_ATTRIBUTES_BY_TAG.get(element.tag)
        if attributes is None:
            return 0
        tag = element.tag
        if tag == "link":
            rel = (element.get_attribute("rel") or "").lower()
            if rel not in ("stylesheet", "icon", "shortcut icon"):
                return 0
        if tag == "input" and element.get_attribute("type") != "image":
            return 0
        rewritten = 0
        for attribute in attributes:
            url = element.get_attribute(attribute)
            if not url or not cache_session.contains(url):
                continue
            if should_cache is not None:
                entry = cache_session.peek(url)
                if entry is None or not should_cache(url, entry.content_type, entry.size):
                    continue
            target = "%s?key=%s" % (self.agent_object_path, quote(url))
            object_map[target] = url
            written = sign_target(target) if sign_target is not None else target
            element.set_attribute(attribute, written)
            rewritten += 1
        return rewritten

    # -- step 4: event-attribute rewriting ------------------------------------------------

    @staticmethod
    def _rewrite_events(element: Element, same_tag_index: int) -> None:
        rewrite = _EVENT_REWRITES.get(element.tag)
        if rewrite is None:
            return
        attribute, call = rewrite
        element.set_attribute(attribute, call)
        element.set_attribute(
            REF_ATTRIBUTE, "%s:%d" % (element.tag, same_tag_index)
        )
