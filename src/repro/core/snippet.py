"""Ajax-Snippet: the participant-side synchronization logic.

In the real system Ajax-Snippet is a set of JavaScript functions shipped
inside the initial HTML page; here it is a simulation component attached
to a participant's browser after that page loads.  It reproduces the
protocol exactly (paper §4.2):

* Polling: each XMLHttpRequest-style POST carries the participant id,
  the timestamp of the current content, and any piggybacked actions; a
  new poll is scheduled only after the previous response is processed.
* Response processing (Fig. 5): an empty response just re-arms the
  timer; new content triggers the four-step in-place document update —
  clean the head (keeping the snippet itself), set the head from the
  received hChild records, remove now-useless top-level elements (body
  vs frameset shape changes), then set the remaining top elements.
* Event handlers the host rewrote into the content (``rcbSubmit``,
  ``rcbClick``, ``rcbInput``) are registered in the page's script engine;
  they cancel the default action and queue the corresponding
  :class:`~repro.core.actions.UserAction` for the next poll.

Browser-capability dispatch is modelled too: in ``firefox`` mode the
head is updated by writing ``innerHTML`` directly; in ``ie`` mode each
head child is rebuilt with DOM methods (createElement/appendChild), as
the paper describes for Internet Explorer's read-only head.
"""

from __future__ import annotations

import json
import random
import time
from typing import Callable, List, Optional

from ..browser.browser import Browser
from ..http import RequestFailed
from ..html import Element
from ..net.url import parse_url
from ..obs import RESYNC_FORCED, EventBus, MetricsRegistry, StatsFacade, Tracer
from ..obs.trace import TRACE_HEADER, Span, SpanContext, parse_trace_header
from ..sim import Interrupt
from .actions import (
    ClickAction,
    FormFillAction,
    MouseMoveAction,
    ScrollAction,
    SubmitAction,
    UserAction,
    decode_actions,
)
from .content import REF_ATTRIBUTE
from .delta import DeltaError, apply_delta
from .security import Authenticator
from .transport import TRANSPORT_HEADER, TRANSPORT_MODES, TRANSPORT_POLL, coerce_transport_mode
from .xmlformat import EnvelopeError, NewContent, parse_envelope

__all__ = ["AjaxSnippet", "BackoffPolicy", "SnippetStats"]

_SNIPPET_SCRIPT_ID = "ajax-snippet"

#: Every envelope opens with this declaration — the split marker for a
#: streamed-push response carrying several envelopes back to back.
_XML_DECL = "<?xml version='1.0' encoding='utf-8'?>"


class BackoffPolicy:
    """Retry pacing for a failed poll (and for relay re-attachment).

    ``delay(attempt)`` returns how long to wait before retry number
    ``attempt`` (1-based): ``base * multiplier**(attempt-1)``, capped at
    ``cap``, then spread by ``±jitter`` (a fraction) so that a tier of
    orphaned children re-attaching after a relay death does not stampede
    its grandparent in lockstep.  Jitter draws from a private seeded RNG,
    keeping simulations deterministic.
    """

    def __init__(
        self,
        base: float = 1.0,
        cap: float = 30.0,
        jitter: float = 0.0,
        multiplier: float = 1.0,
        seed: Optional[int] = None,
    ):
        if base <= 0:
            raise ValueError("backoff base must be positive")
        if cap < base:
            raise ValueError("backoff cap must be >= base")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be a fraction in [0, 1)")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        self.base = base
        self.cap = cap
        self.jitter = jitter
        self.multiplier = multiplier
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based)."""
        raw = self.base * (self.multiplier ** max(0, attempt - 1))
        raw = min(raw, self.cap)
        if self.jitter:
            raw *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return raw

    def derive(self, seed_text: str) -> "BackoffPolicy":
        """A same-shaped policy with its own RNG stream, so every
        participant jitters independently but reproducibly."""
        seed = sum(ord(c) * (index + 1) for index, c in enumerate(seed_text))
        return BackoffPolicy(
            base=self.base,
            cap=self.cap,
            jitter=self.jitter,
            multiplier=self.multiplier,
            seed=seed,
        )

    def __repr__(self):
        return "BackoffPolicy(base=%g, cap=%g, x%g, jitter=%g)" % (
            self.base,
            self.cap,
            self.multiplier,
            self.jitter,
        )


class SnippetStats:
    """Counters and the paper's participant-side metrics.

    Attribute names and read/write behaviour are unchanged from the old
    plain-attribute class, but the values now live in registry
    instruments (prefix ``snippet_``, labeled by participant node).
    Counters: ``polls_sent``, ``empty_responses``, ``content_updates``,
    ``delta_updates`` (incremental <delta> applies), ``delta_failures``
    (forced full resyncs), ``action_only_updates``, ``actions_sent``,
    ``connection_errors``.  Gauges: ``last_sync_seconds`` (M2, simulated
    poll-exchange time), ``last_update_seconds`` (M6, wall-clock in-place
    update), ``last_objects_seconds`` (M3/M4, simulated object
    downloads).  Every gauge assignment also feeds a same-named
    ``*_seconds`` histogram — the source of the report's p50/p95/p99.
    """

    _COUNTERS = (
        "polls_sent",
        "empty_responses",
        "content_updates",
        "delta_updates",
        "delta_failures",
        "action_only_updates",
        "actions_sent",
        "connection_errors",
        "transport_switches",
    )
    _GAUGES = ("last_sync_seconds", "last_update_seconds", "last_objects_seconds")
    #: Gauge key -> the histogram fed on each assignment.
    _DISTRIBUTIONS = {
        "last_sync_seconds": "sync_seconds",
        "last_update_seconds": "update_seconds",
        "last_objects_seconds": "objects_seconds",
    }

    def __init__(self, registry: Optional[MetricsRegistry] = None, node: Optional[str] = None):
        facade = StatsFacade(
            registry if registry is not None else MetricsRegistry(),
            prefix="snippet_",
            labels={"node": node} if node else {},
            counters=self._COUNTERS,
            gauges=self._GAUGES,
            histograms=tuple(self._DISTRIBUTIONS.values()),
        )
        object.__setattr__(self, "_facade", facade)
        #: Actions mirrored from the host, in arrival order (plain list).
        object.__setattr__(self, "actions_received", [])

    @property
    def facade(self) -> StatsFacade:
        """The underlying dict-shaped registry view."""
        return self._facade

    def histogram(self, key: str):
        """A latency histogram by unprefixed key (e.g. ``sync_seconds``)."""
        return self._facade.histogram(key)

    def __getattr__(self, name):
        facade = object.__getattribute__(self, "_facade")
        if name in facade:
            return facade[name]
        raise AttributeError(name)

    def __setattr__(self, name, value) -> None:
        facade = self._facade
        if name in facade:
            facade.set(name, value)
            distribution = self._DISTRIBUTIONS.get(name)
            if distribution is not None:
                facade.observe(distribution, value)
        else:
            object.__setattr__(self, name, value)


class AjaxSnippet:
    """Participant-side poller and document updater."""

    #: Span name for this endpoint's content applies; a relay's upstream
    #: snippet overrides with "relay.apply".
    apply_span_name = "snippet.apply"

    def __init__(
        self,
        browser: Browser,
        agent_url: str,
        participant_id: Optional[str] = None,
        secret: Optional[str] = None,
        poll_interval: Optional[float] = None,
        browser_type: str = "firefox",
        fetch_objects: bool = True,
        backoff: Optional[BackoffPolicy] = None,
        transport=None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        events: Optional[EventBus] = None,
        telemetry=None,
    ):
        if browser_type not in ("firefox", "ie"):
            raise ValueError("browser_type must be 'firefox' or 'ie'")
        self.browser = browser
        self.sim = browser.sim
        self.agent_url = parse_url(agent_url)
        if not self.agent_url.is_absolute:
            raise ValueError("agent URL must be absolute")
        self.participant_id = participant_id or browser.name
        self.secret = secret
        self._auth = Authenticator(secret)
        self.poll_interval = poll_interval  # None: use the advertised one
        self.browser_type = browser_type
        self.fetch_objects = fetch_objects
        #: Retry pacing after a failed poll.  None: a constant delay of
        #: one poll interval, the original hardcoded behaviour.
        self.backoff = backoff
        #: Delivery mode this snippet requests ("poll" / "longpoll" /
        #: "push"; None reads RCB_TRANSPORT).  The agent may grant a
        #: different mode via the X-RCB-Transport response header, which
        #: updates this attribute mid-session.
        self.transport_mode = coerce_transport_mode(transport)

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        #: Structured event bus; None disables the event log.
        self.events = events
        #: Client-side telemetry reporter
        #: (:class:`repro.obs.digest.ClientTelemetry`); None (the
        #: default) keeps every poll body byte-identical to the seed —
        #: nothing is measured and nothing rides the wire.
        self.telemetry = telemetry
        #: Context of the last successful apply span — the parent a
        #: relay hands its own downstream re-serves (trace continuity
        #: across tiers).
        self.last_apply_context: Optional[SpanContext] = None

        self.last_doc_time = 0
        self.stats = SnippetStats(self.metrics, node=self.participant_id)
        #: Consecutive poll failures tolerated before giving up.
        self.max_poll_failures = 5
        self._consecutive_failures = 0
        self._outgoing: List[UserAction] = []
        self._poll_proc = None
        self._flush_proc = None
        self._connected = False
        #: Called with each batch of host-mirrored actions (UI hook).
        self.on_actions: Optional[Callable[[List[UserAction]], None]] = None
        #: Called with the NewContent after every applied content update
        #: (full or delta) — how a relay learns the upstream doc_time.
        self.on_content: Optional[Callable[[NewContent], None]] = None
        #: Called once when the poll loop gives up after repeated
        #: failures (not on a deliberate disconnect) — how a relay
        #: learns its upstream died and re-attachment should begin.
        self.on_disconnect: Optional[Callable[[], None]] = None

    # -- connection ------------------------------------------------------------------

    def connect(self):
        """Type the agent URL into the address bar and join the session.

        Generator process: loads the initial page, registers the snippet
        handlers, and returns once the communication channel exists (the
        polling loop is started but not yet fired).
        """
        page = yield from self.browser.navigate(str(self.agent_url), fetch_objects=False)
        script = page.document.get_element_by_id(_SNIPPET_SCRIPT_ID)
        if script is None:
            raise RuntimeError("%s did not serve an RCB initial page" % self.agent_url)
        if self.poll_interval is None:
            advertised = script.get_attribute("data-poll-interval")
            self.poll_interval = float(advertised) if advertised else 1.0
        if self.backoff is None:
            # The pre-configurable behaviour: retry after one poll
            # interval, no growth, no jitter.
            self.backoff = BackoffPolicy(base=self.poll_interval, cap=self.poll_interval)
        self._register_handlers()
        self._connected = True
        self._poll_proc = self.sim.process(self._poll_loop())
        return page

    def attach(self, poll_interval: Optional[float] = None):
        """Join without navigating: start polling against the current page.

        Used by a relay re-attaching to a new upstream after its parent
        died — the browser's current (already synchronized) document is
        preserved, so the new upstream can answer with a delta against
        the relay's last acknowledged state instead of a full resync.

        Generator process: probes the upstream with one poll (raising
        :class:`~repro.http.RequestFailed` if it is unreachable), then
        arms the polling loop.
        """
        if self._connected:
            raise RuntimeError("snippet is already connected")
        if self.browser.page is None:
            raise RuntimeError("attach() requires a loaded page; use connect()")
        if self.poll_interval is None:
            self.poll_interval = poll_interval if poll_interval is not None else 1.0
        if self.backoff is None:
            self.backoff = BackoffPolicy(base=self.poll_interval, cap=self.poll_interval)
        yield from self.poll_once()
        self._register_handlers()
        self._connected = True
        self._poll_proc = self.sim.process(self._poll_loop())

    def disconnect(self) -> None:
        """Stop polling and leave the session."""
        self._connected = False
        if self._poll_proc is not None and self._poll_proc.is_alive:
            self._poll_proc.interrupt("participant left")
        self._poll_proc = None

    @property
    def connected(self) -> bool:
        """Whether the polling channel is up."""
        return self._connected

    # -- polling loop -------------------------------------------------------------------

    def _poll_loop(self):
        try:
            # The first request fires as soon as the initial page loaded.
            while self._connected:
                started = self.sim.now
                try:
                    applied = yield from self.poll_once()
                except RequestFailed:
                    # The host is unreachable (agent stopped, network
                    # partition, host machine gone).  Back off and retry;
                    # give up after a few consecutive failures — the user
                    # would re-type the URL to rejoin (or, for a relay,
                    # re-attachment to an ancestor begins).
                    self.stats.connection_errors += 1
                    if self.telemetry is not None:
                        self.telemetry.record_connection_error()
                    self._consecutive_failures += 1
                    if self._consecutive_failures > self.max_poll_failures:
                        self._connected = False
                        if self.on_disconnect is not None:
                            self.on_disconnect()
                        return
                    yield self.sim.timeout(self.backoff.delay(self._consecutive_failures))
                    continue
                self._consecutive_failures = 0
                yield self.sim.timeout(
                    self._next_poll_delay(applied, self.sim.now - started)
                )
        except Interrupt:
            return

    def _next_poll_delay(self, applied: bool, elapsed: float) -> float:
        """Pacing for the next poll.  Interval polling waits the poll
        interval; held transports (longpoll/push) re-poll immediately
        after a round trip the agent actually parked or served — but an
        instantly-empty answer (holds effectively off on the agent)
        falls back to interval pacing to avoid a busy loop."""
        if self.transport_mode == TRANSPORT_POLL:
            return self.poll_interval
        if applied or elapsed >= 0.5 * self.poll_interval:
            return 0.0
        return self.poll_interval

    def poll_once(self, dedicated: bool = False):
        """One polling round trip; returns True if content was applied.

        ``dedicated`` sends beside the keep-alive connection — the flush
        path under a held transport, where the pooled connection is
        occupied by the parked poll."""
        payload = {
            "participant": self.participant_id,
            "timestamp": self.last_doc_time,
            "actions": [action.to_dict() for action in self._outgoing],
        }
        if self.transport_mode != TRANSPORT_POLL:
            # The key is appended after the seed fields, so a plain
            # polling client's request stays byte-identical to the seed.
            payload["transport"] = self.transport_mode
        telemetry_token = None
        if self.telemetry is not None:
            # Piggyback the pending digest (appended after the seed and
            # transport keys; absent entirely when nothing is pending,
            # so an idle reporter never perturbs the wire).  The
            # snapshot commits on a 200 and rolls back on any failure —
            # exactly-once transfer per hop.
            snap = self.telemetry.snapshot(self.sim.now)
            if snap is not None:
                telemetry_token, blob = snap
                payload["telemetry"] = blob
        body = json.dumps(payload).encode("utf-8")
        self.stats.actions_sent += len(self._outgoing)
        self._outgoing = []

        target = self._auth.sign("POST", "/poll", body)
        url = self.agent_url.replace(path=target.split("?")[0],
                                     query=target.split("?", 1)[1] if "?" in target else None)
        started = self.sim.now
        try:
            response = yield from self.browser.client.post(
                url, body, content_type="application/json", dedicated=dedicated
            )
        except RequestFailed:
            if telemetry_token is not None:
                self.telemetry.rollback(telemetry_token)
            raise
        self.stats.polls_sent += 1
        if self.telemetry is not None:
            if telemetry_token is not None:
                if response.status == 200:
                    self.telemetry.commit(telemetry_token)
                else:
                    self.telemetry.rollback(telemetry_token)
            self.telemetry.record_poll(len(response.body), self.transport_mode)
        self._note_granted_transport(response.headers.get(TRANSPORT_HEADER))
        if response.status != 200 or not response.body:
            self.stats.empty_responses += 1
            return False
        applied = yield from self._process_response(
            response.text(), started, response.headers.get(TRACE_HEADER)
        )
        return applied

    def _note_granted_transport(self, granted: Optional[str]) -> None:
        """Adopt the agent's granted mode when it differs from ours —
        how an adaptive-controller switch reaches the participant."""
        if (
            granted
            and granted in TRANSPORT_MODES
            and granted != self.transport_mode
        ):
            self.transport_mode = granted
            self.stats.transport_switches += 1

    def flush(self):
        """Send queued actions immediately instead of waiting a tick."""
        return self.poll_once()

    # -- response processing (Fig. 5) ------------------------------------------------------

    def _start_apply_span(
        self, trace_header: Optional[str], kind: str, content: NewContent, sync_seconds: float
    ) -> Optional[Span]:
        """Open this endpoint's apply span, parented under the serving
        span whose context arrived in the ``X-RCB-Trace`` header."""
        if self.tracer is None:
            return None
        return self.tracer.start_span(
            self.apply_span_name,
            t=self.sim.now,
            parent=parse_trace_header(trace_header),
            node=self.participant_id,
            kind=kind,
            doc_time=content.doc_time,
            sync_seconds=sync_seconds,
        )

    def _finish_apply_span(self, span: Optional[Span], wall_seconds: float) -> None:
        if span is None:
            return
        span.tags["wall_seconds"] = wall_seconds
        span.finish(self.sim.now)
        self.last_apply_context = span.context

    def _process_response(
        self, xml_text: str, poll_started: float, trace_header: Optional[str] = None
    ):
        """Apply one response body.  A streamed-push response packs
        several envelopes back to back; each starts with the XML
        declaration, so splitting on it recovers the stream, applied in
        arrival order (each delta's base is the envelope before it)."""
        if xml_text.count(_XML_DECL) <= 1:
            applied = yield from self._process_envelope(
                xml_text, poll_started, trace_header
            )
            return applied
        applied_any = False
        for chunk in xml_text.split(_XML_DECL):
            if not chunk:
                continue
            applied = yield from self._process_envelope(
                _XML_DECL + chunk, poll_started, trace_header
            )
            applied_any = applied or applied_any
        return applied_any

    def _sync_seconds(self, poll_started: float, content: NewContent) -> float:
        """M2 for one applied envelope.  Interval polling measures the
        poll round trip.  A held poll parks *before* the change exists,
        so its round trip would charge the idle hold into the metric;
        measure from the change instead (``doc_time`` is stamped from
        the same simulation clock at the root)."""
        started = poll_started
        if self.transport_mode != TRANSPORT_POLL:
            started = max(started, content.doc_time / 1000.0)
        return max(0.0, self.sim.now - started)

    def _process_envelope(
        self, xml_text: str, poll_started: float, trace_header: Optional[str] = None
    ):
        try:
            content = parse_envelope(xml_text)
        except EnvelopeError:
            self.stats.empty_responses += 1
            return False

        if content.is_delta:
            applied = yield from self._process_delta(content, poll_started, trace_header)
            self._deliver_actions(content)
            return applied

        has_content = bool(content.head_children or content.top_elements)
        if has_content:
            sync_seconds = self._sync_seconds(poll_started, content)
            span = self._start_apply_span(trace_header, "full", content, sync_seconds)
            wall_started = time.perf_counter()
            self._apply_update(content)
            self._apply_replicated_cookies(content)
            self.stats.last_update_seconds = time.perf_counter() - wall_started
            self.stats.last_sync_seconds = sync_seconds
            if self.fetch_objects:
                elapsed = yield from self.browser.fetch_current_objects()
                self.stats.last_objects_seconds = elapsed
            # Only now is the participant fully rendered; advancing the
            # timestamp earlier would let is_synced() observe a page whose
            # supplementary objects are still in flight.
            self.last_doc_time = content.doc_time
            self.stats.content_updates += 1
            if self.telemetry is not None:
                # Client truth: staleness is measured here, at apply
                # time, from the envelope's own doc_time stamp.
                self.telemetry.record_apply(
                    max(0, int(self.sim.now * 1000) - content.doc_time),
                    self.stats.last_update_seconds,
                )
            self._finish_apply_span(span, self.stats.last_update_seconds)
            if self.on_content is not None:
                self.on_content(content)
        else:
            self.stats.action_only_updates += 1
            yield self.sim.timeout(0)

        self._deliver_actions(content)
        return has_content

    def _process_delta(
        self, content: NewContent, poll_started: float, trace_header: Optional[str] = None
    ):
        """The fifth update path: apply a <delta> section in place.

        Any mismatch — the delta's base is not exactly our current
        content, an op fails against our tree, malformed ops — resets
        ``last_doc_time`` to zero so the next poll requests a full
        envelope (resync).  Deltas are an optimization, never a
        correctness dependency.
        """
        sync_seconds = self._sync_seconds(poll_started, content)
        span = self._start_apply_span(trace_header, "delta", content, sync_seconds)
        ok = False
        reason = "base-mismatch"
        if content.base_time == self.last_doc_time:
            wall_started = time.perf_counter()
            try:
                self._apply_delta_ops(content)
                ok = True
            except (DeltaError, ValueError):
                ok = False
                reason = "apply-failed"
            self.stats.last_update_seconds = time.perf_counter() - wall_started
        if not ok:
            if span is not None:
                span.tags["failed"] = True
                span.finish(self.sim.now)
            self.stats.delta_failures += 1
            self.last_doc_time = 0  # force a full-envelope resync next poll
            if self.telemetry is not None:
                self.telemetry.record_resync()
            if self.events is not None:
                self.events.emit(
                    RESYNC_FORCED,
                    self.sim.now,
                    node=self.participant_id,
                    trace=span.context if span is not None else parse_trace_header(trace_header),
                    reason=reason,
                    base_time=content.base_time,
                    doc_time=content.doc_time,
                )
            yield self.sim.timeout(0)
            return False
        self._apply_replicated_cookies(content)
        self.stats.last_sync_seconds = sync_seconds
        if self.fetch_objects:
            elapsed = yield from self.browser.fetch_current_objects()
            self.stats.last_objects_seconds = elapsed
        self.last_doc_time = content.doc_time
        self.stats.content_updates += 1
        self.stats.delta_updates += 1
        if self.telemetry is not None:
            self.telemetry.record_apply(
                max(0, int(self.sim.now * 1000) - content.doc_time),
                self.stats.last_update_seconds,
                delta=True,
            )
        self._finish_apply_span(span, self.stats.last_update_seconds)
        if self.on_content is not None:
            self.on_content(content)
        return True

    def _apply_delta_ops(self, content: NewContent) -> None:
        """Apply the ops with Ajax-Snippet's own <script> lifted out, so
        the document matches the agent's canonical snapshot exactly."""
        document = self.browser.page.document
        html = document.document_element
        head = document.head
        if html is None or head is None:
            raise DeltaError("participant document has no html/head")
        snippet_script = None
        for node in head.children:
            if node.tag == "script" and node.get_attribute("id") == _SNIPPET_SCRIPT_ID:
                snippet_script = node
                head.remove_child(node)
                break
        try:
            ops = json.loads(content.delta_ops_json)
            apply_delta(
                html,
                ops,
                metrics=self.metrics,
                node=self.participant_id,
                events=self.events,
                t=self.sim.now,
            )
        finally:
            if snippet_script is not None:
                target_head = document.head
                if target_head is not None:
                    target_head.insert_before(snippet_script, target_head.first_child)
        self.browser.page.version += 1

    def _apply_update(self, content: NewContent) -> None:
        """The four-step in-place update of the current document."""
        document = self.browser.page.document
        head = document.head
        html = document.document_element

        # Step 1: clean the head, always keeping Ajax-Snippet itself.
        snippet_script = None
        for node in list(head.child_nodes):
            if (
                isinstance(node, Element)
                and node.tag == "script"
                and node.get_attribute("id") == _SNIPPET_SCRIPT_ID
            ):
                snippet_script = node
                continue
            head.remove_child(node)
        if snippet_script is None:  # recreate if the host page lost it
            snippet_script = Element("script", {"id": _SNIPPET_SCRIPT_ID})
            head.insert_before(snippet_script, head.first_child)

        # Step 2: set the head from the received hChild records.
        for record in content.head_children:
            if self.browser_type == "firefox":
                # Firefox: head innerHTML is writable — parse directly.
                child = Element(record.tag, dict(record.attributes))
                child.inner_html = record.inner_html
            else:
                # IE: rebuild via DOM methods (createElement/appendChild).
                child = document.create_element(record.tag)
                for name, value in record.attributes:
                    child.set_attribute(name, value)
                child.inner_html = record.inner_html
            head.append_child(child)

        # Step 3: remove top-level elements the new content obsoletes.
        new_names = {top.name for top in content.top_elements}
        for node in list(html.children):
            if node.tag in ("body", "frameset", "noframes") and node.tag not in new_names:
                html.remove_child(node)

        # Step 4: set the remaining top elements, in received order.
        for top in content.top_elements:
            element = None
            for node in html.children:
                if node.tag == top.name:
                    element = node
                    break
            if element is None:
                element = Element(top.name)
                html.append_child(element)
            for name, _value in list(element.attributes):
                element.remove_attribute(name)
            for name, value in top.attributes:
                element.set_attribute(name, value)
            element.inner_html = top.inner_html

        self.browser.page.version += 1

    def _apply_replicated_cookies(self, content: NewContent) -> None:
        """Install host-replicated cookies into this browser's jar so
        non-cache-mode object fetches share the host's origin session."""
        if content.cookies_json in ("", "[]"):
            return
        try:
            records = json.loads(content.cookies_json)
        except ValueError:
            return
        for record in records:
            try:
                self.browser.cookie_jar.set(
                    record["host"], record["name"], record["value"], record.get("path", "/")
                )
            except (KeyError, TypeError, ValueError):
                continue

    def _deliver_actions(self, content: NewContent) -> None:
        actions = decode_actions(content.user_actions_json)
        if not actions:
            return
        self.stats.actions_received.extend(actions)
        if self.on_actions is not None:
            self.on_actions(actions)

    # -- participant-side event handlers --------------------------------------------------------

    def _register_handlers(self) -> None:
        scripts = self.browser.page.scripts
        scripts.register("rcbSubmit", self._on_submit)
        scripts.register("rcbClick", self._on_click)
        scripts.register("rcbInput", self._on_input)
        scripts.register("rcbKeySubmit", lambda el, ev: False)

    def _on_submit(self, form: Element, _event) -> bool:
        ref = form.get_attribute(REF_ATTRIBUTE)
        if ref:
            fields = Browser.collect_form_fields(form)
            self.queue_action(SubmitAction(ref, fields))
        return False  # never navigate the participant browser

    def _on_click(self, element: Element, _event) -> bool:
        ref = element.get_attribute(REF_ATTRIBUTE)
        if ref:
            self.queue_action(ClickAction(ref))
        return False

    def _on_input(self, element: Element, _event) -> bool:
        ref = self._enclosing_form_ref(element)
        name = element.get_attribute("name")
        if ref and name:
            value = (
                element.text_content
                if element.tag == "textarea"
                else element.get_attribute("value") or ""
            )
            self.queue_action(FormFillAction(ref, {name: value}))
        return True

    @staticmethod
    def _enclosing_form_ref(element: Element) -> Optional[str]:
        node = element
        while node is not None:
            if isinstance(node, Element) and node.tag == "form":
                return node.get_attribute(REF_ATTRIBUTE)
            node = node.parent
        return None

    # -- action queueing ----------------------------------------------------------------------------

    def queue_action(self, action: UserAction) -> None:
        """Piggyback ``action`` on the next polling request.

        Under a held transport the next scheduled poll may be parked at
        the agent for seconds, so a second, immediate request carries
        the action up (comet's send channel); the agent answers an
        actions-carrying poll right away.
        """
        self._outgoing.append(action)
        if (
            self.transport_mode != TRANSPORT_POLL
            and self._connected
            and self._flush_proc is None
        ):
            self._flush_proc = self.sim.process(self._flush_held())

    def _flush_held(self):
        span = None
        if self.tracer is not None:
            # The flush round trip is the held transport's send channel;
            # its span covers the whole dedicated exchange (any apply it
            # triggers rides inside — part of the flush's cost).
            span = self.tracer.start_span(
                "transport.flush",
                t=self.sim.now,
                node=self.participant_id or self.browser.name,
                actions=len(self._outgoing),
            )
        try:
            yield from self.poll_once(dedicated=True)
        except RequestFailed:
            self.stats.connection_errors += 1
            if self.telemetry is not None:
                self.telemetry.record_connection_error()
        finally:
            self._flush_proc = None
            if span is not None:
                span.finish(self.sim.now)

    def report_mouse_move(self, x: int, y: int) -> None:
        """Queue a pointer-mirroring action for the next poll."""
        self.queue_action(MouseMoveAction(x, y))

    def report_scroll(self, offset: int) -> None:
        """Queue a scroll-mirroring action for the next poll."""
        self.queue_action(ScrollAction(offset))
