"""Experiment metrics (M1-M6), harness, and figure/table renderers."""

from .harness import ExperimentResult, POLL_INTERVAL, run_experiment, run_round
from .metrics import SiteMeasurement, average_measurements, measure_site_cobrowsing
from .report import (
    bar,
    render_delta_summary,
    render_figure_m1_m2,
    render_figure_m3_m4,
    render_fleet_table,
    render_health_summary,
    render_relay_summary,
    render_shape_checks,
    render_table1,
    render_trace_summary,
)

__all__ = [
    "ExperimentResult",
    "POLL_INTERVAL",
    "SiteMeasurement",
    "average_measurements",
    "bar",
    "measure_site_cobrowsing",
    "render_delta_summary",
    "render_figure_m1_m2",
    "render_figure_m3_m4",
    "render_fleet_table",
    "render_health_summary",
    "render_relay_summary",
    "render_shape_checks",
    "render_table1",
    "render_trace_summary",
    "run_experiment",
    "run_round",
]
