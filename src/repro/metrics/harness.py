"""Experiment harness reproducing the paper's §5.1 methodology.

One *round* co-browses all 20 Table-1 homepages in a given mode (cache
or non-cache) on a fresh testbed with cleaned caches; the procedure is
repeated several times (the paper uses five) and per-site averages are
reported.  The polling interval is one second, as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.session import CoBrowsingSession
from ..obs import EventBus, Histogram, MetricsRegistry, Tracer
from ..webserver.sites import TABLE1_SITES, SiteSpec
from ..workloads.environments import build_lan, build_wan
from .metrics import SiteMeasurement, average_measurements, measure_site_cobrowsing

__all__ = ["ExperimentResult", "run_round", "run_experiment", "POLL_INTERVAL"]

#: The paper sets Ajax-Snippet's polling interval to one second.
POLL_INTERVAL = 1.0


class ExperimentResult:
    """Per-site averaged measurements for one (environment, mode) cell.

    ``metrics`` (optional, set by :func:`run_experiment`) is the registry
    the rounds published into; its ``m5_seconds`` / ``m6_seconds``
    histograms hold every raw per-site observation across all rounds —
    the distributions behind the report's p50/p95/p99 columns.
    """

    def __init__(
        self,
        environment: str,
        cache_mode: bool,
        rows: List[SiteMeasurement],
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.environment = environment
        self.cache_mode = cache_mode
        self.rows = rows
        self.metrics = metrics

    def distribution(self, name: str) -> Optional[Histogram]:
        """A named histogram from the run's registry (None if absent)."""
        if self.metrics is None:
            return None
        instrument = self.metrics.find(name)
        return instrument if isinstance(instrument, Histogram) else None

    def by_site(self) -> Dict[str, SiteMeasurement]:
        """Rows indexed by site name."""
        return {row.site: row for row in self.rows}

    def sites_where(self, predicate) -> List[str]:
        """Names of sites whose row satisfies ``predicate``."""
        return [row.site for row in self.rows if predicate(row)]

    def __repr__(self):
        return "ExperimentResult(%s, cache=%s, %d sites)" % (
            self.environment,
            self.cache_mode,
            len(self.rows),
        )


def run_round(
    environment: str = "lan",
    cache_mode: bool = True,
    sites: Optional[Sequence[SiteSpec]] = None,
    poll_interval: float = POLL_INTERVAL,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    events: Optional[EventBus] = None,
) -> List[SiteMeasurement]:
    """One round: fresh testbed, cleaned caches, visit every site once.

    ``metrics``/``tracer``/``events`` are threaded into the session so an
    experiment-level registry accumulates every round's instruments (and,
    with a tracer/bus, every poll exchange's spans and events).
    """
    if environment == "lan":
        testbed = build_lan()
    elif environment == "wan":
        testbed = build_wan()
    else:
        raise ValueError("unknown environment %r" % (environment,))
    sites = list(sites if sites is not None else TABLE1_SITES)

    session = CoBrowsingSession(
        testbed.host_browser,
        cache_mode=cache_mode,
        poll_interval=poll_interval,
        metrics=metrics,
        tracer=tracer,
        events=events,
    )
    testbed.clear_caches()

    measurements: List[SiteMeasurement] = []

    def round_process():
        snippet = yield from session.join(testbed.participant_browser)
        for spec in sites:
            row = yield from measure_site_cobrowsing(
                testbed, session, snippet, spec.host, spec.page_kb
            )
            measurements.append(row)
        session.leave(snippet)

    testbed.run(round_process())
    session.close()
    return measurements


def run_experiment(
    environment: str = "lan",
    cache_mode: bool = True,
    repetitions: int = 5,
    sites: Optional[Sequence[SiteSpec]] = None,
    poll_interval: float = POLL_INTERVAL,
    tracer: Optional[Tracer] = None,
    events: Optional[EventBus] = None,
) -> ExperimentResult:
    """The full §5.1 procedure: ``repetitions`` rounds, averaged.

    Beyond the averaged rows, every raw per-site M5/M6 observation lands
    in the result registry's ``m5_seconds``/``m6_seconds`` histograms, so
    the tails survive the averaging.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    sites = list(sites if sites is not None else TABLE1_SITES)
    registry = MetricsRegistry()
    m5 = registry.histogram("m5_seconds")
    m6 = registry.histogram("m6_seconds")
    per_site: Dict[str, List[SiteMeasurement]] = {spec.host: [] for spec in sites}
    for _ in range(repetitions):
        for row in run_round(
            environment,
            cache_mode,
            sites,
            poll_interval,
            metrics=registry,
            tracer=tracer,
            events=events,
        ):
            per_site[row.site].append(row)
            m5.observe(row.m5)
            m6.observe(row.m6)
    rows = [average_measurements(per_site[spec.host]) for spec in sites]
    return ExperimentResult(environment, cache_mode, rows, metrics=registry)
