"""Text renderers for the paper's figures and tables.

The benchmark harness prints the same rows/series the paper reports:
Figure 6/7 (M1 vs M2 per site), Figure 8 (M3 vs M4 per site), Table 1
(page size, M5 non-cache, M5 cache, M6), and the derived shape claims.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..obs import Histogram, percentile
from .metrics import SiteMeasurement

__all__ = [
    "render_delta_summary",
    "render_figure_m1_m2",
    "render_figure_m3_m4",
    "render_fleet_table",
    "render_health_summary",
    "render_relay_summary",
    "render_table1",
    "render_trace_summary",
    "render_shape_checks",
    "bar",
]


def bar(value: float, scale: float, width: int = 40) -> str:
    """A crude text bar for figure-style output."""
    if scale <= 0:
        return ""
    filled = int(round(min(value / scale, 1.0) * width))
    return "#" * filled


def render_figure_m1_m2(
    rows: Sequence[SiteMeasurement], environment: str
) -> str:
    """Figure 6/7: per-site HTML document load time, M1 vs M2."""
    scale = max(max(r.m1 for r in rows), max(r.m2 for r in rows))
    lines = [
        "Figure (%s): HTML document load time — M1 (host<-server) vs M2 (participant<-host)"
        % environment,
        "%-4s %-16s %9s %9s  %s" % ("#", "site", "M1 (s)", "M2 (s)", "bars: M1 then M2"),
    ]
    for index, row in enumerate(rows, start=1):
        lines.append(
            "%-4d %-16s %9.3f %9.3f  |%s" % (index, row.site, row.m1, row.m2, bar(row.m1, scale))
        )
        lines.append("%-4s %-16s %9s %9s  |%s" % ("", "", "", "", bar(row.m2, scale)))
    faster = sum(1 for r in rows if r.m2 < r.m1)
    lines.append(
        "M2 < M1 on %d of %d sites; max M2 = %.3f s"
        % (faster, len(rows), max(r.m2 for r in rows))
    )
    return "\n".join(lines)


def render_figure_m3_m4(
    non_cache_rows: Sequence[SiteMeasurement],
    cache_rows: Sequence[SiteMeasurement],
    environment: str,
) -> str:
    """Figure 8: supplementary-object download time, M3 vs M4."""
    cache_by_site = {r.site: r for r in cache_rows}
    pairs = [(r, cache_by_site[r.site]) for r in non_cache_rows if r.site in cache_by_site]
    scale = max(
        max((r.m3 or 0.0) for r, _c in pairs), max((c.m4 or 0.0) for _r, c in pairs)
    )
    lines = [
        "Figure (%s): supplementary object download — M3 (origin) vs M4 (host cache)"
        % environment,
        "%-4s %-16s %9s %9s %8s" % ("#", "site", "M3 (s)", "M4 (s)", "gain"),
    ]
    for index, (non_cache, cache) in enumerate(pairs, start=1):
        m3 = non_cache.m3 or 0.0
        m4 = cache.m4 or 0.0
        gain = (m3 / m4) if m4 > 0 else float("inf")
        lines.append(
            "%-4d %-16s %9.3f %9.3f %7.2fx" % (index, non_cache.site, m3, m4, gain)
        )
    wins = sum(1 for nc, c in pairs if (c.m4 or 0) < (nc.m3 or 0))
    lines.append("M4 < M3 on %d of %d sites" % (wins, len(pairs)))
    return "\n".join(lines)


def render_table1(
    non_cache_rows: Sequence[SiteMeasurement],
    cache_rows: Sequence[SiteMeasurement],
    distributions: Optional[Dict[str, Histogram]] = None,
) -> str:
    """Table 1: homepage size and processing time of the 20 sites.

    ``distributions`` (label -> histogram of raw observations, e.g. from
    :meth:`~repro.metrics.harness.ExperimentResult.distribution`) appends
    a p50/p95/p99 block — per-site means hide the tail the paper's
    slowest sites live in.
    """
    cache_by_site = {r.site: r for r in cache_rows}
    lines = [
        "Table 1: homepage size and processing time",
        "%-4s %-16s %10s %14s %12s %10s"
        % ("#", "site", "size (KB)", "M5 non-cache", "M5 cache", "M6"),
    ]
    for index, row in enumerate(non_cache_rows, start=1):
        cache_row = cache_by_site.get(row.site)
        lines.append(
            "%-4d %-16s %10.1f %13.4fs %11.4fs %9.4fs"
            % (
                index,
                row.site,
                row.page_kb,
                row.m5,
                cache_row.m5 if cache_row else float("nan"),
                row.m6,
            )
        )
    if distributions:
        lines.append("Distributions over raw per-site observations (all rounds):")
        lines.append(
            "  %-16s %6s %10s %10s %10s %10s"
            % ("metric", "n", "mean", "p50", "p95", "p99")
        )
        for label, histogram in distributions.items():
            if histogram is None:
                continue
            lines.append(
                "  %-16s %6d %9.4fs %9.4fs %9.4fs %9.4fs"
                % (
                    label,
                    histogram.count,
                    histogram.mean,
                    histogram.p50,
                    histogram.p95,
                    histogram.p99,
                )
            )
    return "\n".join(lines)


def render_shape_checks(checks: Dict[str, bool]) -> str:
    """A PASS/FAIL list for the paper's qualitative claims."""
    lines = ["Shape checks (paper claim -> this reproduction):"]
    for name, passed in checks.items():
        lines.append("  [%s] %s" % ("PASS" if passed else "FAIL", name))
    return "\n".join(lines)


def render_delta_summary(agent_stats: Dict[str, int], title: str = "Delta envelopes") -> str:
    """Delta-vs-full accounting from an :class:`RCBAgent`'s stats dict:
    how many content responses went out incrementally and the bytes the
    diffs saved relative to full envelopes."""
    delta = agent_stats.get("delta_responses", 0)
    full = agent_stats.get("full_responses", 0)
    fallbacks = agent_stats.get("delta_fallbacks", 0)
    delta_bytes = agent_stats.get("delta_bytes_sent", 0)
    full_bytes = agent_stats.get("full_bytes_sent", 0)
    saved = agent_stats.get("delta_bytes_saved", 0)
    total = delta + full
    lines = [
        "%s: %d of %d content responses incremental" % (title, delta, total),
        "  full envelopes: %d (%d resync/oversize fallbacks)" % (full, fallbacks),
        "  bytes on the wire: %d delta + %d full" % (delta_bytes, full_bytes),
        "  bytes saved by diffs: %d" % saved,
    ]
    if delta and saved:
        lines.append(
            "  average delta response is %.1fx smaller than the full envelope"
            % ((delta_bytes + saved) / max(1, delta_bytes))
        )
    return "\n".join(lines)


def render_relay_summary(summary: Dict[str, object], title: str = "Relay fan-out") -> str:
    """Fan-out tree accounting from
    :meth:`~repro.core.session.CoBrowsingSession.relay_summary`: what the
    host's uplink carried versus what the relay tiers absorbed, and the
    per-tier poll load and content-sync latency."""
    host_bytes = summary.get("host_content_bytes", 0)
    relay_bytes = summary.get("relay_content_bytes", 0)
    total_bytes = host_bytes + relay_bytes
    lines = [
        "%s: %d members in a branching-%s tree, depth %d"
        % (
            title,
            summary.get("members", 0),
            summary.get("branching"),
            summary.get("depth", 0),
        ),
        "  host served %d polls, %d envelope bytes, %d object requests"
        % (
            summary.get("host_polls", 0),
            host_bytes,
            summary.get("host_object_requests", 0),
        ),
        "  relays absorbed %d envelope bytes (host uplink saved %.0f%%) "
        "and %d object requests"
        % (
            relay_bytes,
            100.0 * relay_bytes / total_bytes if total_bytes else 0.0,
            summary.get("relay_object_requests", 0),
        ),
        "  re-attachments after relay failures: %d"
        % summary.get("reattachments", 0),
    ]
    tiers = summary.get("tiers") or {}
    if tiers:
        lines.append(
            "  %-6s %6s %8s %14s %14s %9s %9s %9s"
            % (
                "tier",
                "nodes",
                "polls",
                "content bytes",
                "mean sync (s)",
                "p50 (s)",
                "p95 (s)",
                "p99 (s)",
            )
        )
        for depth in sorted(tiers):
            tier = tiers[depth]
            lines.append(
                "  %-6d %6d %8d %14d %14.3f %9.3f %9.3f %9.3f"
                % (
                    depth,
                    tier.get("nodes", 0),
                    tier.get("polls", 0),
                    tier.get("content_bytes", 0),
                    tier.get("mean_sync_seconds", 0.0),
                    tier.get("sync_p50", 0.0),
                    tier.get("sync_p95", 0.0),
                    tier.get("sync_p99", 0.0),
                )
            )
    return "\n".join(lines)


def render_health_summary(report, title: str = "Session health") -> str:
    """One verdict table from a :class:`~repro.obs.health.HealthReport`:
    every (rule, subject) row with its windowed value against the WARN /
    BREACH thresholds, worst verdicts first, breached subjects named in
    the footer."""
    lines = [
        "%s at t=%.3fs: %s (%d verdicts, %d breaching, %d warning)"
        % (
            title,
            report.t,
            report.level,
            len(report.verdicts),
            len(report.breaches()),
            len(report.warnings()),
        ),
        "  %-7s %-22s %-14s %12s %12s %12s"
        % ("level", "rule", "subject", "value", "warn", "breach"),
    ]
    severity = {"BREACH": 0, "WARN": 1, "OK": 2}
    ordered = sorted(
        report.verdicts,
        key=lambda v: (severity.get(v.level, 3), v.rule, v.subject),
    )
    for verdict in ordered:
        suffix = " (%s)" % verdict.detail if verdict.detail else ""
        lines.append(
            "  %-7s %-22s %-14s %12.3f %12.3f %12.3f%s%s"
            % (
                verdict.level,
                verdict.rule,
                verdict.subject,
                verdict.value,
                verdict.warn,
                verdict.breach,
                " " + verdict.unit if verdict.unit else "",
                suffix,
            )
        )
    breached = report.breached_subjects()
    if breached:
        lines.append("  BREACH affects: %s" % ", ".join(breached))
    return "\n".join(lines)


def render_trace_summary(source, max_traces: int = 8) -> str:
    """A per-trace span-tree listing plus per-stage duration percentiles.

    ``source`` is a :class:`~repro.obs.trace.Tracer` or an iterable of
    spans.  Each trace renders as an indented tree (parent-linked spans
    under their parents, in sim-time order), so one participant poll in
    a relayed session reads top to bottom: host.generate, host.serve,
    relay.apply, relay.serve, snippet.apply.
    """
    spans = source.spans if hasattr(source, "spans") else list(source)
    if not spans:
        return "Trace summary: no spans recorded"
    by_trace: Dict[str, List] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    lines = ["Trace summary: %d spans in %d traces" % (len(spans), len(by_trace))]

    shown = 0
    for trace_id, members in by_trace.items():
        if shown >= max_traces:
            lines.append(
                "  ... %d more traces not shown" % (len(by_trace) - shown)
            )
            break
        shown += 1
        lines.append("  trace %s (%d spans)" % (trace_id, len(members)))
        ids = {span.span_id for span in members}
        children: Dict[str, List] = {}
        roots = []
        for span in members:
            if span.parent_id in ids:
                children.setdefault(span.parent_id, []).append(span)
            else:
                roots.append(span)

        def walk(span, depth):
            lines.append(
                "    %s%-16s @%-16s %8.3fs +%.3fs %s"
                % (
                    "  " * depth,
                    span.name,
                    span.node or "?",
                    span.start,
                    span.duration,
                    span.tags.get("kind", ""),
                )
            )
            for child in sorted(children.get(span.span_id, []), key=lambda s: s.start):
                walk(child, depth + 1)

        for root in sorted(roots, key=lambda s: s.start):
            walk(root, 0)

    durations: Dict[str, List[float]] = {}
    for span in spans:
        durations.setdefault(span.name, []).append(span.duration)
    lines.append("  Per-stage sim-time durations:")
    lines.append(
        "  %-18s %6s %10s %10s %10s" % ("span", "n", "p50", "p95", "p99")
    )
    for name in sorted(durations):
        samples = durations[name]
        lines.append(
            "  %-18s %6d %9.3fs %9.3fs %9.3fs"
            % (
                name,
                len(samples),
                percentile(samples, 50),
                percentile(samples, 95),
                percentile(samples, 99),
            )
        )
    return "\n".join(lines)


def render_fleet_table(
    session,
    profile=None,
    report=None,
    now: Optional[float] = None,
    title: str = "Fleet",
) -> str:
    """The ``repro top`` body: one row per pipeline node.

    Host first, then relay tiers, then flat participants.  Per-node
    sim self-time and wall compute come from a
    :class:`~repro.obs.profile.Profile` (when given), downlink bytes/s
    from the session's attached :class:`~repro.obs.ByteAttribution`,
    and the grade column is the worst health verdict naming that node
    or member in ``report``.
    """
    by_node: Dict[str, Dict[str, float]] = profile.by_node() if profile is not None else {}
    attribution = getattr(session, "attribution", None)
    rates: Dict[str, float] = {}
    if attribution is not None and now is not None:
        rates = attribution.member_rates(now)

    severity = {"BREACH": 0, "WARN": 1, "OK": 2}

    def grade(*names: str) -> str:
        if report is None:
            return "-"
        worst = "OK"
        for verdict in report.verdicts:
            if verdict.subject in names and severity.get(verdict.level, 3) < severity.get(
                worst, 3
            ):
                worst = verdict.level
        return worst

    def costs(node_name: str) -> tuple:
        row = by_node.get(node_name)
        if row is None:
            return 0.0, 0.0
        return row["self"] * 1e3, row["wall"] * 1e3

    lines = [
        "%s: %d relays, %d flat participants"
        % (title, len(session.relays), len(session.participants)),
        "%-14s %5s %-9s %11s %11s %12s %-7s"
        % ("node", "tier", "transport", "self(ms)", "wall(ms)", "bytes/s", "grade"),
    ]

    def row(name, tier, transport, node_name, member_id=None):
        self_ms, wall_ms = costs(node_name)
        rate = rates.get(member_id, 0.0) if member_id is not None else 0.0
        lines.append(
            "%-14s %5s %-9s %11.3f %11.3f %12.1f %-7s"
            % (
                name,
                tier,
                transport,
                self_ms,
                wall_ms,
                rate,
                grade(name, node_name),
            )
        )

    host_node = session.agent._node_name()
    row(host_node, 0, "-", host_node)
    for member_id in sorted(session.relays):
        relay = session.relays[member_id]
        tier = session.member_tier(member_id)
        upstream = getattr(relay, "upstream", None)
        transport = getattr(upstream, "transport_mode", "?") if upstream else "?"
        row(member_id, tier if tier is not None else "?", transport, relay._node_name(), member_id)
    for member_id in sorted(session.participants):
        snippet = session.participants[member_id]
        tier = session.member_tier(member_id)
        row(
            member_id,
            tier if tier is not None else "?",
            getattr(snippet, "transport_mode", "?"),
            member_id,
            member_id,
        )
    return "\n".join(lines)
