"""The paper's six performance metrics (§5.1.1).

* **M1** — time for the host browser to load the HTML document of a
  homepage from its web server.
* **M2** — time for the participant browser to load the content of the
  same HTML document from the host browser.
* **M3** — time for the participant browser to download the page's
  supplementary objects in non-cache mode (from the origin servers).
* **M4** — the same download in cache mode (from the host browser).
* **M5** — time for the host browser to generate the response content
  for an HTML document (Fig. 3 procedure) — wall-clock, measured on the
  real Python implementation.
* **M6** — time for the participant browser to update its document from
  the new content (Fig. 5 procedure) — wall-clock.

M1–M4 are simulated-network quantities; M5/M6 are real compute.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["SiteMeasurement", "average_measurements", "measure_site_cobrowsing"]


class SiteMeasurement:
    """All six metrics for one homepage visit."""

    __slots__ = ("site", "page_kb", "m1", "m2", "m3", "m4", "m5", "m6", "cache_mode")

    def __init__(
        self,
        site: str,
        page_kb: float,
        m1: float,
        m2: float,
        m3: Optional[float],
        m4: Optional[float],
        m5: float,
        m6: float,
        cache_mode: bool,
    ):
        self.site = site
        self.page_kb = page_kb
        self.m1 = m1
        self.m2 = m2
        self.m3 = m3
        self.m4 = m4
        self.m5 = m5
        self.m6 = m6
        self.cache_mode = cache_mode

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (for serialization and reporting)."""
        return {
            "site": self.site,
            "page_kb": self.page_kb,
            "m1": self.m1,
            "m2": self.m2,
            "m3": self.m3,
            "m4": self.m4,
            "m5": self.m5,
            "m6": self.m6,
            "cache_mode": self.cache_mode,
        }

    def __repr__(self):
        return "SiteMeasurement(%s: m1=%.3f m2=%.3f)" % (self.site, self.m1, self.m2)


def measure_site_cobrowsing(testbed, session, snippet, site_host: str, page_kb: float):
    """Generator process: co-browse one homepage and collect the metrics.

    The caller controls cache-vs-non-cache mode through the session's
    agent configuration; this routine records whichever of M3/M4 applies.
    """
    page = yield from session.host_navigate("http://%s/" % site_host)
    yield from session.wait_until_synced(snippet, timeout=600)

    cache_mode = session.agent.cache_mode
    objects_time = snippet.stats.last_objects_seconds
    return SiteMeasurement(
        site=site_host,
        page_kb=page_kb,
        m1=page.html_load_time,
        m2=snippet.stats.last_sync_seconds,
        m3=None if cache_mode else objects_time,
        m4=objects_time if cache_mode else None,
        m5=session.agent.stats["last_generation_seconds"],
        m6=snippet.stats.last_update_seconds,
        cache_mode=cache_mode,
    )


def average_measurements(rows: List[SiteMeasurement]) -> SiteMeasurement:
    """Average repeated measurements of the same site."""
    if not rows:
        raise ValueError("no measurements to average")
    site = rows[0].site
    if any(r.site != site for r in rows):
        raise ValueError("measurements are for different sites")

    def mean(values):
        values = [v for v in values if v is not None]
        return sum(values) / len(values) if values else None

    return SiteMeasurement(
        site=site,
        page_kb=rows[0].page_kb,
        m1=mean([r.m1 for r in rows]),
        m2=mean([r.m2 for r in rows]),
        m3=mean([r.m3 for r in rows]),
        m4=mean([r.m4 for r in rows]),
        m5=mean([r.m5 for r in rows]),
        m6=mean([r.m6 for r in rows]),
        cache_mode=rows[0].cache_mode,
    )
