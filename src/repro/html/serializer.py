"""DOM to markup serialization (outerHTML / innerHTML getters).

The serializer and the parser are designed as a fixed point: for any DOM
tree, ``parse(serialize(tree))`` yields an equivalent tree, and for any
already-parsed markup, serialize∘parse is idempotent.  RCB relies on
this: the host extracts innerHTML strings (paper §4.1.2), ships them in
the XML envelope, and the participant re-parses them — any drift would
corrupt the co-browsed page on the second synchronization.

**Segment cache.**  The incremental generation pipeline re-serializes a
kept clone tree after surgically replacing only the dirty subtrees.  The
:class:`SegmentCache` memoizes serialized element subtrees keyed by
``(id(node), node.subtree_version)``: a mutation anywhere in a subtree
bumps the subtree version of every ancestor (see :mod:`repro.html.dom`),
so dirty regions miss and are re-serialized while untouched siblings
come back as cached strings.  Version draws are globally unique, which
makes a stale hit after ``id()`` recycling impossible: a recycled id
would have to pair with a version drawn before the new node existed.
The cached entry points are :func:`serialize_node_cached` and
:func:`serialize_children_cached`; the plain serializers never consult
the cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from .dom import (
    Comment,
    Document,
    Element,
    Node,
    RAW_TEXT_ELEMENTS,
    Text,
)
from .entities import escape_attribute, escape_text

__all__ = [
    "serialize_node",
    "serialize_children",
    "serialize_document",
    "serialize_node_cached",
    "serialize_children_cached",
    "transform_children_cached",
    "SegmentCache",
    "segment_cache",
]


def serialize_document(document: Document) -> str:
    """Serialize a full Document (doctype + children) to markup."""
    parts: List[str] = []
    if document.doctype:
        parts.append("<!%s>" % document.doctype)
    for child in document.child_nodes:
        _serialize_into(child, parts, raw=False)
    return "".join(parts)


def serialize_node(node: Node) -> str:
    """Serialize one node to markup (outerHTML for elements)."""
    if isinstance(node, Document):
        return serialize_document(node)
    parts: List[str] = []
    _serialize_into(node, parts, raw=False)
    return "".join(parts)


def serialize_children(node) -> str:
    """Serialize a node's children (the innerHTML getter)."""
    parts: List[str] = []
    raw = isinstance(node, Element) and node.tag in RAW_TEXT_ELEMENTS
    for child in node.child_nodes:
        _serialize_into(child, parts, raw=raw)
    return "".join(parts)


def _open_tag_into(node: Element, parts: List[str]) -> None:
    parts.append("<%s" % node.tag)
    for name, value in node.attributes:
        if value == "":
            parts.append(" %s" % name)
        else:
            parts.append(' %s="%s"' % (name, escape_attribute(value)))
    parts.append(">")


def _serialize_into(node: Node, parts: List[str], raw: bool) -> None:
    if isinstance(node, Text):
        parts.append(node.data if raw else escape_text(node.data))
    elif isinstance(node, Comment):
        parts.append("<!--%s-->" % node.data)
    elif isinstance(node, Element):
        _open_tag_into(node, parts)
        if node.is_void:
            return
        child_raw = node.tag in RAW_TEXT_ELEMENTS
        for child in node.child_nodes:
            _serialize_into(child, parts, raw=child_raw)
        parts.append("</%s>" % node.tag)
    else:
        raise TypeError("cannot serialize %r" % (node,))


# -- segment cache -----------------------------------------------------------------


class SegmentCache:
    """LRU of serialized element subtrees keyed by ``(id, subtree_version)``.

    An element's serialization is context-independent (the raw-text flag
    only affects Text nodes directly, and an element derives its
    children's flag from its own tag), so entries can be reused at any
    position in any tree.  Bounded both by entry count and total cached
    bytes; strings shorter than ``min_length`` are not worth an entry.
    """

    def __init__(self, capacity: int = 2048, max_bytes: int = 16 * 1024 * 1024,
                 min_length: int = 32):
        if capacity <= 0 or max_bytes <= 0:
            raise ValueError("capacity and max_bytes must be positive")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.min_length = min_length
        self._entries: "OrderedDict[tuple, str]" = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, node: Element) -> Optional[str]:
        """The cached serialization of ``node``'s current state, or None."""
        key = (id(node), node._subtree_version)
        text = self._entries.get(key)
        if text is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return text

    def put(self, node: Element, text: str) -> None:
        """Retain a serialization (no-op below the length threshold)."""
        if len(text) < self.min_length:
            return
        key = (id(node), node._subtree_version)
        existing = self._entries.pop(key, None)
        if existing is not None:
            self.current_bytes -= len(existing)
        self._entries[key] = text
        self.current_bytes += len(text)
        while self._entries and (
            len(self._entries) > self.capacity or self.current_bytes > self.max_bytes
        ):
            _key, evicted = self._entries.popitem(last=False)
            self.current_bytes -= len(evicted)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()
        self.current_bytes = 0

    def stats(self) -> dict:
        """Counters snapshot for metrics surfaces."""
        return {
            "entries": len(self._entries),
            "bytes": self.current_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return "SegmentCache(%d entries, %d bytes, %d hits/%d misses)" % (
            len(self._entries), self.current_bytes, self.hits, self.misses,
        )


#: Process-wide default cache used by the ``*_cached`` serializers.
segment_cache = SegmentCache()


def serialize_node_cached(node: Node, cache: Optional[SegmentCache] = None) -> str:
    """outerHTML through the segment cache (reads and populates it)."""
    if isinstance(node, Document):
        return serialize_document(node)
    parts: List[str] = []
    _serialize_cached(node, parts, False, cache if cache is not None else segment_cache)
    return "".join(parts)


def serialize_children_cached(node, cache: Optional[SegmentCache] = None) -> str:
    """innerHTML through the segment cache (reads and populates it)."""
    parts: List[str] = []
    raw = isinstance(node, Element) and node.tag in RAW_TEXT_ELEMENTS
    active = cache if cache is not None else segment_cache
    for child in node.child_nodes:
        _serialize_cached(child, parts, raw, active)
    return "".join(parts)


def transform_children_cached(node, transform, cache: SegmentCache,
                              ser_cache: Optional[SegmentCache] = None) -> str:
    """Transformed innerHTML with per-subtree caching of *transformed*
    segments.

    ``transform`` must map each UTF-16 code unit independently —
    ``transform(a + b) == transform(a) + transform(b)`` — so that the
    transform of a serialization is the concatenation of per-subtree
    transformed segments.  Element subtrees' transformed serializations
    are cached in ``cache`` (keyed ``(id, subtree_version)`` like the
    plain segment cache); a miss serializes through ``ser_cache`` so the
    plain segments of unchanged descendants are still reused.
    """
    parts: List[str] = []
    raw = isinstance(node, Element) and node.tag in RAW_TEXT_ELEMENTS
    active = ser_cache if ser_cache is not None else segment_cache
    for child in node.child_nodes:
        _transform_cached(child, parts, raw, transform, cache, active)
    return "".join(parts)


def _transform_cached(node: Node, parts: List[str], raw: bool, transform,
                      cache: SegmentCache, ser_cache: SegmentCache) -> None:
    if not isinstance(node, Element):
        sub: List[str] = []
        _serialize_into(node, sub, raw)
        parts.append(transform("".join(sub)))
        return
    cached = cache.get(node)
    if cached is not None:
        parts.append(cached)
        return
    sub = []
    _serialize_cached(node, sub, raw, ser_cache)
    text = transform("".join(sub))
    cache.put(node, text)
    parts.append(text)


def _serialize_cached(node: Node, parts: List[str], raw: bool, cache: SegmentCache) -> None:
    if not isinstance(node, Element):
        _serialize_into(node, parts, raw)
        return
    cached = cache.get(node)
    if cached is not None:
        parts.append(cached)
        return
    sub: List[str] = []
    _open_tag_into(node, sub)
    if not node.is_void:
        child_raw = node.tag in RAW_TEXT_ELEMENTS
        for child in node.child_nodes:
            _serialize_cached(child, sub, child_raw, cache)
        sub.append("</%s>" % node.tag)
    text = "".join(sub)
    cache.put(node, text)
    parts.append(text)
