"""DOM to markup serialization (outerHTML / innerHTML getters).

The serializer and the parser are designed as a fixed point: for any DOM
tree, ``parse(serialize(tree))`` yields an equivalent tree, and for any
already-parsed markup, serialize∘parse is idempotent.  RCB relies on
this: the host extracts innerHTML strings (paper §4.1.2), ships them in
the XML envelope, and the participant re-parses them — any drift would
corrupt the co-browsed page on the second synchronization.
"""

from __future__ import annotations

from typing import List

from .dom import (
    Comment,
    Document,
    Element,
    Node,
    RAW_TEXT_ELEMENTS,
    Text,
)
from .entities import escape_attribute, escape_text

__all__ = ["serialize_node", "serialize_children", "serialize_document"]


def serialize_document(document: Document) -> str:
    """Serialize a full Document (doctype + children) to markup."""
    parts: List[str] = []
    if document.doctype:
        parts.append("<!%s>" % document.doctype)
    for child in document.child_nodes:
        _serialize_into(child, parts, raw=False)
    return "".join(parts)


def serialize_node(node: Node) -> str:
    """Serialize one node to markup (outerHTML for elements)."""
    if isinstance(node, Document):
        return serialize_document(node)
    parts: List[str] = []
    _serialize_into(node, parts, raw=False)
    return "".join(parts)


def serialize_children(node) -> str:
    """Serialize a node's children (the innerHTML getter)."""
    parts: List[str] = []
    raw = isinstance(node, Element) and node.tag in RAW_TEXT_ELEMENTS
    for child in node.child_nodes:
        _serialize_into(child, parts, raw=raw)
    return "".join(parts)


def _serialize_into(node: Node, parts: List[str], raw: bool) -> None:
    if isinstance(node, Text):
        parts.append(node.data if raw else escape_text(node.data))
    elif isinstance(node, Comment):
        parts.append("<!--%s-->" % node.data)
    elif isinstance(node, Element):
        parts.append("<%s" % node.tag)
        for name, value in node.attributes:
            if value == "":
                parts.append(" %s" % name)
            else:
                parts.append(' %s="%s"' % (name, escape_attribute(value)))
        parts.append(">")
        if node.is_void:
            return
        child_raw = node.tag in RAW_TEXT_ELEMENTS
        for child in node.child_nodes:
            _serialize_into(child, parts, raw=child_raw)
        parts.append("</%s>" % node.tag)
    else:
        raise TypeError("cannot serialize %r" % (node,))
