"""HTML tokenizer: markup text to a stream of tokens.

Covers the HTML subset produced by the simulated web and by the RCB
serializer: start/end tags with quoted, unquoted and boolean attributes,
self-closing syntax, comments, doctype, raw-text elements (``script`` /
``style``, whose content runs to the matching end tag without entity
processing), and character references in text and attribute values.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .entities import decode_entities
from .dom import RAW_TEXT_ELEMENTS

__all__ = [
    "Token",
    "StartTagToken",
    "EndTagToken",
    "TextToken",
    "CommentToken",
    "DoctypeToken",
    "tokenize",
]

_WHITESPACE = " \t\n\r\f"
_TAG_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-"
)


class Token:
    """Base class for tokenizer output tokens."""
    __slots__ = ()


class StartTagToken(Token):
    """``<tag attr=...>`` (possibly self-closing)."""
    __slots__ = ("name", "attributes", "self_closing")

    def __init__(self, name: str, attributes: Dict[str, str], self_closing: bool):
        self.name = name
        self.attributes = attributes
        self.self_closing = self_closing

    def __repr__(self) -> str:
        return "StartTag(%s%s)" % (self.name, "/" if self.self_closing else "")


class EndTagToken(Token):
    """``</tag>``."""
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return "EndTag(%s)" % (self.name,)


class TextToken(Token):
    """A run of character data (``raw`` for script/style content)."""
    __slots__ = ("data", "raw")

    def __init__(self, data: str, raw: bool = False):
        self.data = data
        self.raw = raw

    def __repr__(self) -> str:
        return "Text(%r)" % (self.data[:30],)


class CommentToken(Token):
    """``<!-- ... -->``."""
    __slots__ = ("data",)

    def __init__(self, data: str):
        self.data = data

    def __repr__(self) -> str:
        return "Comment(%r)" % (self.data[:30],)


class DoctypeToken(Token):
    """``<!DOCTYPE ...>``."""
    __slots__ = ("data",)

    def __init__(self, data: str):
        self.data = data

    def __repr__(self) -> str:
        return "Doctype(%r)" % (self.data,)


class _Scanner:
    """Cursor over the source text."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    @property
    def exhausted(self) -> bool:
        """True once the cursor is past the end of the input."""
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        """The character ``offset`` ahead of the cursor ('' at EOF)."""
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def startswith(self, prefix: str) -> bool:
        """Whether the input at the cursor starts with ``prefix``."""
        return self.text.startswith(prefix, self.pos)

    def startswith_ci(self, prefix: str) -> bool:
        """Case-insensitive :meth:`startswith`."""
        return self.text[self.pos : self.pos + len(prefix)].lower() == prefix.lower()

    def advance(self, count: int = 1) -> None:
        """Move the cursor forward by ``count`` characters."""
        self.pos += count

    def take_until(self, needle: str) -> str:
        """Consume and return text up to ``needle`` (needle not consumed);
        consumes to EOF if absent."""
        index = self.text.find(needle, self.pos)
        if index == -1:
            chunk = self.text[self.pos :]
            self.pos = len(self.text)
        else:
            chunk = self.text[self.pos : index]
            self.pos = index
        return chunk

    def skip_whitespace(self) -> None:
        """Advance the cursor past any whitespace."""
        while not self.exhausted and self.peek() in _WHITESPACE:
            self.advance()


def tokenize(markup: str) -> Iterator[Token]:
    """Yield tokens for ``markup``."""
    scanner = _Scanner(markup)
    while not scanner.exhausted:
        if scanner.peek() == "<":
            token = _scan_markup(scanner)
            if token is None:
                # A stray '<' that opens nothing is literal text.
                yield TextToken("<")
                scanner.advance()
                continue
            yield token
            if isinstance(token, StartTagToken) and token.name in RAW_TEXT_ELEMENTS:
                if not token.self_closing:
                    raw, end = _scan_raw_text(scanner, token.name)
                    if raw:
                        yield TextToken(raw, raw=True)
                    if end is not None:
                        yield end
        else:
            text = scanner.take_until("<")
            yield TextToken(decode_entities(text))


def _scan_markup(scanner: _Scanner) -> Optional[Token]:
    if scanner.startswith("<!--"):
        scanner.advance(4)
        data = scanner.take_until("-->")
        if not scanner.exhausted:
            scanner.advance(3)
        return CommentToken(data)
    if scanner.startswith_ci("<!doctype"):
        scanner.advance(2)
        data = scanner.take_until(">")
        if not scanner.exhausted:
            scanner.advance(1)
        return DoctypeToken(data.strip())
    if scanner.startswith("</"):
        return _scan_end_tag(scanner)
    if scanner.peek(1) in _TAG_NAME_CHARS and scanner.peek(1).isalpha():
        return _scan_start_tag(scanner)
    return None


def _scan_end_tag(scanner: _Scanner) -> Optional[Token]:
    start = scanner.pos
    scanner.advance(2)
    name = _scan_tag_name(scanner)
    if not name:
        scanner.pos = start
        return None
    scanner.take_until(">")
    if not scanner.exhausted:
        scanner.advance(1)
    return EndTagToken(name.lower())


def _scan_start_tag(scanner: _Scanner) -> Optional[Token]:
    start = scanner.pos
    scanner.advance(1)
    name = _scan_tag_name(scanner)
    if not name:
        scanner.pos = start
        return None
    attributes: Dict[str, str] = {}
    self_closing = False
    while True:
        scanner.skip_whitespace()
        char = scanner.peek()
        if char == "":
            break
        if char == ">":
            scanner.advance()
            break
        if char == "/" and scanner.peek(1) == ">":
            scanner.advance(2)
            self_closing = True
            break
        pair = _scan_attribute(scanner)
        if pair is None:
            # Unparseable junk inside the tag: skip one char and continue.
            scanner.advance()
            continue
        attr_name, attr_value = pair
        attributes.setdefault(attr_name.lower(), attr_value)
    return StartTagToken(name.lower(), attributes, self_closing)


def _scan_tag_name(scanner: _Scanner) -> str:
    chars = []
    while not scanner.exhausted and scanner.peek() in _TAG_NAME_CHARS:
        chars.append(scanner.peek())
        scanner.advance()
    return "".join(chars)


def _scan_attribute(scanner: _Scanner) -> Optional[Tuple[str, str]]:
    chars = []
    while not scanner.exhausted and scanner.peek() not in _WHITESPACE + "=>/":
        chars.append(scanner.peek())
        scanner.advance()
    name = "".join(chars)
    if not name:
        return None
    scanner.skip_whitespace()
    if scanner.peek() != "=":
        return (name, "")  # boolean attribute
    scanner.advance()
    scanner.skip_whitespace()
    quote = scanner.peek()
    if quote in ("'", '"'):
        scanner.advance()
        value = scanner.take_until(quote)
        if not scanner.exhausted:
            scanner.advance()
    else:
        value_chars = []
        while not scanner.exhausted and scanner.peek() not in _WHITESPACE + ">":
            value_chars.append(scanner.peek())
            scanner.advance()
        value = "".join(value_chars)
    return (name, decode_entities(value))


def _scan_raw_text(scanner: _Scanner, tag: str):
    """Consume raw content of <script>/<style> up to its end tag."""
    lower = scanner.text.lower()
    needle = "</" + tag
    index = lower.find(needle, scanner.pos)
    while index != -1:
        after = index + len(needle)
        next_char = lower[after : after + 1]
        if next_char in ("", ">", " ", "\t", "\n", "\r", "/"):
            break
        index = lower.find(needle, index + 1)
    if index == -1:
        raw = scanner.text[scanner.pos :]
        scanner.pos = len(scanner.text)
        return raw, None
    raw = scanner.text[scanner.pos : index]
    scanner.pos = index
    scanner.advance(2)
    name = _scan_tag_name(scanner)
    scanner.take_until(">")
    if not scanner.exhausted:
        scanner.advance(1)
    return raw, EndTagToken(name.lower())
