"""DOM tree: documents, elements, text, comments.

RCB-Agent's response content generation (paper Fig. 3) is DOM surgery:
clone the ``documentElement`` of the host page, rewrite URLs and event
attributes on the clone, then extract per-child attribute lists and
``innerHTML`` values.  Ajax-Snippet's update procedure (Fig. 5) is the
mirror image on the participant: set head/body innerHTML from the
received content.  This module provides the tree those procedures
operate on, with the innerHTML get/set semantics both depend on.
"""

from __future__ import annotations

from itertools import count as _count
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Node",
    "Document",
    "Element",
    "Text",
    "Comment",
    "DomError",
    "VOID_ELEMENTS",
    "RAW_TEXT_ELEMENTS",
]

#: Global monotone mutation-version source.  Every draw is unique, and a
#: value is only ever shared between a mutated node and its ancestors at
#: propagation time — so two nodes with equal ``subtree_version`` lie on
#: one ancestor chain or are the same node, which is what makes version
#: equality a sound "nothing changed in here" certificate for the
#: serializer segment cache and the version-guided delta diff.
_next_version = _count(1).__next__

#: Elements that never have children or an end tag.
VOID_ELEMENTS = frozenset(
    "area base br col embed hr img input link meta param source track wbr".split()
)

#: Elements whose text content is not entity-decoded or escaped.
RAW_TEXT_ELEMENTS = frozenset(("script", "style"))

#: Sentinel distinguishing "attribute absent" from any real value.
_ABSENT = object()


class DomError(Exception):
    """Raised for invalid tree manipulations."""


class Node:
    """Base class for all tree nodes.

    Every node carries two monotone **version stamps** used by the
    incremental generation pipeline:

    * ``own_version`` — bumped whenever the node's *own* state mutates
      (attributes, character data, or its direct child list);
    * ``subtree_version`` — the version of the newest mutation anywhere
      in the node's subtree; every mutation propagates a fresh stamp to
      all ancestors.

    Unchanged ``subtree_version`` between two observations of the same
    node guarantees an unchanged serialization.  Clones always get
    fresh stamps (a copy is a new node, not the old one).
    """

    def __init__(self):
        self.parent: Optional["Element"] = None
        self._own_version = self._subtree_version = _next_version()

    @property
    def own_version(self) -> int:
        """Version of the last mutation of this node's own state."""
        return self._own_version

    @property
    def subtree_version(self) -> int:
        """Version of the newest mutation anywhere in this subtree."""
        return self._subtree_version

    def _stamp_mutation(self) -> int:
        """Record a mutation: fresh own version, propagated to ancestors."""
        version = _next_version()
        self._own_version = version
        node = self
        while node is not None:
            node._subtree_version = version
            node = node.parent
        return version

    @property
    def owner_document(self) -> Optional["Document"]:
        """The Document this node ultimately hangs from, or None."""
        node = self
        while node is not None:
            if isinstance(node, Document):
                return node
            node = node.parent if not isinstance(node, Document) else None
        return None

    def detach(self) -> "Node":
        """Remove this node from its parent, if any."""
        if self.parent is not None:
            self.parent.remove_child(self)
        return self

    def clone(self, deep: bool = True) -> "Node":
        """Return a copy of this node (deep copies children too)."""
        raise NotImplementedError

    def to_html(self) -> str:
        """Serialized HTML for this node (outerHTML for elements)."""
        from .serializer import serialize_node

        return serialize_node(self)


class _CharacterData(Node):
    """Shared character-data machinery for Text and Comment."""

    def __init__(self, data: str):
        super().__init__()
        self._data = data

    @property
    def data(self) -> str:
        """The node's character data; assignment stamps a mutation."""
        return self._data

    @data.setter
    def data(self, value: str) -> None:
        if value != self._data:
            self._data = value
            self._stamp_mutation()


class Text(_CharacterData):
    """A run of character data."""

    def clone(self, deep: bool = True) -> "Text":
        """Return a copy of this node (deep copies children too)."""
        return Text(self._data)

    def __repr__(self) -> str:
        preview = self._data if len(self._data) <= 30 else self._data[:27] + "..."
        return "Text(%r)" % (preview,)


class Comment(_CharacterData):
    """An HTML comment."""

    def clone(self, deep: bool = True) -> "Comment":
        """Return a copy of this node (deep copies children too)."""
        return Comment(self._data)

    def __repr__(self) -> str:
        return "Comment(%r)" % (self._data,)


class _ParentNode(Node):
    """Shared child-list machinery for Element and Document."""

    def __init__(self):
        super().__init__()
        self.child_nodes: List[Node] = []

    @property
    def children(self) -> List["Element"]:
        """Element children only (DOM's ``children`` collection)."""
        return [node for node in self.child_nodes if isinstance(node, Element)]

    @property
    def first_child(self) -> Optional[Node]:
        """The first child node, or None."""
        return self.child_nodes[0] if self.child_nodes else None

    def append_child(self, node: Node) -> Node:
        """Add ``node`` as the last child (detaching it first)."""
        return self.insert_before(node, None)

    def insert_before(self, node: Node, reference: Optional[Node]) -> Node:
        """Insert ``node`` before ``reference`` (or append if None)."""
        if not isinstance(node, Node):
            raise DomError("cannot insert %r" % (node,))
        if isinstance(node, Document):
            raise DomError("a Document cannot be a child")
        if node is self or self._is_descendant_of(node):
            raise DomError("insertion would create a cycle")
        node.detach()
        if reference is None:
            self.child_nodes.append(node)
        else:
            try:
                index = self.child_nodes.index(reference)
            except ValueError:
                raise DomError("reference node is not a child")
            self.child_nodes.insert(index, node)
        node.parent = self
        self._stamp_mutation()
        return node

    def remove_child(self, node: Node) -> Node:
        """Detach a direct child; raises DomError otherwise."""
        try:
            self.child_nodes.remove(node)
        except ValueError:
            raise DomError("node is not a child")
        node.parent = None
        self._stamp_mutation()
        return node

    def replace_child(self, new: Node, old: Node) -> Node:
        """Swap ``old`` for ``new`` in place; returns ``old``."""
        self.insert_before(new, old)
        self.remove_child(old)
        return old

    def remove_all_children(self) -> None:
        """Detach every child node."""
        for node in list(self.child_nodes):
            self.remove_child(node)

    def _is_descendant_of(self, other: Node) -> bool:
        node = self.parent
        while node is not None:
            if node is other:
                return True
            node = node.parent
        return False

    # -- traversal -------------------------------------------------------------

    def descendants(self) -> Iterator[Node]:
        """Depth-first pre-order traversal of all descendant nodes."""
        for child in list(self.child_nodes):
            yield child
            if isinstance(child, _ParentNode):
                yield from child.descendants()

    def descendant_elements(self) -> Iterator["Element"]:
        """Depth-first pre-order traversal of descendant Elements."""
        for node in self.descendants():
            if isinstance(node, Element):
                yield node

    def get_elements_by_tag_name(self, tag: str) -> List["Element"]:
        """All descendant elements with the given tag, document order."""
        tag = tag.lower()
        return [el for el in self.descendant_elements() if el.tag == tag]

    def get_element_by_id(self, element_id: str) -> Optional["Element"]:
        """The first descendant with a matching id attribute, or None."""
        for element in self.descendant_elements():
            if element.get_attribute("id") == element_id:
                return element
        return None

    @property
    def text_content(self) -> str:
        """Concatenated text of every descendant Text node."""
        parts = []
        for node in self.descendants():
            if isinstance(node, Text):
                parts.append(node.data)
        return "".join(parts)

    # -- innerHTML ---------------------------------------------------------------

    @property
    def inner_html(self) -> str:
        """This node's children as markup (get) / parsed from markup (set)."""
        from .serializer import serialize_children

        return serialize_children(self)

    @inner_html.setter
    def inner_html(self, markup: str) -> None:
        """This node's children as markup (get) / parsed from markup (set)."""
        from .parser import parse_fragment

        context_tag = self.tag if isinstance(self, Element) else "body"
        nodes = parse_fragment(markup, context_tag)
        self.remove_all_children()
        for node in nodes:
            self.append_child(node)


class Element(_ParentNode):
    """An HTML element with a lowercase tag and ordered attributes."""

    def __init__(self, tag: str, attributes: Optional[Dict[str, str]] = None):
        super().__init__()
        if not tag:
            raise DomError("empty tag name")
        self.tag = tag.lower()
        self._attributes: Dict[str, str] = {}
        if attributes:
            for name, value in attributes.items():
                self.set_attribute(name, value)

    # -- attributes ---------------------------------------------------------------

    def get_attribute(self, name: str) -> Optional[str]:
        """The attribute's value, or None (names are case-insensitive)."""
        return self._attributes.get(name.lower())

    def set_attribute(self, name: str, value: str) -> None:
        """Set an attribute (name lowercased; None value becomes '')."""
        if not name:
            raise DomError("empty attribute name")
        key = name.lower()
        value = "" if value is None else str(value)
        if self._attributes.get(key, _ABSENT) != value:
            self._attributes[key] = value
            self._stamp_mutation()

    def remove_attribute(self, name: str) -> None:
        """Delete an attribute if present."""
        if self._attributes.pop(name.lower(), _ABSENT) is not _ABSENT:
            self._stamp_mutation()

    def has_attribute(self, name: str) -> bool:
        """Whether the attribute exists (even if empty)."""
        return name.lower() in self._attributes

    @property
    def attributes(self) -> List[Tuple[str, str]]:
        """Ordered (name, value) pairs — the paper's attribute
        name-value list carried per top-level child (Fig. 4)."""
        return list(self._attributes.items())

    # -- convenience ---------------------------------------------------------------

    @property
    def is_void(self) -> bool:
        """Whether this element never has children or an end tag."""
        return self.tag in VOID_ELEMENTS

    @property
    def outer_html(self) -> str:
        """This element serialized, including its own tags."""
        return self.to_html()

    def clone(self, deep: bool = True) -> "Element":
        """Return a copy of this node (deep copies children too)."""
        copy = Element(self.tag, dict(self._attributes))
        if deep:
            for child in self.child_nodes:
                copy.append_child(child.clone(deep=True))
        return copy

    def __repr__(self) -> str:
        attrs = "".join(" %s=%r" % (k, v) for k, v in self._attributes.items())
        return "<%s%s> (%d children)" % (self.tag, attrs, len(self.child_nodes))


class Document(_ParentNode):
    """The root of a page's DOM tree."""

    def __init__(self):
        super().__init__()
        self._doctype: Optional[str] = None

    @property
    def doctype(self) -> Optional[str]:
        """The doctype text (without ``<!``/``>``); assignment stamps."""
        return self._doctype

    @doctype.setter
    def doctype(self, value: Optional[str]) -> None:
        if value != self._doctype:
            self._doctype = value
            self._stamp_mutation()

    @property
    def document_element(self) -> Optional[Element]:
        """The <html> root element."""
        for child in self.children:
            if child.tag == "html":
                return child
        return None

    @property
    def head(self) -> Optional[Element]:
        """The <head> element, or None."""
        root = self.document_element
        if root is None:
            return None
        for child in root.children:
            if child.tag == "head":
                return child
        return None

    @property
    def body(self) -> Optional[Element]:
        """The <body> element, or None (frameset documents)."""
        root = self.document_element
        if root is None:
            return None
        for child in root.children:
            if child.tag == "body":
                return child
        return None

    @property
    def frameset(self) -> Optional[Element]:
        """The <frameset> element, or None (body documents)."""
        root = self.document_element
        if root is None:
            return None
        for child in root.children:
            if child.tag == "frameset":
                return child
        return None

    @property
    def title(self) -> str:
        """The text of the <title> element, or ''."""
        head = self.head
        if head is None:
            return ""
        titles = head.get_elements_by_tag_name("title")
        return titles[0].text_content if titles else ""

    def create_element(self, tag: str, **attributes: str) -> Element:
        """Element factory; trailing underscores in kwargs are stripped (``for_``)."""
        return Element(tag, {k.rstrip("_"): v for k, v in attributes.items()})

    def create_text_node(self, data: str) -> Text:
        """Text node factory."""
        return Text(data)

    def clone(self, deep: bool = True) -> "Document":
        """Return a copy of this node (deep copies children too)."""
        copy = Document()
        copy.doctype = self.doctype
        if deep:
            for child in self.child_nodes:
                copy.append_child(child.clone(deep=True))
        return copy

    def __repr__(self) -> str:
        return "Document(title=%r, %d children)" % (self.title, len(self.child_nodes))
