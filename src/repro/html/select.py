"""A small CSS selector engine for the DOM.

Supports the selector subset that covers practically all test and
scripting needs against the simulated web:

* type, ``#id``, ``.class``, ``*``, and compound forms (``form.wide#x``)
* attribute tests: ``[name]``, ``[name=value]``, ``[name^=v]``,
  ``[name$=v]``, ``[name*=v]``
* descendant combinator (whitespace) and child combinator (``>``)
* comma-separated selector lists

Examples::

    select(document, "form#addressform input[name=city]")
    select_one(page.document, "#cart-items > li")
"""

from __future__ import annotations

from typing import List, Optional

from .dom import Element, _ParentNode

__all__ = ["select", "select_one", "matches", "SelectorError"]


class SelectorError(ValueError):
    """Unparseable selector text."""


class _AttributeTest:
    __slots__ = ("name", "operator", "value")

    def __init__(self, name: str, operator: Optional[str], value: Optional[str]):
        self.name = name
        self.operator = operator
        self.value = value

    def matches(self, element: Element) -> bool:
        """Whether ``element`` satisfies this test/selector."""
        actual = element.get_attribute(self.name)
        if actual is None:
            return False
        if self.operator is None:
            return True
        if self.operator == "=":
            return actual == self.value
        if self.operator == "^=":
            return actual.startswith(self.value)
        if self.operator == "$=":
            return actual.endswith(self.value)
        if self.operator == "*=":
            return self.value in actual
        raise SelectorError("unsupported operator %r" % (self.operator,))


class _SimpleSelector:
    """One compound selector: tag?, #id?, .classes, [attr tests]."""

    __slots__ = ("tag", "element_id", "classes", "attribute_tests")

    def __init__(self):
        self.tag: Optional[str] = None
        self.element_id: Optional[str] = None
        self.classes: List[str] = []
        self.attribute_tests: List[_AttributeTest] = []

    def matches(self, element: Element) -> bool:
        """Whether ``element`` satisfies this test/selector."""
        if self.tag is not None and self.tag != "*" and element.tag != self.tag:
            return False
        if self.element_id is not None and element.get_attribute("id") != self.element_id:
            return False
        if self.classes:
            class_attr = (element.get_attribute("class") or "").split()
            if any(cls not in class_attr for cls in self.classes):
                return False
        return all(test.matches(element) for test in self.attribute_tests)


class _CompiledSelector:
    """A sequence of (combinator, simple selector) steps."""

    __slots__ = ("steps",)

    def __init__(self, steps):
        self.steps = steps  # [(combinator, _SimpleSelector)] combinator in (None, ' ', '>')

    def matches(self, element: Element) -> bool:
        """Whether ``element`` satisfies this test/selector."""
        return self._match_from(element, len(self.steps) - 1)

    def _match_from(self, element: Element, index: int) -> bool:
        # steps[index][0] is the combinator binding this step to the
        # previous one (None for the first step).
        combinator, simple = self.steps[index]
        if not simple.matches(element):
            return False
        if index == 0:
            return True
        ancestor = element.parent
        if combinator == ">":
            return isinstance(ancestor, Element) and self._match_from(ancestor, index - 1)
        while isinstance(ancestor, Element):
            if self._match_from(ancestor, index - 1):
                return True
            ancestor = ancestor.parent
        return False


def _tokenize_compound(text: str) -> _SimpleSelector:
    simple = _SimpleSelector()
    index = 0
    length = len(text)
    if not text:
        raise SelectorError("empty compound selector")
    while index < length:
        char = text[index]
        if char == "#":
            end = _scan_name(text, index + 1)
            if end == index + 1:
                raise SelectorError("empty #id in %r" % (text,))
            simple.element_id = text[index + 1 : end]
            index = end
        elif char == ".":
            end = _scan_name(text, index + 1)
            if end == index + 1:
                raise SelectorError("empty .class in %r" % (text,))
            simple.classes.append(text[index + 1 : end])
            index = end
        elif char == "[":
            close = text.find("]", index)
            if close == -1:
                raise SelectorError("unterminated attribute test in %r" % (text,))
            simple.attribute_tests.append(_parse_attribute(text[index + 1 : close]))
            index = close + 1
        elif char == "*":
            simple.tag = "*"
            index += 1
        else:
            end = _scan_name(text, index)
            if end == index:
                raise SelectorError("cannot parse %r at %r" % (text, text[index:]))
            simple.tag = text[index:end].lower()
            index = end
    return simple


def _scan_name(text: str, start: int) -> int:
    index = start
    while index < len(text) and (text[index].isalnum() or text[index] in "-_"):
        index += 1
    return index


def _parse_attribute(body: str) -> _AttributeTest:
    body = body.strip()
    for operator in ("^=", "$=", "*=", "="):
        if operator in body:
            name, value = body.split(operator, 1)
            value = value.strip().strip("'\"")
            name = name.strip()
            if not name:
                raise SelectorError("empty attribute name in [%s]" % body)
            return _AttributeTest(name.lower(), operator, value)
    if not body:
        raise SelectorError("empty attribute test")
    return _AttributeTest(body.lower(), None, None)


def _compile_single(selector: str) -> _CompiledSelector:
    # Normalize child combinators to single tokens.
    tokens: List[str] = []
    for part in selector.replace(">", " > ").split():
        tokens.append(part)
    if not tokens or tokens[0] == ">" or tokens[-1] == ">":
        raise SelectorError("bad combinator placement in %r" % (selector,))
    steps = []
    combinator = " "
    expect_selector = True
    for token in tokens:
        if token == ">":
            if expect_selector:
                raise SelectorError("doubled combinator in %r" % (selector,))
            combinator = ">"
            expect_selector = True
        else:
            steps.append([combinator, _tokenize_compound(token)])
            combinator = " "
            expect_selector = False
    # Each step keeps the combinator binding it to the previous step.
    compiled = []
    for position, (combinator_value, simple) in enumerate(steps):
        compiled.append((combinator_value if position > 0 else None, simple))
    return _CompiledSelector(compiled)


def matches(element: Element, selector: str) -> bool:
    """Whether ``element`` matches a (possibly comma-separated) selector."""
    if not isinstance(element, Element):
        return False
    return any(
        _compile_single(part.strip()).matches(element)
        for part in selector.split(",")
        if part.strip()
    )


def select(root: _ParentNode, selector: str) -> List[Element]:
    """All descendant elements of ``root`` matching ``selector``."""
    parts = [part.strip() for part in selector.split(",") if part.strip()]
    if not parts:
        raise SelectorError("empty selector")
    compiled = [_compile_single(part) for part in parts]
    found: List[Element] = []
    for element in root.descendant_elements():
        if any(one.matches(element) for one in compiled):
            found.append(element)
    return found


def select_one(root: _ParentNode, selector: str) -> Optional[Element]:
    """The first matching element, or None."""
    results = select(root, selector)
    return results[0] if results else None
