"""Character-entity encoding and decoding for the HTML subset."""

from __future__ import annotations

__all__ = ["decode_entities", "escape_text", "escape_attribute"]

NAMED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",
    "copy": "©",
    "reg": "®",
    "trade": "™",
    "mdash": "—",
    "ndash": "–",
    "hellip": "…",
    "laquo": "«",
    "raquo": "»",
    "eacute": "é",
    "egrave": "è",
}

_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")


def decode_entities(text: str) -> str:
    """Decode named and numeric character references."""
    if "&" not in text:
        return text
    out = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char != "&":
            out.append(char)
            index += 1
            continue
        end = text.find(";", index + 1)
        # Entities are short; an unterminated or overlong '&' is literal.
        if end == -1 or end - index > 10:
            out.append(char)
            index += 1
            continue
        name = text[index + 1 : end]
        decoded = _decode_one(name)
        if decoded is None:
            out.append(char)
            index += 1
        else:
            out.append(decoded)
            index = end + 1
    return "".join(out)


def _decode_one(name: str):
    if not name:
        return None
    if name[0] == "#":
        digits = name[1:]
        if digits[:1] in ("x", "X"):
            digits = digits[1:]
            if digits and all(d in _HEX_DIGITS for d in digits):
                return _from_codepoint(int(digits, 16))
            return None
        if digits.isdigit():
            return _from_codepoint(int(digits))
        return None
    return NAMED_ENTITIES.get(name)


def _from_codepoint(codepoint: int):
    if 0 < codepoint <= 0x10FFFF:
        try:
            return chr(codepoint)
        except ValueError:
            return None
    return None


def escape_text(text: str) -> str:
    """Escape character data for serialization between tags."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value for double-quoted serialization."""
    return (
        value.replace("&", "&amp;")
        .replace('"', "&quot;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )
