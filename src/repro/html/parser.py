"""HTML tree builder: token stream to DOM.

A simplified but predictable tree construction: the document is
normalized to ``<html>`` with a ``<head>`` and either a ``<body>`` or a
``<frameset>`` (plus optional ``<noframes>``), which is exactly the
top-level shape RCB's XML envelope distinguishes (paper Fig. 4).
Fragment parsing backs the ``innerHTML`` setter Ajax-Snippet uses to
update the participant page.

The builder is intentionally not a full HTML5 adoption-agency
implementation: mis-nested end tags pop to the nearest matching open
element, unknown end tags are ignored, and unclosed elements are closed
at EOF — the behaviours property-tested as a serialize/parse fixed point.
"""

from __future__ import annotations

from typing import List, Optional

from .dom import Comment, Document, Element, Node, Text, VOID_ELEMENTS
from .tokenizer import (
    CommentToken,
    DoctypeToken,
    EndTagToken,
    StartTagToken,
    TextToken,
    tokenize,
)

__all__ = ["parse_document", "parse_fragment"]

#: Elements that the normalizer routes into <head> when they appear
#: before any body content.
_HEAD_ELEMENTS = frozenset(("title", "meta", "link", "style", "base", "script"))

#: <p> implies closing an open <p>; list items close their siblings.
_SELF_CLOSING_SIBLINGS = {
    "p": frozenset(("p",)),
    "li": frozenset(("li",)),
    "option": frozenset(("option",)),
    "tr": frozenset(("tr",)),
    "td": frozenset(("td", "th")),
    "th": frozenset(("td", "th")),
}


def parse_document(markup: str) -> Document:
    """Parse a complete HTML document, normalizing the top-level shape."""
    document = Document()
    builder = _TreeBuilder(document)
    for token in tokenize(markup):
        builder.handle(token)
    builder.finish()
    _normalize_document(document)
    return document


def parse_fragment(markup: str, context_tag: str = "body") -> List[Node]:
    """Parse markup as it would appear inside a ``context_tag`` element.

    Returns the list of parsed top-level nodes, detached (parent=None), as
    the innerHTML setter expects.
    """
    container = Element(context_tag if context_tag else "body")
    builder = _TreeBuilder(container)
    for token in tokenize(markup):
        builder.handle(token)
    builder.finish()
    nodes = list(container.child_nodes)
    for node in nodes:
        node.parent = None
    container.child_nodes = []
    return nodes


class _TreeBuilder:
    """Stack-based tree construction shared by document/fragment modes."""

    def __init__(self, root):
        self.root = root
        self.stack: List[Element] = []

    @property
    def current(self):
        """The innermost open element (or the root)."""
        return self.stack[-1] if self.stack else self.root

    def handle(self, token) -> None:
        """Feed one token into tree construction."""
        if isinstance(token, TextToken):
            self._append_text(token.data)
        elif isinstance(token, StartTagToken):
            self._start_tag(token)
        elif isinstance(token, EndTagToken):
            self._end_tag(token.name)
        elif isinstance(token, CommentToken):
            self.current.append_child(Comment(token.data))
        elif isinstance(token, DoctypeToken):
            if isinstance(self.root, Document):
                self.root.doctype = token.data

    def finish(self) -> None:
        """Close any elements left open at end of input."""
        self.stack = []

    def _append_text(self, data: str) -> None:
        if not data:
            return
        current = self.current
        # Merge adjacent text nodes so parsing is idempotent.
        last = current.child_nodes[-1] if current.child_nodes else None
        if isinstance(last, Text):
            last.data += data
        else:
            current.append_child(Text(data))

    def _start_tag(self, token: StartTagToken) -> None:
        closes = _SELF_CLOSING_SIBLINGS.get(token.name)
        if closes and self.stack and self.stack[-1].tag in closes:
            self.stack.pop()
        element = Element(token.name, token.attributes)
        self.current.append_child(element)
        if token.name not in VOID_ELEMENTS and not token.self_closing:
            self.stack.append(element)

    def _end_tag(self, name: str) -> None:
        for index in range(len(self.stack) - 1, -1, -1):
            if self.stack[index].tag == name:
                del self.stack[index:]
                return
        # No matching open element: ignore the end tag.


def _normalize_document(document: Document) -> None:
    """Ensure the document is <html>(<head>, <body>|<frameset>[, <noframes>])."""
    html = document.document_element
    if html is None:
        html = Element("html")
        # Move any parsed top-level content under the new root.
        strays = [n for n in list(document.child_nodes) if not isinstance(n, Comment)]
        document.append_child(html)
        for node in strays:
            html.append_child(node)

    # Collect direct children of <html> into head/body buckets.
    head: Optional[Element] = None
    body: Optional[Element] = None
    frameset: Optional[Element] = None
    strays: List[Node] = []
    for node in list(html.child_nodes):
        if isinstance(node, Element) and node.tag == "head" and head is None:
            head = node
        elif isinstance(node, Element) and node.tag == "body" and body is None:
            body = node
        elif isinstance(node, Element) and node.tag == "frameset" and frameset is None:
            frameset = node
        elif isinstance(node, Element) and node.tag == "noframes":
            continue  # stays in place, after frameset
        else:
            strays.append(node)

    if head is None:
        head = Element("head")
        html.insert_before(head, html.first_child)

    if frameset is None and body is None:
        body = Element("body")
        html.append_child(body)

    for node in strays:
        if isinstance(node, Text) and not node.data.strip():
            node.detach()
            continue
        if isinstance(node, Element) and node.tag in _HEAD_ELEMENTS and body is not None and not body.child_nodes:
            node.detach()
            head.append_child(node)
            continue
        if body is not None:
            node.detach()
            body.append_child(node)
        elif frameset is not None and isinstance(node, Text) and not node.data.strip():
            node.detach()

    # Canonical order: head first, then body/frameset (+noframes).
    head.detach()
    html.insert_before(head, html.first_child)
