"""HTML substrate: tokenizer, tree-building parser, DOM, serializer."""

from .dom import (
    Comment,
    Document,
    DomError,
    Element,
    Node,
    RAW_TEXT_ELEMENTS,
    Text,
    VOID_ELEMENTS,
)
from .entities import decode_entities, escape_attribute, escape_text
from .parser import parse_document, parse_fragment
from .select import SelectorError, matches, select, select_one
from .serializer import serialize_children, serialize_document, serialize_node

__all__ = [
    "Comment",
    "Document",
    "DomError",
    "Element",
    "Node",
    "RAW_TEXT_ELEMENTS",
    "SelectorError",
    "Text",
    "VOID_ELEMENTS",
    "decode_entities",
    "escape_attribute",
    "escape_text",
    "matches",
    "parse_document",
    "parse_fragment",
    "select",
    "select_one",
    "serialize_children",
    "serialize_document",
    "serialize_node",
]
