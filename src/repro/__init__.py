"""repro — a from-scratch reproduction of "RCB: A Simple and Practical
Framework for Real-time Collaborative Browsing" (USENIX ATC 2009).

The package is layered bottom-up:

* :mod:`repro.sim` — deterministic discrete-event kernel.
* :mod:`repro.net` — URLs, latency/bandwidth links, simulated TCP, NAT.
* :mod:`repro.http` — HTTP/1.1 messages, parser, client, server, cookies.
* :mod:`repro.html` — tokenizer, tree builder, DOM, serializer.
* :mod:`repro.browser` — a simulated browser: page loads, cache,
  observers, events, extensions.
* :mod:`repro.webserver` — the simulated web: the 20 Table-1 sites, a
  Google-Maps-like Ajax app, a session-protected shop.
* :mod:`repro.core` — the paper's contribution: RCB-Agent, Ajax-Snippet,
  sessions, policies, the XML envelope, HMAC request security.
* :mod:`repro.workloads` / :mod:`repro.metrics` — experiment testbeds,
  scenario scripts, the usability study, and the M1–M6 measurement
  harness regenerating every figure and table in the paper.

See ``examples/quickstart.py`` for a minimal co-browsing session.
"""

from .browser import Browser
from .core import (
    AjaxSnippet,
    BackoffPolicy,
    CoBrowsingSession,
    ConfirmPolicy,
    ObserveOnlyPolicy,
    OpenPolicy,
    RCBAgent,
    RelayAgent,
    generate_session_secret,
)
from .net import LAN_PROFILE, WAN_HOME_PROFILE, Host, NatGateway, Network
from .sim import Simulator
from .workloads import build_lan, build_wan

__version__ = "1.0.0"

__all__ = [
    "AjaxSnippet",
    "BackoffPolicy",
    "Browser",
    "CoBrowsingSession",
    "ConfirmPolicy",
    "Host",
    "LAN_PROFILE",
    "NatGateway",
    "Network",
    "ObserveOnlyPolicy",
    "OpenPolicy",
    "RCBAgent",
    "RelayAgent",
    "Simulator",
    "WAN_HOME_PROFILE",
    "build_lan",
    "build_wan",
    "generate_session_secret",
    "__version__",
]
