"""Minimal script engine: event-attribute handler dispatch.

The real RCB rewrites ``onclick``/``onsubmit`` attribute values to call
JavaScript functions that live in Ajax-Snippet (paper §4.1.2, step 4).
In the simulation, an event-attribute value is a call expression like
``rcbSubmit(this)`` and the engine resolves the function name against a
registry of Python callables.  Handlers are invoked with
``(element, event)``; a handler returning False cancels the default
action (exactly the semantics form interception needs).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

__all__ = ["ScriptEngine", "ScriptError", "parse_call_expression"]


class ScriptError(Exception):
    """Unparseable handler expression or unknown function."""


def parse_call_expression(expression: str) -> str:
    """Extract the function name from ``name(...)`` (optionally with a
    ``return`` prefix, as in ``return rcbSubmit(this)``)."""
    text = expression.strip()
    if text.startswith("return "):
        text = text[len("return ") :].strip()
    if text.endswith(";"):
        text = text[:-1].strip()
    paren = text.find("(")
    if paren <= 0 or not text.endswith(")"):
        raise ScriptError("not a call expression: %r" % (expression,))
    name = text[:paren].strip()
    if not name.replace("_", "").replace("$", "").isalnum():
        raise ScriptError("bad function name in %r" % (expression,))
    return name


class ScriptEngine:
    """Registry of named handler functions for one page context."""

    def __init__(self):
        self._functions: Dict[str, Callable] = {}
        self.calls_made = 0

    def register(self, name: str, function: Callable) -> None:
        """Bind a handler function to ``name``."""
        if not callable(function):
            raise TypeError("handler must be callable")
        self._functions[name] = function

    def unregister(self, name: str) -> None:
        """Remove a handler binding, if present."""
        self._functions.pop(name, None)

    def is_registered(self, name: str) -> bool:
        """Whether ``name`` has a bound handler."""
        return name in self._functions

    def invoke_attribute(self, expression: str, element, event: Optional[Any] = None):
        """Run the handler named in an event-attribute expression.

        Returns the handler's return value (False means "cancel default").
        """
        name = parse_call_expression(expression)
        function = self._functions.get(name)
        if function is None:
            raise ScriptError("no handler registered for %r" % (name,))
        self.calls_made += 1
        return function(element, event)
