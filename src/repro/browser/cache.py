"""Browser cache: LRU object store with read sessions.

Models the Mozilla cache service RCB-Agent uses in cache mode (paper
§4.1.1): the agent holds a mapping table from request-URIs to cache keys
and reads cached object data through a cache session.  The cache is
read-only from the agent's perspective — the paper is explicit that the
host browser's cache is "only read but not modified by RCB-Agent" — which
:class:`CacheReadSession` enforces.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

__all__ = ["BrowserCache", "CacheEntry", "CacheReadSession", "CacheMiss"]


class CacheMiss(KeyError):
    """Requested key is not in the cache."""


class CacheEntry:
    """One cached object."""

    __slots__ = ("key", "url", "content_type", "data", "stored_at", "hits")

    def __init__(self, key: str, url: str, content_type: str, data: bytes, stored_at: float):
        self.key = key
        self.url = url
        self.content_type = content_type
        self.data = data
        self.stored_at = stored_at
        self.hits = 0

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.data)

    def __repr__(self) -> str:
        return "CacheEntry(%r, %s, %d bytes)" % (self.key, self.content_type, self.size)


class BrowserCache:
    """Size-bounded LRU cache keyed by absolute URL string."""

    def __init__(self, max_bytes: int = 50 * 1024 * 1024):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.current_bytes = 0
        self.evictions = 0
        self.hit_count = 0
        self.miss_count = 0
        #: Bumped on every content change (store/remove/clear/evict).
        #: Incremental content generation fingerprints this: reusing a
        #: rewritten clone is only sound while the set of cached objects
        #: is exactly what it was when the clone's URLs were rewritten.
        self.revision = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[str]:
        """Snapshot of cache keys, LRU-oldest first."""
        return iter(list(self._entries.keys()))

    def store(self, url: str, content_type: str, data: bytes, now: float = 0.0) -> CacheEntry:
        """Insert (or refresh) an object; evicts LRU entries as needed."""
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError("cache stores bytes, got %r" % (type(data),))
        data = bytes(data)
        if len(data) > self.max_bytes:
            # An object larger than the whole cache is simply not cached.
            return CacheEntry(url, url, content_type, data, now)
        existing = self._entries.pop(url, None)
        if existing is not None:
            self.current_bytes -= existing.size
        entry = CacheEntry(url, url, content_type, data, now)
        self._entries[url] = entry
        self.current_bytes += entry.size
        self.revision += 1
        self._evict()
        return entry

    def lookup(self, key: str) -> Optional[CacheEntry]:
        """LRU-touching lookup; None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.miss_count += 1
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self.hit_count += 1
        return entry

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Lookup without touching LRU order or counters."""
        return self._entries.get(key)

    def remove(self, key: str) -> None:
        """Evict one entry by key, if present."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.current_bytes -= entry.size
            self.revision += 1

    def clear(self) -> None:
        """Evict everything."""
        if self._entries:
            self.revision += 1
        self._entries.clear()
        self.current_bytes = 0

    def open_read_session(self) -> "CacheReadSession":
        """The agent-facing handle (Mozilla-style cache session)."""
        return CacheReadSession(self)

    def _evict(self) -> None:
        while self.current_bytes > self.max_bytes and self._entries:
            _key, entry = self._entries.popitem(last=False)
            self.current_bytes -= entry.size
            self.evictions += 1
            self.revision += 1


class CacheReadSession:
    """Read-only view of a :class:`BrowserCache`."""

    def __init__(self, cache: BrowserCache):
        self._cache = cache

    @property
    def backing(self) -> BrowserCache:
        """The cache this session reads (identity for fingerprinting)."""
        return self._cache

    @property
    def revision(self) -> int:
        """The backing cache's content revision."""
        return self._cache.revision

    def contains(self, key: str) -> bool:
        """Whether the cache holds ``key``."""
        return key in self._cache

    def peek(self, key: str):
        """Entry metadata without touching LRU order or counters."""
        return self._cache.peek(key)

    def read(self, key: str) -> CacheEntry:
        """Return the entry for ``key``; raises CacheMiss when absent."""
        entry = self._cache.lookup(key)
        if entry is None:
            raise CacheMiss(key)
        return entry
