"""Page: a loaded document plus its supplementary objects and timings."""

from __future__ import annotations

from typing import List

from ..html import Document
from ..net.url import Url
from .script import ScriptEngine

__all__ = ["Page", "LoadedObject"]


class LoadedObject:
    """One supplementary object (image, stylesheet, script, frame)."""

    __slots__ = ("url", "content_type", "size", "from_cache", "elapsed")

    def __init__(self, url: str, content_type: str, size: int, from_cache: bool, elapsed: float):
        self.url = url
        self.content_type = content_type
        self.size = size
        self.from_cache = from_cache
        self.elapsed = elapsed

    def __repr__(self) -> str:
        source = "cache" if self.from_cache else "network"
        return "LoadedObject(%r, %d bytes, %s)" % (self.url, self.size, source)


class Page:
    """The browser's current page state."""

    def __init__(self, url: Url, document: Document):
        self.url = url
        self.document = document
        #: Supplementary objects downloaded while rendering this page.
        self.objects: List[LoadedObject] = []
        #: Time spent fetching the HTML document itself (metric M1).
        self.html_load_time: float = 0.0
        #: Time spent fetching supplementary objects (metrics M3/M4).
        self.objects_load_time: float = 0.0
        #: Per-page handler registry (Ajax-Snippet registers here on a
        #: participant browser).
        self.scripts = ScriptEngine()
        #: Monotonic version, bumped on every document mutation; the
        #: browser uses it to detect staleness and RCB-Agent uses the
        #: corresponding wall-clock timestamp.
        self.version = 0

    @property
    def html_size(self) -> int:
        """Byte size of the current document, serialized."""
        from ..html import serialize_document

        return len(serialize_document(self.document).encode("utf-8"))

    @property
    def total_object_bytes(self) -> int:
        """Sum of all supplementary-object payload sizes."""
        return sum(obj.size for obj in self.objects)

    def __repr__(self) -> str:
        return "Page(%r, %d objects, v%d)" % (str(self.url), len(self.objects), self.version)
