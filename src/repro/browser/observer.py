"""Observer service: topic-based in-browser notifications.

Models Mozilla's ``nsIObserverService``, which RCB-Agent uses to record
the complete URL address of every object-download request the host
browser makes (paper Fig. 3, step 2) — the information that powers the
relative-to-absolute URL rewrite and the cache-mode mapping table.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

__all__ = ["ObserverService", "TOPIC_DOCUMENT_LOADED", "TOPIC_OBJECT_DOWNLOADED", "TOPIC_DOCUMENT_CHANGED", "TOPIC_USER_ACTION"]

#: A page's HTML document finished loading; payload is the Page.
TOPIC_DOCUMENT_LOADED = "document-loaded"

#: A supplementary object was downloaded; payload is a LoadedObject.
TOPIC_OBJECT_DOWNLOADED = "object-downloaded"

#: The current document mutated (Ajax/DHTML); payload is the Page.
TOPIC_DOCUMENT_CHANGED = "document-changed"

#: A local user action occurred (click, input, ...); payload is the action.
TOPIC_USER_ACTION = "user-action"


class ObserverService:
    """Subscribe callables to string topics; notify synchronously."""

    def __init__(self):
        self._observers: Dict[str, List[Callable[[str, Any], None]]] = {}
        self.notifications_sent = 0

    def add_observer(self, topic: str, observer: Callable[[str, Any], None]) -> None:
        """Subscribe ``observer`` to ``topic``."""
        if not callable(observer):
            raise TypeError("observer must be callable")
        self._observers.setdefault(topic, []).append(observer)

    def remove_observer(self, topic: str, observer: Callable[[str, Any], None]) -> None:
        """Unsubscribe (a no-op when not subscribed)."""
        observers = self._observers.get(topic, [])
        try:
            observers.remove(observer)
        except ValueError:
            pass

    def notify(self, topic: str, payload: Any = None) -> int:
        """Invoke every observer of ``topic``; returns how many ran."""
        observers = list(self._observers.get(topic, []))
        for observer in observers:
            observer(topic, payload)
        self.notifications_sent += len(observers)
        return len(observers)

    def observer_count(self, topic: str) -> int:
        """Number of observers subscribed to ``topic``."""
        return len(self._observers.get(topic, []))
