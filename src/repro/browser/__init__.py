"""Simulated browser substrate: cache, observers, pages, events, extensions."""

from .browser import Browser, BrowserExtension, NavigationError
from .cache import BrowserCache, CacheEntry, CacheMiss, CacheReadSession
from .observer import (
    ObserverService,
    TOPIC_DOCUMENT_CHANGED,
    TOPIC_DOCUMENT_LOADED,
    TOPIC_OBJECT_DOWNLOADED,
    TOPIC_USER_ACTION,
)
from .page import LoadedObject, Page
from .script import ScriptEngine, ScriptError, parse_call_expression

__all__ = [
    "Browser",
    "BrowserCache",
    "BrowserExtension",
    "CacheEntry",
    "CacheMiss",
    "CacheReadSession",
    "LoadedObject",
    "NavigationError",
    "ObserverService",
    "Page",
    "ScriptEngine",
    "ScriptError",
    "TOPIC_DOCUMENT_CHANGED",
    "TOPIC_DOCUMENT_LOADED",
    "TOPIC_OBJECT_DOWNLOADED",
    "TOPIC_USER_ACTION",
    "parse_call_expression",
]
