"""The simulated Web browser.

A :class:`Browser` ties together the substrates a real browser provides
to RCB: an HTTP client with cookies, an object cache, a page-load
pipeline that discovers and fetches supplementary objects (in parallel,
like the 2-6 connection browsers of the paper's era), an observer service
broadcasting load/mutation events, DOM event dispatch through event
attributes, and an extension host exposing the server-socket API that
RCB-Agent is built on.

All I/O methods (``navigate``, ``click_link``, ``submit_form``,
``ajax_request``) are generator-style simulation processes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from ..html import Document, Element, parse_document
from ..http import CookieJar, Headers, HttpClient, RequestFailed, encode_form
from ..net.socket import Host
from ..net.url import Url, parse_url, resolve_url
from ..sim import AllOf, Simulator
from .cache import BrowserCache
from .observer import (
    ObserverService,
    TOPIC_DOCUMENT_CHANGED,
    TOPIC_DOCUMENT_LOADED,
    TOPIC_OBJECT_DOWNLOADED,
    TOPIC_USER_ACTION,
)
from .page import LoadedObject, Page

__all__ = ["Browser", "BrowserExtension", "NavigationError"]

#: URL-bearing attributes considered supplementary objects, by tag.
_OBJECT_SOURCES: Tuple[Tuple[str, str], ...] = (
    ("img", "src"),
    ("script", "src"),
    ("frame", "src"),
    ("iframe", "src"),
    ("embed", "src"),
    ("input", "src"),  # <input type=image>
    ("body", "background"),
)


class NavigationError(Exception):
    """A page could not be loaded."""


class BrowserExtension:
    """Base class for installable extensions (end-user extensibility).

    Subclasses override :meth:`on_install` / :meth:`on_uninstall` and get
    access to the full browser internals — the seamless integration the
    paper's §3.2.2 argues makes a browser extension the right home for
    the co-browsing agent.
    """

    def __init__(self):
        self.browser: Optional["Browser"] = None

    def install(self, browser: "Browser") -> "BrowserExtension":
        """Attach this extension to ``browser`` and run its hook."""
        if self.browser is not None:
            raise RuntimeError("extension already installed")
        self.browser = browser
        browser.extensions.append(self)
        self.on_install()
        return self

    def uninstall(self) -> None:
        """Detach from the browser and run the teardown hook."""
        if self.browser is None:
            return
        self.on_uninstall()
        self.browser.extensions.remove(self)
        self.browser = None

    def on_install(self) -> None:  # pragma: no cover - default hook
        """Hook: runs after installation."""
        pass

    def on_uninstall(self) -> None:  # pragma: no cover - default hook
        """Hook: runs before detachment."""
        pass


class Browser:
    """A user's web browser instance."""

    def __init__(
        self,
        host: Host,
        name: Optional[str] = None,
        javascript_enabled: bool = True,
        max_parallel_fetches: int = 2,  # the 2-connections-per-host era
        cache_max_bytes: int = 50 * 1024 * 1024,
    ):
        self.host = host
        self.sim: Simulator = host.sim
        self.name = name or ("browser@" + host.name)
        self.javascript_enabled = javascript_enabled
        self.max_parallel_fetches = max(1, max_parallel_fetches)
        self.cookie_jar = CookieJar()
        self.client = HttpClient(host, cookie_jar=self.cookie_jar)
        self.cache = BrowserCache(max_bytes=cache_max_bytes)
        self.observers = ObserverService()
        self.history: List[str] = []
        self._history_index = -1
        self.page: Optional[Page] = None
        self.extensions: List[BrowserExtension] = []
        #: The address-bar content (a participant browser never leaves the
        #: RCB-Agent URL, even as page content changes underneath).
        self.address_bar: str = ""

    def __repr__(self) -> str:
        return "Browser(%r)" % (self.name,)

    # -- navigation --------------------------------------------------------------

    def navigate(
        self,
        url: Union[str, Url],
        method: str = "GET",
        body: bytes = b"",
        headers: Optional[Headers] = None,
        fetch_objects: bool = True,
    ):
        """Load a page: fetch HTML, parse, fetch supplementary objects.

        Generator process returning the loaded :class:`Page`.
        """
        if isinstance(url, str):
            url = parse_url(url)
        if not url.is_absolute:
            if self.page is None:
                raise NavigationError("relative navigation with no current page")
            url = resolve_url(self.page.url, url)

        started = self.sim.now
        try:
            response = yield from self.client.request(method, url, headers=headers, body=body)
        except RequestFailed as exc:
            raise NavigationError("cannot load %s: %s" % (url, exc))
        # Follow one level of redirect, as the shop's login flow uses.
        redirects = 0
        while response.status in (301, 302) and redirects < 5:
            location = response.headers.get("Location")
            if location is None:
                break
            url = resolve_url(url, parse_url(location))
            response = yield from self.client.request("GET", url)
            redirects += 1
        if response.status != 200:
            raise NavigationError(
                "server returned %d for %s" % (response.status, url)
            )

        document = parse_document(response.text())
        page = Page(url, document)
        page.html_load_time = self.sim.now - started

        self.page = page
        self.address_bar = str(url)
        # A fresh navigation truncates any forward entries.
        del self.history[self._history_index + 1 :]
        self.history.append(str(url))
        self._history_index = len(self.history) - 1

        if fetch_objects:
            yield from self._fetch_supplementary_objects(page)

        self.observers.notify(TOPIC_DOCUMENT_LOADED, page)
        return page

    def _fetch_supplementary_objects(self, page: Page):
        urls = self.discover_object_urls(page.document, page.url)
        if not urls:
            return
        started = self.sim.now
        queue: List[str] = list(urls)
        worker_count = min(self.max_parallel_fetches, len(queue))
        workers = [
            self.sim.process(self._object_worker(page, queue))
            for _ in range(worker_count)
        ]
        yield AllOf(self.sim, workers)
        page.objects_load_time = self.sim.now - started

    def _object_worker(self, page: Page, queue: List[str]):
        # Each worker gets its own client: separate connections model the
        # parallel-connection behaviour of real browsers.
        client = HttpClient(self.host, cookie_jar=self.cookie_jar)
        while queue:
            object_url = queue.pop(0)
            yield from self._fetch_object(page, client, object_url)
        client.close()

    def _fetch_object(self, page: Page, client: HttpClient, object_url: str):
        started = self.sim.now
        cached = self.cache.lookup(object_url)
        if cached is not None:
            loaded = LoadedObject(object_url, cached.content_type, cached.size, True, 0.0)
        else:
            try:
                response = yield from client.get(object_url)
            except RequestFailed:
                return  # a missing object does not fail the page
            if response.status != 200:
                return
            self.cache.store(object_url, response.content_type, response.body, self.sim.now)
            loaded = LoadedObject(
                object_url,
                response.content_type,
                len(response.body),
                False,
                self.sim.now - started,
            )
        page.objects.append(loaded)
        self.observers.notify(TOPIC_OBJECT_DOWNLOADED, loaded)

    @staticmethod
    def discover_object_urls(document: Document, base_url: Url) -> List[str]:
        """Absolute URLs of every supplementary object, document order."""
        seen = set()
        urls: List[str] = []

        def add(raw: Optional[str]):
            if not raw:
                return
            try:
                absolute = resolve_url(base_url, parse_url(raw))
            except Exception:
                return
            text = str(absolute.replace(fragment=None))
            if text not in seen:
                seen.add(text)
                urls.append(text)

        for element in document.descendant_elements():
            for tag, attribute in _OBJECT_SOURCES:
                if element.tag == tag:
                    if tag == "input" and element.get_attribute("type") != "image":
                        continue
                    add(element.get_attribute(attribute))
            if element.tag == "link":
                rel = (element.get_attribute("rel") or "").lower()
                if rel in ("stylesheet", "icon", "shortcut icon"):
                    add(element.get_attribute("href"))
        return urls

    def back(self):
        """Navigate to the previous history entry (generator process).

        Returns the loaded Page, or the current page when there is no
        earlier entry.  Cached objects make revisits cheap, as in a real
        browser.
        """
        if not self.can_go_back:
            return self.page
        target_index = self._history_index - 1
        page = yield from self._load_for_history(target_index)
        return page

    def forward(self):
        """Navigate to the next history entry (generator process)."""
        if not self.can_go_forward:
            return self.page
        target_index = self._history_index + 1
        page = yield from self._load_for_history(target_index)
        return page

    def reload(self):
        """Re-fetch the current page (generator process)."""
        if self.page is None:
            raise NavigationError("no page to reload")
        page = yield from self._load_for_history(self._history_index)
        return page

    def _load_for_history(self, target_index: int):
        """Load a history entry without rewriting the history list."""
        saved_history = list(self.history)
        page = yield from self.navigate(saved_history[target_index])
        self.history = saved_history
        self._history_index = target_index
        return page

    @property
    def can_go_back(self) -> bool:
        """Whether a previous history entry exists."""
        return self._history_index > 0

    @property
    def can_go_forward(self) -> bool:
        """Whether a next history entry exists."""
        return self._history_index < len(self.history) - 1

    def fetch_current_objects(self):
        """Re-run supplementary-object fetching for the current page.

        Used after the page's DOM was replaced in place (as Ajax-Snippet
        does on a participant): discovers the new object references and
        downloads whatever the cache does not already hold.  Generator
        process returning the elapsed simulated time.
        """
        if self.page is None:
            raise NavigationError("no page loaded")
        self.page.objects = []
        started = self.sim.now
        yield from self._fetch_supplementary_objects(self.page)
        return self.sim.now - started

    # -- DOM mutation (Ajax / DHTML, paper step 9) ---------------------------------

    def mutate_document(self, mutator: Callable[[Document], None]) -> None:
        """Apply a scripted DOM change to the current page and broadcast
        a document-changed notification (what RCB-Agent listens for)."""
        if self.page is None:
            raise NavigationError("no page to mutate")
        mutator(self.page.document)
        self.page.version += 1
        self.observers.notify(TOPIC_DOCUMENT_CHANGED, self.page)

    def ajax_request(self, method: str, url: Union[str, Url], body: bytes = b""):
        """Issue an XMLHttpRequest-style background request.

        Generator process returning the :class:`HttpResponse`; does not
        navigate or touch the address bar.
        """
        if isinstance(url, str):
            url = parse_url(url)
        if not url.is_absolute and self.page is not None:
            url = resolve_url(self.page.url, url)
        response = yield from self.client.request(method, url, body=body)
        return response

    # -- user interaction ------------------------------------------------------------

    def dispatch_event(self, element: Element, event_type: str, event=None) -> Optional[bool]:
        """Fire an event at an element, running its on-attribute handler.

        Returns the handler result (False cancels the default action) or
        None when no handler is attached or JavaScript is disabled.
        """
        if self.page is None:
            raise NavigationError("no page loaded")
        expression = element.get_attribute("on" + event_type.lower())
        self.observers.notify(
            TOPIC_USER_ACTION, {"type": event_type, "element": element}
        )
        if expression is None or not expression.strip() or not self.javascript_enabled:
            return None
        return self.page.scripts.invoke_attribute(expression, element, event)

    def click_link(self, anchor: Element):
        """Click an <a>: run onclick, then follow href unless cancelled.

        Generator process returning the new Page (or the current page if
        the click was cancelled or the anchor has no href).
        """
        outcome = self.dispatch_event(anchor, "click")
        if outcome is False:
            return self.page
        href = anchor.get_attribute("href")
        if not href:
            return self.page
        page = yield from self.navigate(href)
        return page

    def fill_field(self, field: Element, value: str) -> None:
        """Type into an input/textarea (sets its value attribute)."""
        if field.tag == "textarea":
            field.remove_all_children()
            field.inner_html = value
        else:
            field.set_attribute("value", value)
        self.observers.notify(
            TOPIC_USER_ACTION, {"type": "input", "element": field, "value": value}
        )

    def submit_form(self, form: Element, extra_fields: Optional[Dict[str, str]] = None):
        """Submit a <form>: run onsubmit, then send it unless cancelled.

        Generator process returning the resulting Page (or the current
        page when the submission was intercepted).
        """
        if extra_fields:
            for name, value in extra_fields.items():
                field = self._find_form_field(form, name)
                if field is None:
                    field = Element("input", {"type": "hidden", "name": name})
                    form.append_child(field)
                self.fill_field(field, value)

        outcome = self.dispatch_event(form, "submit")
        if outcome is False:
            return self.page

        fields = self.collect_form_fields(form)
        action = form.get_attribute("action") or str(self.page.url)
        method = (form.get_attribute("method") or "GET").upper()
        if method == "POST":
            page = yield from self.navigate(action, method="POST", body=encode_form(fields))
        else:
            target = parse_url(action)
            query = encode_form(fields).decode("utf-8")
            target = target.replace(query=query or None)
            page = yield from self.navigate(target)
        return page

    @staticmethod
    def collect_form_fields(form: Element) -> Dict[str, str]:
        """Current name→value pairs of a form's controls."""
        fields: Dict[str, str] = {}
        for element in form.descendant_elements():
            name = element.get_attribute("name")
            if not name:
                continue
            if element.tag == "input":
                input_type = (element.get_attribute("type") or "text").lower()
                if input_type in ("checkbox", "radio") and not element.has_attribute("checked"):
                    continue
                if input_type in ("submit", "button", "image"):
                    continue
                fields[name] = element.get_attribute("value") or ""
            elif element.tag == "textarea":
                fields[name] = element.text_content
            elif element.tag == "select":
                selected = ""
                for option in element.get_elements_by_tag_name("option"):
                    value = option.get_attribute("value") or option.text_content
                    if option.has_attribute("selected") or not selected:
                        selected = value
                    if option.has_attribute("selected"):
                        break
                fields[name] = selected
        return fields

    @staticmethod
    def _find_form_field(form: Element, name: str) -> Optional[Element]:
        for element in form.descendant_elements():
            if element.get_attribute("name") == name and element.tag in (
                "input",
                "textarea",
                "select",
            ):
                return element
        return None

    # -- housekeeping -------------------------------------------------------------

    def clear_cache(self) -> None:
        """Empty the browser's object cache."""
        self.cache.clear()

    def close(self) -> None:
        """Drop connections and uninstall every extension."""
        self.client.close()
        for extension in list(self.extensions):
            extension.uninstall()
