"""Kernel instrumentation: event counting and ring-buffer tracing.

:class:`InstrumentedSimulator` is a drop-in :class:`~repro.sim.Simulator`
that counts scheduling activity, tracks queue depth, histograms events by
type, and keeps a bounded trace of the most recent events — the tooling
you want when a co-browsing scenario deadlocks or a benchmark's simulated
time looks wrong.

    sim = InstrumentedSimulator(trace_capacity=200)
    ... run a workload ...
    print(sim.kernel_stats.summary())
    for line in sim.kernel_stats.recent_trace():
        print(line)
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from .kernel import Event, Simulator

__all__ = ["InstrumentedSimulator", "KernelStats"]


class KernelStats:
    """Counters and a bounded event trace for one simulator."""

    def __init__(self, trace_capacity: int = 0):
        if trace_capacity < 0:
            raise ValueError("trace_capacity must be non-negative")
        self.events_scheduled = 0
        self.events_processed = 0
        self.max_queue_depth = 0
        self.failures_processed = 0
        self.by_type: Dict[str, int] = {}
        self.trace_capacity = trace_capacity
        self._trace: Deque[Tuple[float, str]] = deque(maxlen=trace_capacity or None)

    def note_scheduled(self, event: Event, queue_depth: int) -> None:
        """Record one event entering the queue."""
        self.events_scheduled += 1
        if queue_depth > self.max_queue_depth:
            self.max_queue_depth = queue_depth

    def note_processed(self, now: float, event: Event) -> None:
        """Record one event firing (and trace it)."""
        self.events_processed += 1
        type_name = type(event).__name__
        self.by_type[type_name] = self.by_type.get(type_name, 0) + 1
        if event.triggered and not event._ok:
            self.failures_processed += 1
        if self.trace_capacity:
            self._trace.append((now, self._describe(event)))

    @staticmethod
    def _describe(event: Event) -> str:
        name = getattr(event, "name", None)
        if name:
            return "%s(%s)" % (type(event).__name__, name)
        return type(event).__name__

    def recent_trace(self) -> List[str]:
        """The most recent events, oldest first, formatted."""
        return ["%.6f  %s" % (when, what) for when, what in self._trace]

    def summary(self) -> str:
        """Human-readable counters, one block of text."""
        lines = [
            "kernel: %d scheduled, %d processed, max queue %d, %d failures"
            % (
                self.events_scheduled,
                self.events_processed,
                self.max_queue_depth,
                self.failures_processed,
            )
        ]
        for type_name in sorted(self.by_type):
            lines.append("  %-12s %d" % (type_name, self.by_type[type_name]))
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero all counters and drop the trace."""
        self.events_scheduled = 0
        self.events_processed = 0
        self.max_queue_depth = 0
        self.failures_processed = 0
        self.by_type.clear()
        self._trace.clear()


class InstrumentedSimulator(Simulator):
    """A Simulator that records :class:`KernelStats` as it runs."""

    def __init__(self, trace_capacity: int = 100):
        super().__init__()
        self.kernel_stats = KernelStats(trace_capacity)

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        super()._schedule_event(event, delay)
        self.kernel_stats.note_scheduled(event, len(self._queue))

    def step(self) -> None:
        """Process one event, recording it afterwards."""
        if not self._queue:
            super().step()  # will raise IndexError consistently
            return
        _when, _seq, event = self._queue[0]
        super().step()
        self.kernel_stats.note_processed(self.now, event)
