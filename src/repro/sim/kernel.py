"""Discrete-event simulation kernel.

The kernel provides a deterministic event loop with generator-based
processes, in the style of SimPy.  Every higher layer of the reproduction
(network links, sockets, HTTP exchanges, browsers, RCB polling) runs as a
:class:`Process` on a single :class:`Simulator`.

A process is a Python generator that yields *events*:

* ``yield sim.timeout(1.5)`` — resume 1.5 simulated seconds later.
* ``yield some_event`` — resume when the event is triggered.
* ``yield other_process`` — resume when the other process terminates
  (processes are themselves events whose value is the generator's return
  value).
* ``yield AnyOf([a, b])`` / ``yield AllOf([a, b])`` — composite waits.

Determinism: events scheduled for the same simulated time fire in FIFO
order of scheduling, so repeated runs are bit-for-bit identical.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. triggering an event twice)."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Internal marker for "event has not produced a value yet".
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it becomes *triggered* through
    :meth:`succeed` or :meth:`fail`, at which point it is scheduled on the
    simulator and, when processed, wakes every waiting process (callbacks).
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once the event has a value (scheduled or processed)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid when triggered."""
        if self._ok is None:
            raise SimulationError("event value is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will see the exception thrown at their yield
        point.
        """
        if self.triggered:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        # Preserve a pre-set defuse mark: interrupt() defuses abandoned
        # events *before* they fail (e.g. a store closing under a recv
        # whose waiter was interrupted away).
        self._defused = getattr(self, "_defused", False)
        self.sim._schedule_event(self)
        return self

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately at the current time by
            # scheduling a zero-delay bridge event.  This keeps semantics
            # uniform (callbacks never run synchronously inside add).
            bridge = Event(self.sim)
            bridge.callbacks.append(callback)
            bridge._ok = self._ok
            bridge._value = self._value
            self.sim._schedule_event(bridge)
        else:
            self.callbacks.append(callback)

    def _process_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative delay: %r" % (delay,))
        super().__init__(sim)
        self.delay = delay
        # The value is applied when the event fires (see Simulator.step),
        # so `triggered` stays False until the simulated time is reached.
        self._fire = (True, value)
        sim._schedule_event(self, delay=delay)


class Process(Event):
    """A running generator; also an event that fires on termination."""

    def __init__(self, sim: "Simulator", generator: Generator):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator, got %r" % (generator,))
        self.generator = generator
        self.name = getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Kick off the process at the current simulated time.
        bootstrap = Event(sim)
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.callbacks.append(self._resume)
        sim._schedule_event(bootstrap)

    @property
    def is_alive(self) -> bool:
        """True while the process has not terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        # Detach from whatever the process was waiting on.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            if not target.callbacks or (target.triggered and not target._ok):
                # The process abandons the event; if it has failed — or
                # fails later with no other waiter (e.g. a connection
                # closing under a parked recv) — nobody will consume its
                # exception, so mark it handled.
                target._defused = True
        self._target = None
        interrupt_event.callbacks.append(self._resume)
        self.sim._schedule_event(interrupt_event)

    def _resume(self, event: Event) -> None:
        self._target = None
        try:
            if event._ok:
                result = self.generator.send(event._value)
            else:
                # Mark the exception as handled by this process.
                event._defused = True
                exc = event._value
                result = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # process crashed
            self.fail(exc)
            return

        if not isinstance(result, Event):
            crash = RuntimeError(
                "process %r yielded a non-event: %r" % (self.name, result)
            )
            self.generator.close()
            self.fail(crash)
            return
        if result.sim is not self.sim:
            raise SimulationError("event belongs to a different simulator")
        self._target = result
        result._add_callback(self._resume)


class Condition(Event):
    """Composite event over several sub-events.

    ``evaluate`` receives (events, n_triggered) and returns True when the
    condition is satisfied.  The condition's value is an ordered dict-like
    mapping of triggered events to their values.
    """

    def __init__(
        self,
        sim: "Simulator",
        events: Iterable[Event],
        evaluate: Callable[[List[Event], int], bool],
    ):
        super().__init__(sim)
        self.events = list(events)
        self._evaluate = evaluate
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("event belongs to a different simulator")
            event._add_callback(self._check)

    def _collect_values(self) -> dict:
        return {
            event: event._value for event in self.events if event.triggered
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self.events, self._count):
            self.succeed(self._collect_values())


def AnyOf(sim: "Simulator", events: Iterable[Event]) -> Condition:
    """Triggered as soon as any sub-event triggers."""
    return Condition(sim, events, lambda events, count: count > 0)


def AllOf(sim: "Simulator", events: Iterable[Event]) -> Condition:
    """Triggered once every sub-event has triggered."""
    return Condition(sim, events, lambda events, count: count >= len(events))


class Simulator:
    """The event loop: a priority queue of (time, sequence, event)."""

    def __init__(self):
        self.now: float = 0.0
        self._queue: List = []
        self._sequence = itertools.count()

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered Event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a generator as a Process."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> Condition:
        """Condition triggered by the first of ``events``."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> Condition:
        """Condition triggered once all ``events`` trigger."""
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self.now + delay, next(self._sequence), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process one event."""
        when, _seq, event = heapq.heappop(self._queue)
        self.now = when
        if event._value is _PENDING:
            # Deferred-value events (timeouts) receive their value now.
            event._ok, event._value = getattr(event, "_fire", (True, None))
        event._process_callbacks()
        if event._ok is False and not getattr(event, "_defused", True):
            # A failed event nobody handled: propagate, matching the
            # "errors should never pass silently" rule.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``."""
        if until is not None and until < self.now:
            raise ValueError("until (%r) is in the past (now=%r)" % (until, self.now))
        while self._queue:
            if until is not None and self.peek() > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = until

    def run_until_complete(self, process: Process, limit: float = 1e9) -> Any:
        """Run until ``process`` terminates; return its value or re-raise.

        ``limit`` bounds simulated time to protect against livelock.
        """
        while not process.triggered:
            if not self._queue:
                raise SimulationError(
                    "deadlock: no scheduled events but process %r is alive"
                    % (process.name,)
                )
            if self.peek() > limit:
                raise SimulationError(
                    "simulated time limit %r exceeded waiting for %r"
                    % (limit, process.name)
                )
            self.step()
        process._defused = True
        if not process._ok:
            raise process._value
        return process._value
