"""Synchronization primitives built on the kernel: stores and resources.

:class:`Store` is an unbounded (or bounded) FIFO queue of items with
event-returning ``put``/``get`` — the building block for simulated network
channels and socket buffers.  :class:`Resource` models mutually exclusive
capacity (e.g. a server worker pool).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from .kernel import Event, SimulationError, Simulator

__all__ = ["Store", "Resource", "StoreClosed"]


class StoreClosed(Exception):
    """Raised to getters/putters when a Store is closed."""


class Store:
    """FIFO item queue with blocking get and optionally bounded put."""

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self.items)

    @property
    def closed(self) -> bool:
        """Whether close() has been called."""
        return self._closed

    def put(self, item: Any) -> Event:
        """Return an event that triggers once ``item`` is enqueued."""
        if self._closed:
            raise StoreClosed("put() on a closed store")
        event = self.sim.event()
        event.item = item
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> Event:
        """Return an event that triggers with the next item."""
        if self._closed and not self.items and not self._putters:
            event = self.sim.event()
            event.fail(StoreClosed("get() on a drained, closed store"))
            return event
        event = self.sim.event()
        self._getters.append(event)
        self._dispatch()
        return event

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty."""
        self._dispatch()
        if self.items:
            item = self.items.popleft()
            self._dispatch()
            return item
        return None

    def close(self) -> None:
        """Close the store; pending and future getters fail once drained."""
        if self._closed:
            return
        self._closed = True
        self._dispatch()
        # Fail getters that can never be satisfied.
        if not self.items and not self._putters:
            while self._getters:
                getter = self._getters.popleft()
                if not getter.triggered:
                    getter.fail(StoreClosed("store closed while waiting"))

    def _dispatch(self) -> None:
        # Move items from putters into the buffer while capacity allows.
        while self._putters and len(self.items) < self.capacity:
            putter = self._putters.popleft()
            self.items.append(putter.item)
            putter.succeed()
        # Hand buffered items to waiting getters.
        while self._getters and self.items:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(self.items.popleft())
            # Space may have been freed for putters.
            while self._putters and len(self.items) < self.capacity:
                putter = self._putters.popleft()
                self.items.append(putter.item)
                putter.succeed()


class Resource:
    """Counting resource with FIFO request queue (like a semaphore)."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        """Unclaimed capacity."""
        return self.capacity - self.in_use

    def request(self) -> Event:
        """Return an event that triggers once a slot is acquired."""
        event = self.sim.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one slot; wakes the next FIFO waiter."""
        if self.in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed()
        else:
            self.in_use -= 1

    def queued(self) -> int:
        """Number of blocked requesters."""
        return len(self._waiters)


def drain(store: Store) -> List[Any]:
    """Remove and return every buffered item (non-blocking)."""
    items = []
    while True:
        item = store.try_get()
        if item is None:
            break
        items.append(item)
    return items
