"""Discrete-event simulation kernel used by every substrate in the repo."""

from .kernel import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Resource, Store, StoreClosed, drain
from .trace import InstrumentedSimulator, KernelStats

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "InstrumentedSimulator",
    "Interrupt",
    "KernelStats",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "StoreClosed",
    "Timeout",
    "drain",
]
