"""Extension experiment: co-browsing hosted from a mobile device (§6).

The paper's future-work section reports a preliminary Fennec port on a
Nokia N810 internet tablet: "RCB-Agent can also efficiently support
co-browsing using mobile devices".  This experiment hosts sessions from
a simulated N810 (802.11g Wi-Fi link, content generation an order of
magnitude slower than a desktop) and compares against the desktop host.
"""

from repro.core import CoBrowsingSession
from repro.webserver import TABLE1_SITES
from repro.workloads import MOBILE_GENERATION_COST_PER_KB, build_lan, build_mobile

from conftest import write_result

SITES = [TABLE1_SITES[1], TABLE1_SITES[4], TABLE1_SITES[0]]  # small/mid/large


def measure(build, generation_cost):
    testbed = build()
    session = CoBrowsingSession(testbed.host_browser, poll_interval=1.0)
    session.agent.generation_cost_per_kb = generation_cost
    rows = {}

    def scenario():
        snippet = yield from session.join(testbed.participant_browser)
        for spec in SITES:
            yield from session.host_navigate("http://%s/" % spec.host)
            yield from session.wait_until_synced(timeout=600)
            rows[spec.host] = snippet.stats.last_sync_seconds
        session.leave(snippet)

    testbed.run(scenario())
    session.close()
    return rows


def test_mobile_host_stays_usable(benchmark, results_dir):
    def both():
        desktop = measure(build_lan, 0.0)
        mobile = measure(build_mobile, MOBILE_GENERATION_COST_PER_KB)
        return desktop, mobile

    desktop, mobile = benchmark.pedantic(both, rounds=1, iterations=1)

    lines = [
        "Extension: hosting from a Nokia-N810-class tablet vs a desktop (M2)",
        "%-14s %14s %14s %8s" % ("site", "desktop M2", "mobile M2", "ratio"),
    ]
    for spec in SITES:
        ratio = mobile[spec.host] / desktop[spec.host]
        lines.append(
            "%-14s %13.3fs %13.3fs %7.1fx"
            % (spec.host, desktop[spec.host], mobile[spec.host], ratio)
        )
    write_result(results_dir, "ext_mobile_host.txt", "\n".join(lines))

    for spec in SITES:
        # The tablet is slower (real CPU + Wi-Fi cost)...
        assert mobile[spec.host] > desktop[spec.host]
        # ...but synchronization stays comfortably interactive — the
        # paper's "efficiently support co-browsing on mobile" claim.
        assert mobile[spec.host] < 2.5
