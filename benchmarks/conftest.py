"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it
runs the experiment on the simulated testbed, prints the same rows or
series the paper reports, writes that rendering to
``benchmarks/results/``, and asserts the paper's shape claims.  Wall
time of the heavy simulation is registered with pytest-benchmark via a
single pedantic round (the experiments themselves are deterministic, so
repeated timing rounds would only re-measure the same work).
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir, name, text):
    path = os.path.join(results_dir, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print("\n" + text)
    return path
