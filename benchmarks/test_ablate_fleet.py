"""Ablation: the fleet telemetry plane — client truth vs host inference.

Two claims the telemetry digests make:

* **The host's inferred staleness under-reads** — the SLO engine's
  classic signal samples ``host doc_time - member acked time`` on a
  fixed cadence.  Under long poll and push the fleet re-synchronizes
  within milliseconds of every edit, so off-phase samples alias to ~0
  and the host concludes nobody is stale.  The client-measured digests
  (staleness stamped *at apply time* from the envelope's own
  ``doc_time``) capture the delivery latency every member actually
  experienced — at N=256 over a WAN-profile fleet the two disagree by
  an order of magnitude, and only the client-measured view catches a
  deliberately congested straggler.
* **The books are cheap** — running the same session with telemetry on
  costs a few percent of serve throughput at worst (the absolute floor
  ``telemetry-overhead`` in floors.json gates the ratio).

Writes ``ablation_fleet.json`` (per-transport divergence table),
``fleet_view.json`` (one full :meth:`FleetView.to_dict` export for the
nightly artifact), and ``fleet_overhead.txt`` (the floor's input).
"""

import gc
import json
import time

from repro.browser import Browser
from repro.core import CoBrowsingSession
from repro.html import Text
from repro.net import LAN_PROFILE, WAN_HOME_PROFILE, Host, Network
from repro.net.link import LinkProfile
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite

from conftest import write_result

PAGE = (
    "<html><head><title>Fleet ablation</title></head><body>"
    + "".join("<p id='p%d'>paragraph %d body text</p>" % (i, i) for i in range(8))
    + "</body></html>"
)

N_MEMBERS = 256
MODES = ("longpoll", "push")
EDITS = 12
EDIT_INTERVAL = 0.5
#: Host-side sampling cadence, deliberately off-phase with the edit
#: cadence (0.13 + k*0.25 never lands on k*0.5): the realistic case
#: where the monitor's clock is independent of the edit stream.
SAMPLE_OFFSET = 0.13
SAMPLE_INTERVAL = 0.25

#: One member rides a congested uplink: ~350 ms propagation each way
#: dwarfs the WAN fleet's 25 ms, so its *client-measured* staleness is
#: an outlier the robust z-score must flag.
STRAGGLER_PROFILE = LinkProfile("congested-dsl", 256e3, 128e3, 0.35)


def _build_world(transport=None, telemetry=None, poll_interval=0.5):
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page("/", PAGE)
    OriginServer(network, "site.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    host = Browser(host_pc, name="bob")
    session = CoBrowsingSession(
        host,
        poll_interval=poll_interval,
        transport=transport,
        telemetry=telemetry,
    )
    return sim, network, host, session


def _edit(browser, index, text):
    def mutate(document):
        target = document.get_element_by_id("p%d" % index)
        target.remove_all_children()
        target.append_child(Text(text))

    browser.mutate_document(mutate)


def _p95(values):
    """Nearest-rank p95 of a plain sample list."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(0, int(0.95 * len(ordered) + 0.5) - 1)
    return float(ordered[min(rank, len(ordered) - 1)])


def _run_mode(mode):
    """One N=256 telemetry-on session under ``mode``; returns the
    divergence record and the final fleet view."""
    sim, network, host, session = _build_world(transport=mode, telemetry=True)
    guests = []
    for i in range(N_MEMBERS):
        profile = STRAGGLER_PROFILE if i == N_MEMBERS - 1 else WAN_HOME_PROFILE
        guests.append(
            Browser(
                Host(network, "fpc-%d" % i, profile, segment="home-%d" % i),
                name="f%03d" % i,
            )
        )
    straggler = guests[-1].name

    host_samples = []

    def sampler():
        # The host-inferred signal: what the SLO engine would read.  The
        # offset keeps the cadence off-phase with the edit stream (the
        # realistic case: the monitor's clock is independent of edits).
        yield sim.timeout(SAMPLE_OFFSET)
        while True:
            host_time = session.agent.doc_time
            for _member, acked in session.member_times().items():
                host_samples.append(float(max(0, host_time - acked)))
            yield sim.timeout(SAMPLE_INTERVAL)

    def scenario():
        for guest in guests:
            yield from session.join(guest)
        yield from session.host_navigate("http://site.com/")
        yield from session.wait_until_synced(timeout=240.0)
        sim.process(sampler())
        for tick in range(EDITS):
            _edit(host, tick % 8, "tick %d %s" % (tick, "x" * 24))
            yield sim.timeout(EDIT_INTERVAL)
        # Quiesce: every member flushes its last digest upstream.
        yield sim.timeout(4.0)

    sim.run_until_complete(sim.process(scenario()))
    view = session.fleet
    record = {
        "transport": mode,
        "members": N_MEMBERS,
        "edits": EDITS,
        "members_reporting": view.member_count,
        "client_staleness_p95_ms": view.staleness_p95(),
        "host_inferred_staleness_p95_ms": _p95(host_samples),
        "host_samples": len(host_samples),
        "apply_p99_us": view.apply_p99(),
        "telemetry_overhead_ratio": view.telemetry_overhead_ratio(),
        "stragglers": view.stragglers(),
    }
    session.close()
    return record, view, straggler


def test_fleet_divergence_and_straggler(benchmark, results_dir):
    runs = {}

    def run_all():
        for mode in MODES:
            runs[mode] = _run_mode(mode)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    records = []
    exported_view = None
    for mode in MODES:
        record, view, straggler = runs[mode]
        records.append(record)
        # Every member's digest made it upstream under the byte cap.
        assert record["members_reporting"] == N_MEMBERS
        assert view.max_blob_bytes <= view.byte_cap
        # The divergence: client truth dwarfs the host's aliased signal.
        client = record["client_staleness_p95_ms"]
        host_inferred = record["host_inferred_staleness_p95_ms"]
        assert client > 10.0, (
            "%s: WAN delivery latency must register client-side" % mode
        )
        assert client > 2.0 * host_inferred + 1.0, (
            "%s: client-measured p95 (%.1f ms) should dwarf the "
            "host-inferred p95 (%.1f ms)" % (mode, client, host_inferred)
        )
        # Only the client-measured view singles out the congested member:
        # it must rank as the worst straggler (entries sort by score).
        flagged = [entry["member"] for entry in record["stragglers"]]
        assert flagged and flagged[0] == straggler, (
            "%s: the congested member must rank worst, got %r" % (mode, flagged[:3])
        )
        if exported_view is None:
            exported_view = view.to_dict()

    write_result(
        results_dir, "ablation_fleet.json", json.dumps(records, indent=1, sort_keys=True)
    )
    write_result(
        results_dir,
        "fleet_view.json",
        json.dumps(exported_view, indent=1, sort_keys=True),
    )


# -- telemetry overhead: digests on vs dark -------------------------------------------


def _overhead_world(with_telemetry):
    """One long-lived serve-heavy flat session, set up and synced."""
    sim, network, host, session = _build_world(
        telemetry=True if with_telemetry else None, poll_interval=0.1
    )
    guests = [
        Browser(
            Host(network, "tpc-%d" % i, LAN_PROFILE, segment="campus"),
            name="t%02d" % i,
        )
        for i in range(16)
    ]

    def setup():
        for guest in guests:
            yield from session.join(guest)
        yield from session.host_navigate("http://site.com/")
        yield from session.wait_until_synced()

    sim.run_until_complete(sim.process(setup()))
    return sim, host, session


def test_fleet_telemetry_overhead(benchmark, results_dir):
    """Telemetry enabled must stay within a few percent of dark."""
    measurements = {}

    SEGMENTS = 40
    TICKS_PER_SEGMENT = 10

    def run_both():
        # Identical long-lived sessions, one per arm, advanced in small
        # alternating churn segments with the CPU time of each segment
        # summed per arm.  Noisy-neighbour epochs last much longer than
        # one ~0.1 s segment, so every epoch taxes both arms almost
        # equally and cancels out of the ratio — unlike best-of or
        # median over whole-session windows, which this container's
        # two-sided timing noise defeats.
        worlds = {
            key: _overhead_world(flag)
            for key, flag in (("dark", False), ("telemetry", True))
        }
        totals = {key: 0.0 for key in worlds}
        ticks = {key: 0 for key in worlds}

        def chunk(sim, host, start):
            for tick in range(start, start + TICKS_PER_SEGMENT):
                _edit(host, tick % 8, "tick %d" % tick)
                yield sim.timeout(0.25)

        # Two untimed warm-up segments per arm: the digest encode path
        # only runs in the telemetry arm, so without warm-up its
        # first-encounter costs would all land in timed segments.
        for key, (sim, host, session) in worlds.items():
            for _warm in range(2):
                sim.run_until_complete(
                    sim.process(chunk(sim, host, ticks[key]))
                )
                ticks[key] += TICKS_PER_SEGMENT

        for segment in range(SEGMENTS):
            order = ("dark", "telemetry") if segment % 2 == 0 else (
                "telemetry", "dark"
            )
            for key in order:
                sim, host, session = worlds[key]
                # Identical collector state entering every timed
                # segment; the collector itself stays out of them.
                gc.collect()
                gc.disable()
                try:
                    started = time.process_time()
                    sim.run_until_complete(
                        sim.process(chunk(sim, host, ticks[key]))
                    )
                    totals[key] += time.process_time() - started
                finally:
                    gc.enable()
                ticks[key] += TICKS_PER_SEGMENT
        for key, (sim, host, session) in worlds.items():
            measurements[key] = session.agent.stats["polls"] / totals[key]
            session.close()

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    ratio = measurements["telemetry"] / measurements["dark"]
    text = (
        "Fleet telemetry overhead (flat session, 16 members, %d alternating "
        "churn segments, summed CPU time): "
        "telemetry %.1f polls/s vs dark %.1f polls/s (%.3fx ratio)"
        % (SEGMENTS, measurements["telemetry"], measurements["dark"], ratio)
    )
    write_result(results_dir, "fleet_overhead.txt", text)
    # The CI floor (floors.json: telemetry-overhead >= 0.95) is the real
    # <5% gate; locally only guard against something pathological.
    assert ratio > 0.5
