#!/usr/bin/env python3
"""Benchmark regression guard for the CI smoke job.

Compares the freshly measured ``harness_throughput`` rendering against
the committed baseline in ``benchmarks/results/`` and fails (exit 1)
when throughput dropped by more than the threshold.  Both files carry a
line like::

    Full-stack surf: 14 pages + 10 mutations in 2.51 s wall (9.6 operations/s); ...

Usage::

    python check_regression.py BASELINE CURRENT [--threshold 0.25]
    python check_regression.py --spec floors.json

Faster-than-baseline results always pass (and print a hint to refresh
the committed baseline when the gain is large).

The ``--spec`` form checks many absolute floors in one run.  The spec
is a JSON file with a ``floors`` list; each entry names a rendering
file (relative to the spec's directory), the floor the extracted figure
must clear, and optionally a custom capture regex (group 1 must be the
number — the default pattern matches ``(N operations/s)``)::

    {"floors": [{"name": "serve-batched-n256",
                 "file": "results/serve_throughput.txt",
                 "pattern": "N=256\\): ([0-9.]+) serves/s",
                 "floor": 20000,
                 "unit": "serves/s"}]}

Every entry is evaluated (one breach does not hide the others); the
verdict table lists them all and the exit code is 1 if any failed.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import List, Optional, Tuple

THROUGHPUT_PATTERN = re.compile(r"\(([0-9]+(?:\.[0-9]+)?) operations/s\)")


class GuardError(Exception):
    """The rendering carries no parsable throughput figure."""


def parse_metric(text: str, pattern: Optional[str] = None) -> float:
    """Extract a numeric figure from a rendering.

    ``pattern`` is a regex whose group 1 captures the number; ``None``
    falls back to the ``(N operations/s)`` throughput convention.
    """
    regex = re.compile(pattern) if pattern is not None else THROUGHPUT_PATTERN
    match = regex.search(text)
    if match is None:
        raise GuardError(
            "no figure matching %r found" % (pattern or THROUGHPUT_PATTERN.pattern)
        )
    return float(match.group(1))


def parse_throughput(text: str) -> float:
    """Extract the operations/s figure from a throughput rendering."""
    return parse_metric(text)


def check(baseline_ops: float, current_ops: float, threshold: float) -> str:
    """Return a verdict line; raise GuardError on a regression."""
    if baseline_ops <= 0:
        raise GuardError("baseline throughput must be positive")
    change = (current_ops - baseline_ops) / baseline_ops
    if change < -threshold:
        raise GuardError(
            "throughput regressed %.1f%% (%.1f -> %.1f operations/s, "
            "threshold %.0f%%)"
            % (-change * 100, baseline_ops, current_ops, threshold * 100)
        )
    verdict = "throughput %.1f -> %.1f operations/s (%+.1f%%): OK" % (
        baseline_ops,
        current_ops,
        change * 100,
    )
    if change > threshold:
        verdict += "\nnote: large gain — consider refreshing the committed baseline"
    return verdict


def check_floor(current_ops: float, floor: float) -> str:
    """Verdict for an absolute operations/s floor; raise on a breach."""
    if current_ops < floor:
        raise GuardError(
            "throughput %.1f operations/s is below the floor of %.1f"
            % (current_ops, floor)
        )
    return "throughput %.1f operations/s >= floor %.1f: OK" % (current_ops, floor)


def check_spec(spec_path: str) -> Tuple[List[str], List[str]]:
    """Evaluate every floor entry of a JSON spec file.

    Returns ``(table_lines, failures)``: a rendered verdict table
    covering all entries, and one message per breached (or unreadable)
    entry.  File paths in the spec are resolved against the spec's own
    directory so the guard works from any working directory.
    """
    with open(spec_path) as handle:
        spec = json.load(handle)
    entries = spec.get("floors")
    if not isinstance(entries, list) or not entries:
        raise GuardError("spec %s has no 'floors' list" % spec_path)
    base_dir = os.path.dirname(os.path.abspath(spec_path))

    rows: List[Tuple[str, str, str, str, str]] = []
    failures: List[str] = []
    for entry in entries:
        name = entry.get("name") or entry.get("file", "?")
        unit = entry.get("unit", "operations/s")
        floor = float(entry["floor"])
        try:
            with open(os.path.join(base_dir, entry["file"])) as handle:
                value = parse_metric(handle.read(), entry.get("pattern"))
        except (OSError, GuardError, KeyError) as exc:
            failures.append("%s: %s" % (name, exc))
            rows.append((name, "?", "%g" % floor, unit, "ERROR"))
            continue
        if value >= floor:
            verdict = "OK"
        else:
            verdict = "FAIL"
            failures.append(
                "%s: %.1f %s is below the floor of %g" % (name, value, unit, floor)
            )
        rows.append((name, "%.1f" % value, "%g" % floor, unit, verdict))

    headers = ("metric", "current", "floor", "unit", "verdict")
    widths = [
        max(len(headers[i]), max(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    fmt = "  ".join("%%-%ds" % width for width in widths)
    table = [fmt % headers, fmt % tuple("-" * width for width in widths)]
    table.extend(fmt % row for row in rows)
    return table, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="committed throughput rendering (with --floor and no CURRENT, "
        "the single file checked against the absolute floor)",
    )
    parser.add_argument(
        "current", nargs="?", default=None, help="freshly measured rendering"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated fractional slowdown (default 0.25)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=None,
        help="absolute minimum operations/s the measured rendering must "
        "clear (checked on CURRENT, or on the single file when CURRENT "
        "is omitted)",
    )
    parser.add_argument(
        "--spec",
        default=None,
        help="JSON spec of absolute metric floors (see module docstring); "
        "replaces the BASELINE/CURRENT pair",
    )
    args = parser.parse_args(argv)
    if args.spec is not None:
        if args.baseline is not None or args.current is not None:
            parser.error("--spec does not take BASELINE/CURRENT files")
        try:
            table, failures = check_spec(args.spec)
        except (OSError, GuardError, ValueError) as exc:
            print("benchmark regression guard: %s" % exc, file=sys.stderr)
            return 1
        print("\n".join(table))
        if failures:
            for failure in failures:
                print("benchmark regression guard: %s" % failure, file=sys.stderr)
            return 1
        return 0
    if args.baseline is None:
        parser.error("a BASELINE file or --spec is required")
    if args.current is None and args.floor is None:
        parser.error("a CURRENT file or --floor is required")
    try:
        with open(args.baseline) as handle:
            baseline_ops = parse_throughput(handle.read())
        if args.current is not None:
            with open(args.current) as handle:
                current_ops = parse_throughput(handle.read())
            print(check(baseline_ops, current_ops, args.threshold))
        else:
            current_ops = baseline_ops
        if args.floor is not None:
            print(check_floor(current_ops, args.floor))
    except (OSError, GuardError) as exc:
        print("benchmark regression guard: %s" % exc, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
