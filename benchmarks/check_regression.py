#!/usr/bin/env python3
"""Benchmark regression guard for the CI smoke job.

Compares the freshly measured ``harness_throughput`` rendering against
the committed baseline in ``benchmarks/results/`` and fails (exit 1)
when throughput dropped by more than the threshold.  Both files carry a
line like::

    Full-stack surf: 14 pages + 10 mutations in 2.51 s wall (9.6 operations/s); ...

Usage::

    python check_regression.py BASELINE CURRENT [--threshold 0.25]

Faster-than-baseline results always pass (and print a hint to refresh
the committed baseline when the gain is large).
"""

from __future__ import annotations

import argparse
import re
import sys

THROUGHPUT_PATTERN = re.compile(r"\(([0-9]+(?:\.[0-9]+)?) operations/s\)")


class GuardError(Exception):
    """The rendering carries no parsable throughput figure."""


def parse_throughput(text: str) -> float:
    """Extract the operations/s figure from a throughput rendering."""
    match = THROUGHPUT_PATTERN.search(text)
    if match is None:
        raise GuardError("no '(N operations/s)' figure found")
    return float(match.group(1))


def check(baseline_ops: float, current_ops: float, threshold: float) -> str:
    """Return a verdict line; raise GuardError on a regression."""
    if baseline_ops <= 0:
        raise GuardError("baseline throughput must be positive")
    change = (current_ops - baseline_ops) / baseline_ops
    if change < -threshold:
        raise GuardError(
            "throughput regressed %.1f%% (%.1f -> %.1f operations/s, "
            "threshold %.0f%%)"
            % (-change * 100, baseline_ops, current_ops, threshold * 100)
        )
    verdict = "throughput %.1f -> %.1f operations/s (%+.1f%%): OK" % (
        baseline_ops,
        current_ops,
        change * 100,
    )
    if change > threshold:
        verdict += "\nnote: large gain — consider refreshing the committed baseline"
    return verdict


def check_floor(current_ops: float, floor: float) -> str:
    """Verdict for an absolute operations/s floor; raise on a breach."""
    if current_ops < floor:
        raise GuardError(
            "throughput %.1f operations/s is below the floor of %.1f"
            % (current_ops, floor)
        )
    return "throughput %.1f operations/s >= floor %.1f: OK" % (current_ops, floor)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "baseline",
        help="committed throughput rendering (with --floor and no CURRENT, "
        "the single file checked against the absolute floor)",
    )
    parser.add_argument(
        "current", nargs="?", default=None, help="freshly measured rendering"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated fractional slowdown (default 0.25)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=None,
        help="absolute minimum operations/s the measured rendering must "
        "clear (checked on CURRENT, or on the single file when CURRENT "
        "is omitted)",
    )
    args = parser.parse_args(argv)
    if args.current is None and args.floor is None:
        parser.error("a CURRENT file or --floor is required")
    try:
        with open(args.baseline) as handle:
            baseline_ops = parse_throughput(handle.read())
        if args.current is not None:
            with open(args.current) as handle:
                current_ops = parse_throughput(handle.read())
            print(check(baseline_ops, current_ops, args.threshold))
        else:
            current_ops = baseline_ops
        if args.floor is not None:
            print(check_floor(current_ops, args.floor))
    except (OSError, GuardError) as exc:
        print("benchmark regression guard: %s" % exc, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
