"""Harness benchmarks: end-to-end throughput of the simulation stack.

Not a paper table — these measure the reproduction itself (pages
co-browsed per wall-clock second through the full kernel/net/http/html/
browser/RCB stack, and the hot substrate paths), the numbers a
downstream user needs to size their own experiments.
"""

from repro.core import CoBrowsingSession
from repro.html import parse_document, serialize_document
from repro.webserver import TABLE1_SITES, generate_table1_site
from repro.workloads import build_lan
from repro.workloads.surf import generate_trace, run_surf

from conftest import write_result


def test_end_to_end_surf_throughput(benchmark, results_dir):
    """Pages per wall-clock second through the full co-browsing stack."""

    def one_surf():
        testbed = build_lan()
        session = CoBrowsingSession(testbed.host_browser, poll_interval=0.5)
        trace = generate_trace(99, 30)
        report = testbed.run(run_surf(testbed, session, trace), limit=1e7)
        session.close()
        return report

    report = benchmark.pedantic(one_surf, rounds=1, iterations=1)
    stats_seconds = benchmark.stats.stats.mean
    write_result(
        results_dir,
        "harness_throughput.txt",
        "Full-stack surf: %d pages + %d mutations in %.2f s wall "
        "(%.1f operations/s); %.1f simulated seconds"
        % (
            report.pages_visited,
            report.mutations,
            stats_seconds,
            (report.pages_visited + report.mutations) / stats_seconds,
            report.sim_seconds,
        ),
    )
    assert report.pages_visited > 0


_MSN = generate_table1_site(TABLE1_SITES[4])


def test_html_parse_msn(benchmark):
    benchmark(lambda: parse_document(_MSN.html))


def test_html_serialize_msn(benchmark):
    document = parse_document(_MSN.html)
    benchmark(lambda: serialize_document(document))


def test_dom_clone_msn(benchmark):
    document = parse_document(_MSN.html)
    benchmark(lambda: document.document_element.clone(deep=True))


def test_sim_kernel_event_churn(benchmark):
    """Schedule-and-fire cost of 10k timeout events."""
    from repro.sim import Simulator

    def churn():
        sim = Simulator()

        def ticker():
            for _ in range(10000):
                yield sim.timeout(0.001)

        sim.run_until_complete(sim.process(ticker()))

    benchmark.pedantic(churn, rounds=3, iterations=1)


def test_network_transfer_churn(benchmark):
    """Cost of 2k request/response exchanges over simulated TCP."""
    from repro.http import HttpClient, HttpResponse, HttpServer
    from repro.net import LAN_PROFILE, SERVER_PROFILE, Host, Network
    from repro.sim import Simulator

    def churn():
        sim = Simulator()
        network = Network(sim)
        server_host = Host(network, "srv", SERVER_PROFILE, segment="internet")
        client_host = Host(network, "cli", LAN_PROFILE, segment="campus")
        HttpServer(server_host, 80, lambda req, client: HttpResponse(200, body=b"ok")).start()
        client = HttpClient(client_host)

        def run_requests():
            for _ in range(2000):
                yield from client.get("http://srv/")

        sim.run_until_complete(sim.process(run_requests()))

    benchmark.pedantic(churn, rounds=3, iterations=1)
