"""Harness benchmarks: end-to-end throughput of the simulation stack.

Not a paper table — these measure the reproduction itself (pages
co-browsed per wall-clock second through the full kernel/net/http/html/
browser/RCB stack, and the hot substrate paths), the numbers a
downstream user needs to size their own experiments.
"""

import gc
import json
import time

from repro.browser import Browser
from repro.core import CoBrowsingSession, MouseMoveAction, RCBAgent
from repro.html import Text, parse_document, serialize_document
from repro.net import LAN_PROFILE, Host, Network
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite, TABLE1_SITES, generate_table1_site
from repro.workloads import build_lan
from repro.workloads.surf import generate_trace, run_surf

from conftest import write_result


def test_end_to_end_surf_throughput(benchmark, results_dir):
    """Pages per wall-clock second through the full co-browsing stack."""

    def one_surf():
        testbed = build_lan()
        session = CoBrowsingSession(testbed.host_browser, poll_interval=0.5)
        trace = generate_trace(99, 30)
        report = testbed.run(run_surf(testbed, session, trace), limit=1e7)
        session.close()
        return report

    report = benchmark.pedantic(one_surf, rounds=1, iterations=1)
    stats_seconds = benchmark.stats.stats.mean
    write_result(
        results_dir,
        "harness_throughput.txt",
        "Full-stack surf: %d pages + %d mutations in %.2f s wall "
        "(%.1f operations/s); %.1f simulated seconds"
        % (
            report.pages_visited,
            report.mutations,
            stats_seconds,
            (report.pages_visited + report.mutations) / stats_seconds,
            report.sim_seconds,
        ),
    )
    assert report.pages_visited > 0


_MSN = generate_table1_site(TABLE1_SITES[4])


# -- serve pipeline: batched broadcast plans vs legacy per-member path --------


def _serve_world(batched):
    """Host browser + agent showing the MSN Table-1 homepage."""
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("msn.com")
    site.add_page("/", _MSN.html)
    for path, (content_type, data) in _MSN.objects.items():
        site.add(path, content_type, data)
    OriginServer(network, "msn.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    browser = Browser(host_pc, name="host")
    agent = RCBAgent(enable_batched_serve=batched)
    agent.install(browser)
    sim.run_until_complete(sim.process(browser.navigate("http://msn.com/")))
    return browser, agent


def _tick(browser, value):
    def mutate(document):
        headings = document.get_elements_by_tag_name("h2")
        if headings:
            headings[0].remove_all_children()
            headings[0].append_child(Text("tick-%d" % value))
        else:
            document.body.append_child(
                document.create_element("div", id="tick-%d" % value)
            )

    browser.mutate_document(mutate)


def _serve_round(agent, n_members, prev_time, broadcast, collect=False):
    """One poll tick: every member serves through the full pipeline.

    Half the members are fresh (full envelope), half acknowledged the
    previous document state (delta envelope); all carry the tick's
    broadcast actions — the Table-1 scenario the batching targets.
    """
    bodies = []
    for index in range(n_members):
        their_time = 0 if index % 2 == 0 else prev_time
        body, _is_delta = agent._serve_body("m%d" % index, their_time, broadcast)
        response = agent._respond(body)
        if response.wire_plan is not None:
            # Zero-copy handoff: the socket layer ships the buffer list.
            response.wire_buffers()
        else:
            response.to_bytes()
        if collect:
            bodies.append(response.to_bytes())
    return bodies


def _measure_serve(n_members, rounds=24):
    """Best-of serve throughput for both pipelines at one member count.

    Returns a dict with legacy/batched serves-per-second and the
    verified byte-identity flag (the batched output is compared against
    the legacy output member by member before timing starts).
    """
    browser_l, agent_l = _serve_world(False)
    browser_b, agent_b = _serve_world(True)
    assert agent_l.doc_time == agent_b.doc_time

    # Byte-identity check before timing: same tick, same members.
    prev = agent_l.doc_time
    agent_l._serve_body("warm", 0, [])
    agent_b._serve_body("warm", 0, [])
    _tick(browser_l, 0)
    _tick(browser_b, 0)
    identical = _serve_round(
        agent_l, 8, prev, [MouseMoveAction(1, 2)], collect=True
    ) == _serve_round(agent_b, 8, prev, [MouseMoveAction(1, 2)], collect=True)

    def timed_round(browser, agent, value):
        prev_time = agent.doc_time
        _tick(browser, 100 + value)
        broadcast = [MouseMoveAction(value, value + 1)]
        # Amortized per-tick work (diff + plan/envelope build) is
        # charged to the first two serves, outside the timed loop —
        # the measurement is the per-member serve pipeline.
        agent._serve_body("warm-full", 0, broadcast)
        agent._serve_body("warm-delta", prev_time, broadcast)
        started = time.perf_counter()
        _serve_round(agent, n_members, prev_time, broadcast)
        return time.perf_counter() - started

    # Interleave the two pipelines round by round (and keep the garbage
    # collector out of the timed windows) so a noisy scheduling window
    # skews both sides alike instead of one side wholesale.
    legacy_seconds = batched_seconds = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for value in range(rounds):
            legacy_seconds = min(
                legacy_seconds, timed_round(browser_l, agent_l, value)
            )
            batched_seconds = min(
                batched_seconds, timed_round(browser_b, agent_b, value)
            )
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "members": n_members,
        "byte_identical": identical,
        "legacy_serves_per_s": n_members / legacy_seconds,
        "batched_serves_per_s": n_members / batched_seconds,
        "speedup": legacy_seconds / batched_seconds,
    }


def test_serve_pipeline_throughput(benchmark, results_dir):
    """Broadcast-plan serving vs the legacy per-member path (N=64, 256)."""
    measurements = {}

    def run_all():
        for n_members in (64, 256):
            measurements[n_members] = _measure_serve(n_members)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = []
    for n_members, result in sorted(measurements.items()):
        lines.append(
            "Batched serve (MSN, N=%d): %.1f serves/s vs legacy %.1f serves/s "
            "(%.1fx speedup)"
            % (
                n_members,
                result["batched_serves_per_s"],
                result["legacy_serves_per_s"],
                result["speedup"],
            )
        )
    headline = measurements[256]
    lines.append(
        "Serve pipeline: N=256 batched broadcast plans "
        "(%.1f operations/s); byte-identical to legacy: %s"
        % (headline["batched_serves_per_s"], headline["byte_identical"])
    )
    write_result(results_dir, "serve_throughput.txt", "\n".join(lines))
    write_result(
        results_dir,
        "serve_throughput.json",
        json.dumps(
            {
                "page": "msn (Table-1 #5)",
                "scenario": "per-tick poll, half fresh / half delta, "
                "shared broadcast actions",
                "results": {str(n): r for n, r in sorted(measurements.items())},
            },
            indent=2,
            sort_keys=True,
        ),
    )

    for result in measurements.values():
        assert result["byte_identical"], "batched output diverged from legacy"
    assert headline["speedup"] >= 5.0, (
        "batched serve speedup %.2fx at N=256 is below the 5x target"
        % headline["speedup"]
    )


def test_html_parse_msn(benchmark):
    benchmark(lambda: parse_document(_MSN.html))


def test_html_serialize_msn(benchmark):
    document = parse_document(_MSN.html)
    benchmark(lambda: serialize_document(document))


def test_dom_clone_msn(benchmark):
    document = parse_document(_MSN.html)
    benchmark(lambda: document.document_element.clone(deep=True))


def test_sim_kernel_event_churn(benchmark):
    """Schedule-and-fire cost of 10k timeout events."""
    from repro.sim import Simulator

    def churn():
        sim = Simulator()

        def ticker():
            for _ in range(10000):
                yield sim.timeout(0.001)

        sim.run_until_complete(sim.process(ticker()))

    benchmark.pedantic(churn, rounds=3, iterations=1)


def test_network_transfer_churn(benchmark):
    """Cost of 2k request/response exchanges over simulated TCP."""
    from repro.http import HttpClient, HttpResponse, HttpServer
    from repro.net import LAN_PROFILE, SERVER_PROFILE, Host, Network
    from repro.sim import Simulator

    def churn():
        sim = Simulator()
        network = Network(sim)
        server_host = Host(network, "srv", SERVER_PROFILE, segment="internet")
        client_host = Host(network, "cli", LAN_PROFILE, segment="campus")
        HttpServer(server_host, 80, lambda req, client: HttpResponse(200, body=b"ok")).start()
        client = HttpClient(client_host)

        def run_requests():
            for _ in range(2000):
                yield from client.get("http://srv/")

        sim.run_until_complete(sim.process(run_requests()))

    benchmark.pedantic(churn, rounds=3, iterations=1)
