"""Figure 8: supplementary-object download time (M3 vs M4), LAN.

Paper claims: in the LAN, downloading a page's supplementary objects
from the host browser's cache (M4, cache mode) is faster than from the
origin servers (M3, non-cache mode) for all 20 sites; in the WAN the
cache still helps but the gain is less significant.
"""

from repro.metrics import render_figure_m3_m4, run_experiment

from conftest import write_result

REPETITIONS = 5


def test_fig8_lan_cache_gain(benchmark, results_dir):
    def both():
        non_cache = run_experiment("lan", cache_mode=False, repetitions=REPETITIONS)
        cache = run_experiment("lan", cache_mode=True, repetitions=REPETITIONS)
        return non_cache, cache

    non_cache, cache = benchmark.pedantic(both, rounds=1, iterations=1)

    write_result(
        results_dir,
        "fig8_lan_m3_m4.txt",
        render_figure_m3_m4(non_cache.rows, cache.rows, "LAN"),
    )

    cache_by_site = cache.by_site()
    for row in non_cache.rows:
        assert cache_by_site[row.site].m4 < row.m3, (
            "cache mode must win on %s" % row.site
        )


def test_fig8_wan_cache_gain_less_significant(benchmark, results_dir):
    """§5.1.2: WAN participants still benefit, but the gain shrinks."""

    def all_four():
        lan_nc = run_experiment("lan", cache_mode=False, repetitions=1)
        lan_c = run_experiment("lan", cache_mode=True, repetitions=1)
        wan_nc = run_experiment("wan", cache_mode=False, repetitions=1)
        wan_c = run_experiment("wan", cache_mode=True, repetitions=1)
        return lan_nc, lan_c, wan_nc, wan_c

    lan_nc, lan_c, wan_nc, wan_c = benchmark.pedantic(all_four, rounds=1, iterations=1)

    write_result(
        results_dir,
        "fig8_wan_m3_m4.txt",
        render_figure_m3_m4(wan_nc.rows, wan_c.rows, "WAN"),
    )

    def mean_gain(non_cache, cache):
        cache_by_site = cache.by_site()
        gains = [row.m3 / cache_by_site[row.site].m4 for row in non_cache.rows]
        return sum(gains) / len(gains)

    lan_gain = mean_gain(lan_nc, lan_c)
    wan_gain = mean_gain(wan_nc, wan_c)
    assert wan_gain > 1.0, "WAN participants must still benefit from the cache"
    assert wan_gain < lan_gain, "the WAN gain must be less significant than LAN"
