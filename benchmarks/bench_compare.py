#!/usr/bin/env python3
"""Nightly benchmark drift report: committed baselines vs tonight's run.

Walks the ``*.txt`` renderings of two results directories, extracts the
``(N operations/s)`` figure from each file that carries one, and emits
a GitHub-flavored markdown table of baseline vs current with the
relative change.  Files without a parsable figure are compared by
content (``same`` / ``changed``) so layout-only renderings still show
up in the report.  ``*.json`` artifacts (e.g. the transport frontier)
are compared by canonical dump, so key reordering or indentation churn
does not read as drift.

Usage (nightly workflow)::

    python bench_compare.py BASELINE_DIR CURRENT_DIR >> "$GITHUB_STEP_SUMMARY"

The report is informational — the exit code is always 0 unless a
directory is unreadable; hard floors are the perf-gate's job
(``check_regression.py --spec``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from check_regression import GuardError, parse_metric

#: Relative change beyond which a row gets a warning marker.
DRIFT_FLAG = 0.15


def _figures(directory: str) -> dict:
    """Map rendering name -> (figure or None, comparable text).

    Covers ``*.txt`` renderings and ``*.json`` artifacts.  JSON files
    never carry an ops/s headline; they are normalized to a canonical
    dump and compared by content, falling back to the raw bytes when a
    file does not parse.
    """
    out = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith((".txt", ".json")):
            continue
        with open(os.path.join(directory, name)) as handle:
            text = handle.read()
        if name.endswith(".json"):
            try:
                text = json.dumps(json.loads(text), indent=2, sort_keys=True)
            except ValueError:
                pass
            out[name] = (None, text)
            continue
        try:
            figure = parse_metric(text)
        except GuardError:
            figure = None
        out[name] = (figure, text)
    return out


def compare(baseline_dir: str, current_dir: str) -> str:
    """Render the markdown drift report."""
    baseline = _figures(baseline_dir)
    current = _figures(current_dir)

    lines = [
        "### Nightly benchmark drift",
        "",
        "| rendering | baseline | current | change |",
        "| --- | ---: | ---: | ---: |",
    ]
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None or cur is None:
            status = "missing in %s" % ("baseline" if base is None else "current")
            lines.append("| %s | | | %s |" % (name, status))
            continue
        base_fig, base_text = base
        cur_fig, cur_text = cur
        if base_fig is None or cur_fig is None:
            verdict = "same" if base_text == cur_text else "changed"
            lines.append("| %s | – | – | %s |" % (name, verdict))
            continue
        change = (cur_fig - base_fig) / base_fig if base_fig else 0.0
        flag = " ⚠️" if change < -DRIFT_FLAG else ""
        lines.append(
            "| %s | %.1f ops/s | %.1f ops/s | %+.1f%%%s |"
            % (name, base_fig, cur_fig, change * 100, flag)
        )
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline_dir", help="committed benchmarks/results/")
    parser.add_argument("current_dir", help="tonight's freshly written results")
    args = parser.parse_args(argv)
    try:
        report = compare(args.baseline_dir, args.current_dir)
    except OSError as exc:
        print("bench compare: %s" % exc, file=sys.stderr)
        return 1
    print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
