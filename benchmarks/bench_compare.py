#!/usr/bin/env python3
"""Nightly benchmark drift report: committed baselines vs tonight's run.

Walks the ``*.txt`` renderings of two results directories, extracts the
``(N operations/s)`` figure from each file that carries one, and emits
a GitHub-flavored markdown table of baseline vs current with the
relative change.  Files without a parsable figure are compared by
content (``same`` / ``changed``) so layout-only renderings still show
up in the report.  ``*.json`` artifacts (e.g. the transport frontier)
are compared by canonical dump, so key reordering or indentation churn
does not read as drift; when the dumps differ, any numeric metric key
present on only one side (added, removed, or renamed between the
committed baseline and tonight's code) additionally gets an ``n/a``
row instead of raising.

Usage (nightly workflow)::

    python bench_compare.py BASELINE_DIR CURRENT_DIR >> "$GITHUB_STEP_SUMMARY"

The report is informational — the exit code is always 0 unless a
directory is unreadable; hard floors are the perf-gate's job
(``check_regression.py --spec``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from check_regression import GuardError, parse_metric

#: Relative change beyond which a row gets a warning marker.
DRIFT_FLAG = 0.15


def _figures(directory: str) -> dict:
    """Map rendering name -> (figure or None, comparable text, parsed).

    Covers ``*.txt`` renderings and ``*.json`` artifacts.  JSON files
    never carry an ops/s headline; they are normalized to a canonical
    dump and compared by content (with the parsed document retained for
    per-key drift rows), falling back to the raw bytes when a file does
    not parse.
    """
    out = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith((".txt", ".json")):
            continue
        with open(os.path.join(directory, name)) as handle:
            text = handle.read()
        if name.endswith(".json"):
            parsed = None
            try:
                parsed = json.loads(text)
                text = json.dumps(parsed, indent=2, sort_keys=True)
            except ValueError:
                pass
            out[name] = (None, text, parsed)
            continue
        try:
            figure = parse_metric(text)
        except GuardError:
            figure = None
        out[name] = (figure, text, None)
    return out


def _numeric_leaves(obj, prefix="") -> dict:
    """Flatten a parsed JSON document to ``dot.path -> float`` for every
    numeric leaf (bools excluded)."""
    leaves = {}
    if isinstance(obj, bool):
        return leaves
    if isinstance(obj, dict):
        for key, value in obj.items():
            leaves.update(_numeric_leaves(value, "%s%s." % (prefix, key)))
    elif isinstance(obj, list):
        for index, value in enumerate(obj):
            leaves.update(_numeric_leaves(value, "%s%d." % (prefix, index)))
    elif isinstance(obj, (int, float)):
        leaves[prefix.rstrip(".")] = float(obj)
    return leaves


def _metric_rows(name, base_obj, cur_obj):
    """``n/a`` rows for metric keys present on only one side.

    A numeric leaf that exists in just the committed baseline or just
    tonight's artifact — a metric added, removed, or renamed between
    the two — is reported instead of raising, one row per key.  Keys
    shared by both sides are covered by the whole-file verdict."""
    base_keys = _numeric_leaves(base_obj)
    cur_keys = _numeric_leaves(cur_obj)
    rows = []
    for key in sorted(set(base_keys) ^ set(cur_keys)):
        base_val = base_keys.get(key)
        cur_val = cur_keys.get(key)
        rows.append(
            "| %s:%s | %s | %s | n/a |"
            % (
                name,
                key,
                "n/a" if base_val is None else "%g" % base_val,
                "n/a" if cur_val is None else "%g" % cur_val,
            )
        )
    return rows


def compare(baseline_dir: str, current_dir: str) -> str:
    """Render the markdown drift report."""
    baseline = _figures(baseline_dir)
    current = _figures(current_dir)

    lines = [
        "### Nightly benchmark drift",
        "",
        "| rendering | baseline | current | change |",
        "| --- | ---: | ---: | ---: |",
    ]
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None or cur is None:
            status = "missing in %s" % ("baseline" if base is None else "current")
            lines.append("| %s | | | %s |" % (name, status))
            continue
        base_fig, base_text, base_parsed = base
        cur_fig, cur_text, cur_parsed = cur
        if base_fig is None or cur_fig is None:
            if base_text == cur_text:
                lines.append("| %s | – | – | same |" % name)
            else:
                lines.append("| %s | – | – | changed |" % name)
                lines.extend(_metric_rows(name, base_parsed, cur_parsed))
            continue
        change = (cur_fig - base_fig) / base_fig if base_fig else 0.0
        flag = " ⚠️" if change < -DRIFT_FLAG else ""
        lines.append(
            "| %s | %.1f ops/s | %.1f ops/s | %+.1f%%%s |"
            % (name, base_fig, cur_fig, change * 100, flag)
        )
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline_dir", help="committed benchmarks/results/")
    parser.add_argument("current_dir", help="tonight's freshly written results")
    args = parser.parse_args(argv)
    try:
        report = compare(args.baseline_dir, args.current_dir)
    except OSError as exc:
        print("bench compare: %s" % exc, file=sys.stderr)
        return 1
    print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
