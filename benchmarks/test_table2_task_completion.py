"""Table 2: the 20-task co-browsing session (Google Maps + co-shopping).

The paper's 10 pairs of subjects completed 100 % of their sessions.
Here, scripted role players execute the same 20 tasks against the full
simulated stack; every task's observable effect is verified before it
counts as completed.
"""

from repro.workloads import ScenarioRunner, TABLE2_TASKS, build_lan

from conftest import write_result


def test_table2_single_session(benchmark, results_dir):
    def one_session():
        testbed = build_lan(deploy_sites=False, with_map=True, with_shop=True)
        runner = ScenarioRunner(testbed)
        return testbed.run(
            runner.run_session(testbed.host_browser, testbed.participant_browser)
        )

    results = benchmark.pedantic(one_session, rounds=1, iterations=1)

    lines = ["Table 2: the 20 tasks used in a co-browsing session"]
    for task in results:
        lines.append(
            "%-7s %-4s %5.1fs  %s"
            % (task.task_id, "ok" if task.completed else "FAIL", task.sim_seconds, task.description)
        )
    completed = sum(1 for t in results if t.completed)
    lines.append("completed: %d / %d" % (completed, len(results)))
    write_result(results_dir, "table2_tasks.txt", "\n".join(lines))

    assert len(results) == len(TABLE2_TASKS)
    assert completed == 20, "the paper observed a 100%% success ratio"


def test_table2_ten_pairs_success_ratio(benchmark, results_dir):
    """The full study population: 10 pairs x 2 sessions (role switch)."""
    from repro.workloads import run_pair_study

    def all_pairs():
        sessions = []
        for pair in range(10):
            sessions.extend(run_pair_study(pair))
        return sessions

    sessions = benchmark.pedantic(all_pairs, rounds=1, iterations=1)
    attempted = sum(len(s) for s in sessions)
    completed = sum(sum(1 for t in s if t.completed) for s in sessions)

    mean_pair_minutes = (
        sum(sum(t.sim_seconds for t in s) for s in sessions) / 10 / 60.0
    )
    write_result(
        results_dir,
        "table2_study_population.txt",
        "Usability study task execution: %d sessions, %d/%d tasks completed "
        "(%.1f%%), mean pair duration %.1f simulated minutes "
        "(paper: 100%% success, 10.8 wall-clock minutes incl. human think time)"
        % (len(sessions), completed, attempted, 100.0 * completed / attempted, mean_pair_minutes),
    )

    assert len(sessions) == 20
    assert completed == attempted == 400, "100% success ratio across the study"
