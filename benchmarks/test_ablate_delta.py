"""Ablation: delta envelopes vs full envelopes for small edits.

When the host makes a small change to a shared page (one text node on a
~50-object page), the full-envelope protocol resends the entire document
content on the next poll.  The delta protocol diffs the retained
snapshot of the participant's last-acknowledged state against the
current document and ships only the changed nodes.

Two measurements:

* bytes on the wire — the same small-edit workload run with
  ``enable_delta`` on and off; delta responses must be >= 5x smaller
  than the full envelopes they replace;
* Table-1-style processing time — wall-clock cost of the real compute
  paths (agent-side content generation / diff, participant-side
  document update) for the same one-text-node edit.
"""

import json
import time

from repro.browser import Browser
from repro.core import (
    AjaxSnippet,
    ContentGenerator,
    CoBrowsingSession,
    apply_delta,
    content_tree,
    diff_trees,
    parse_envelope,
)
from repro.browser.page import Page
from repro.html import Text, parse_document
from repro.net import LAN_PROFILE, Host, Network, parse_url
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite

from conftest import write_result

OBJECT_COUNT = 50
EDITS = 5

PAGE = (
    "<html><head><title>Gallery</title><style>img { border: 0; }</style></head>"
    "<body><p id='status'>fresh</p>"
    + "".join(
        "<div class='cell'><img src='/img-%d.png' alt='photo %d'>"
        "<span>caption %d</span></div>" % (i, i, i)
        for i in range(OBJECT_COUNT)
    )
    + "</body></html>"
)


def build_gallery_world(enable_delta):
    """A LAN host+participant pair sharing a ~50-object gallery page."""
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("gallery.com")
    site.add_page("/", PAGE)
    for index in range(OBJECT_COUNT):
        site.add("/img-%d.png" % index, "image/png", b"\x89PNG" + bytes(800))
    OriginServer(network, "gallery.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    host_browser = Browser(host_pc, name="host")
    session = CoBrowsingSession(
        host_browser, poll_interval=0.2, enable_delta=enable_delta
    )
    participant_pc = Host(network, "participant-pc", LAN_PROFILE, segment="campus")
    participant = Browser(participant_pc, name="participant")
    return sim, session, participant


def edit_status(browser, text):
    def mutate(document):
        target = document.get_element_by_id("status")
        target.remove_all_children()
        target.append_child(Text(text))

    browser.mutate_document(mutate)


def measure_bytes(enable_delta):
    sim, session, participant = build_gallery_world(enable_delta)
    outcome = {}

    def scenario():
        snippet = yield from session.join(participant)
        yield from session.host_navigate("http://gallery.com/")
        yield from session.wait_until_synced()
        baseline = dict(session.agent.stats)
        for index in range(EDITS):
            edit_status(session.host_browser, "update %d" % index)
            yield from session.wait_until_synced()
        for key in (
            "delta_responses",
            "full_responses",
            "delta_bytes_sent",
            "delta_bytes_saved",
            "full_bytes_sent",
        ):
            outcome[key] = session.agent.stats[key] - baseline[key]
        outcome["delta_failures"] = snippet.stats.delta_failures

    sim.run_until_complete(sim.process(scenario()))
    session.close()
    return outcome


def _best_of(callable_, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def test_delta_bytes_small_edit(benchmark, results_dir):
    """One short text node edited on a ~50-object page: delta responses
    are >= 5x smaller than the full envelopes they replace."""

    def both():
        return measure_bytes(enable_delta=True), measure_bytes(enable_delta=False)

    with_delta, full_only = benchmark.pedantic(both, rounds=1, iterations=1)

    assert with_delta["delta_failures"] == 0
    assert with_delta["delta_responses"] == EDITS
    assert full_only["delta_responses"] == 0
    assert full_only["full_responses"] == EDITS

    delta_bytes = with_delta["delta_bytes_sent"]
    full_equivalent = delta_bytes + with_delta["delta_bytes_saved"]
    shrink = full_equivalent / max(1, delta_bytes)

    text = "\n".join(
        [
            "Ablation: delta vs full envelopes"
            " (%d small edits, %d-object page, LAN)" % (EDITS, OBJECT_COUNT),
            "%-22s %18s %18s" % ("variant", "content bytes", "responses"),
            "%-22s %18d %18d"
            % ("delta envelopes", delta_bytes, with_delta["delta_responses"]),
            "%-22s %18d %18d"
            % (
                "full envelopes",
                full_only["full_bytes_sent"],
                full_only["full_responses"],
            ),
            "shrink factor vs the full envelopes replaced: %.1fx" % shrink,
        ]
    )
    write_result(results_dir, "ablation_delta_bytes.txt", text)

    # Acceptance: >= 5x smaller for the small-edit workload.
    assert shrink >= 5.0
    # Cross-check against the ablated run: the full-envelope variant
    # really did pay the full price for the same edits.
    assert full_only["full_bytes_sent"] >= 5.0 * delta_bytes


def test_delta_processing_time_small_edit(benchmark, results_dir):
    """Table-1-style processing time (M5 generation, M6 update) for one
    small edit, full pipeline vs delta pipeline."""
    base_url = parse_url("http://gallery.com/")
    old_document = parse_document(PAGE)
    new_document = parse_document(PAGE)
    target = new_document.get_element_by_id("status")
    target.remove_all_children()
    target.append_child(Text("edited"))
    generator = ContentGenerator()

    def generate(document, doc_time):
        return generator.generate(
            document, base_url, doc_time=doc_time, cache_session=None
        ).xml_text

    old_envelope = generate(old_document, 1)
    new_envelope = generate(new_document, 2)
    old_tree = content_tree(parse_envelope(old_envelope))
    new_tree = content_tree(parse_envelope(new_envelope))

    def make_snippet():
        sim = Simulator()
        network = Network(sim)
        host = Host(network, "bench-host-%d" % id(sim), LAN_PROFILE)
        browser = Browser(host, name="bench-participant")
        initial = parse_document(
            "<html><head><script id='ajax-snippet'></script></head>"
            "<body><p>waiting</p></body></html>"
        )
        browser.page = Page(parse_url("http://agent:3000/"), initial)
        return AjaxSnippet(
            browser, "http://agent:3000/", poll_interval=1.0, fetch_objects=False
        )

    snippet = make_snippet()
    snippet._apply_update(parse_envelope(old_envelope))

    def timings():
        full_generate = _best_of(lambda: generate(new_document, 2))
        full_apply = _best_of(
            lambda: snippet._apply_update(parse_envelope(new_envelope))
        )
        delta_generate = _best_of(
            lambda: json.dumps(diff_trees(old_tree, new_tree), separators=(",", ":"))
        )
        ops = diff_trees(old_tree, new_tree)

        def apply_once():
            working = old_tree.clone(deep=True)
            apply_delta(working, ops)

        delta_apply = _best_of(apply_once)
        return full_generate, full_apply, delta_generate, delta_apply

    full_generate, full_apply, delta_generate, delta_apply = benchmark.pedantic(
        timings, rounds=1, iterations=1
    )

    text = "\n".join(
        [
            "Processing time for one small edit (%d-object page)" % OBJECT_COUNT,
            "%-18s %16s %16s" % ("pipeline", "agent side", "participant side"),
            "%-18s %15.5fs %15.5fs" % ("full envelope", full_generate, full_apply),
            "%-18s %15.5fs %15.5fs" % ("delta envelope", delta_generate, delta_apply),
        ]
    )
    write_result(results_dir, "ablation_delta_processing.txt", text)

    # The participant-side update is where the paper's M6 metric lives:
    # applying a one-node delta must beat rebuilding the whole document.
    assert delta_apply < full_apply
