"""Figure 7: HTML document load time (M1 vs M2) in the WAN environment.

Paper claims: M2 grows compared to the LAN (the host's 384 Kbps uplink
is the bottleneck), yet M2 still beats M1 on most sites (17 of 20 in the
paper), with the exceptions concentrated at the largest pages.
"""

from repro.metrics import render_figure_m1_m2, run_experiment

from conftest import write_result

REPETITIONS = 5


def test_fig7_wan_m1_vs_m2(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("wan", cache_mode=True, repetitions=REPETITIONS),
        rounds=1,
        iterations=1,
    )
    rows = result.rows
    assert len(rows) == 20

    write_result(results_dir, "fig7_wan_m1_m2.txt", render_figure_m1_m2(rows, "WAN"))

    winners = [row for row in rows if row.m2 < row.m1]
    losers = [row for row in rows if row.m2 >= row.m1]

    # Shape claims (paper §5.1.2, Figure 7): M2 < M1 on most sites.
    assert len(winners) >= 15, "paper reports 17/20; most sites must hold"
    # The exceptions are the largest documents.
    if losers:
        min_loser_kb = min(row.page_kb for row in losers)
        median_kb = sorted(row.page_kb for row in rows)[len(rows) // 2]
        assert min_loser_kb > median_kb, "exceptions should be the big pages"


def test_fig7_wan_m2_larger_than_lan(benchmark, results_dir):
    """The paper's first WAN observation: M2 grows versus the LAN."""

    def both():
        lan = run_experiment("lan", cache_mode=True, repetitions=1)
        wan = run_experiment("wan", cache_mode=True, repetitions=1)
        return lan, wan

    lan, wan = benchmark.pedantic(both, rounds=1, iterations=1)
    lan_by_site = lan.by_site()
    for wan_row in wan.rows:
        assert wan_row.m2 > lan_by_site[wan_row.site].m2
