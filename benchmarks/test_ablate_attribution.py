"""Ablation: wire-byte attribution at fan-out scale, and profiler cost.

Two claims the observability layer makes:

* **Conservation** — at N=64 over a cascaded relay tree, every
  attributed response's labeled buckets sum exactly to the bytes its
  serving node shipped (independently counted at the socket layer),
  and the top-cost member/tier ranking is a *stable* fact of the
  workload, not of the seed that shuffled the edit history.
* **The books are cheap** — running a session with the tracer and the
  byte-attribution sink attached costs <5% of serve throughput (the
  absolute floor `profiler-overhead` in floors.json gates the ratio).
"""

import gc
import random
import time

from repro.browser import Browser
from repro.core import CoBrowsingSession
from repro.html import Text
from repro.net import LAN_PROFILE, Host, Network
from repro.net.socket import Connection
from repro.obs import ByteAttribution, Tracer
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite

from conftest import write_result

PAGE = (
    "<html><head><title>Attribution ablation</title></head><body>"
    + "".join("<p id='p%d'>paragraph %d body text</p>" % (i, i) for i in range(8))
    + "</body></html>"
)

N_MEMBERS = 64
BRANCHING = 8
SEEDS = (7, 23, 91)


class RecordingAttribution(ByteAttribution):
    """Keeps every finalized record so the run can be audited."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.finalized = []

    def record(self, record):
        self.finalized.append(record)
        super().record(record)


def _build_world(attribution=None, tracer=None, poll_interval=0.25):
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page("/", PAGE)
    OriginServer(network, "site.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    host = Browser(host_pc, name="bob")
    session = CoBrowsingSession(
        host, poll_interval=poll_interval, tracer=tracer, attribution=attribution
    )
    return sim, network, host, session


def _edit(browser, index, text):
    def mutate(document):
        target = document.get_element_by_id("p%d" % index)
        target.remove_all_children()
        target.append_child(Text(text))

    browser.mutate_document(mutate)


def _run_fanout(seed, sendv_totals):
    """One attributed N=64 tree session with a seeded edit history and
    one deliberately hot tier-1 member (a forced-resync storm)."""
    rng = random.Random(seed)
    attribution = RecordingAttribution()
    sim, network, host, session = _build_world(attribution=attribution)
    session.fanout_tree(branching=BRANCHING)
    guests = [
        Browser(
            Host(network, "pc-%d" % i, LAN_PROFILE, segment="campus"),
            name="g%02d" % i,
        )
        for i in range(N_MEMBERS)
    ]

    def storm(upstream):
        while upstream.connected:
            upstream.last_doc_time = 0
            yield sim.timeout(0.11)

    def scenario():
        for guest in guests:
            yield from session.join(guest)
        yield from session.host_navigate("http://site.com/")
        yield from session.wait_until_synced()
        hog = min(m for m in session.relays if session.member_tier(m) == 1)
        sim.process(storm(session.relays[hog].upstream))
        for tick in range(10):
            _edit(
                host,
                rng.randrange(8),
                "tick %d %s" % (tick, "x" * rng.randrange(8, 64)),
            )
            yield sim.timeout(0.5)
        yield sim.timeout(1.0)
        return hog

    hog = sim.run_until_complete(sim.process(scenario()))
    session.close()
    return attribution, hog


def test_fanout_attribution_conserves_and_ranks_stably(
    benchmark, results_dir, monkeypatch
):
    sendv_totals = []
    original_sendv = Connection.sendv

    def counting_sendv(self, buffers):
        sendv_totals.append(sum(len(buffer) for buffer in buffers))
        return original_sendv(self, buffers)

    monkeypatch.setattr(Connection, "sendv", counting_sendv)

    runs = {}

    def run_all():
        for seed in SEEDS:
            del sendv_totals[:]
            attribution, hog = _run_fanout(seed, sendv_totals)
            runs[seed] = (attribution, hog, list(sendv_totals))

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "Ablation: wire-byte attribution (N=%d, branching=%d, resync-storm hog)"
        % (N_MEMBERS, BRANCHING),
        "%6s %10s %12s %-6s %12s %s"
        % ("seed", "responses", "bytes", "top", "top bytes", "tier ranking"),
    ]
    rankings = []
    for seed in SEEDS:
        attribution, hog, totals = runs[seed]
        # Conservation, twice over: each record internally, and the
        # record set against the independent socket-layer byte counts.
        for record in attribution.finalized:
            assert sum(record.buckets.values()) == record.shipped
        planned = sorted(
            record.shipped
            for record in attribution.finalized
            if record.kind in ("full", "delta", "push")
        )
        assert sorted(totals) == planned
        top_member, top_bytes = attribution.top_members(1)[0]
        assert top_member == hog, (
            "seed %d: the storming member must rank top-cost" % seed
        )
        tier_order = [tier for tier, _bytes in attribution.top_tiers()]
        rankings.append(tier_order)
        lines.append(
            "%6d %10d %12d %-6s %12d %s"
            % (
                seed,
                attribution.responses,
                attribution.total_bytes,
                top_member,
                top_bytes,
                " > ".join(tier_order),
            )
        )
    assert all(order == rankings[0] for order in rankings), (
        "tier cost ranking must not depend on the seed"
    )
    write_result(results_dir, "ablation_attribution.txt", "\n".join(lines))


# -- profiler overhead: tracer + attribution attached vs dark -------------------------


def _measure_session(profiled, rounds=3):
    """Best-of wall-clock for a serve-heavy flat session, polls/s."""
    best = float("inf")
    polls = 0
    for _round in range(rounds):
        tracer = Tracer() if profiled else None
        attribution = ByteAttribution() if profiled else None
        sim, network, host, session = _build_world(
            attribution=attribution, tracer=tracer, poll_interval=0.1
        )
        guests = [
            Browser(
                Host(network, "ppc-%d" % i, LAN_PROFILE, segment="campus"),
                name="m%02d" % i,
            )
            for i in range(16)
        ]

        def setup():
            for guest in guests:
                yield from session.join(guest)
            yield from session.host_navigate("http://site.com/")
            yield from session.wait_until_synced()

        def churn():
            for tick in range(40):
                _edit(host, tick % 8, "tick %d" % tick)
                yield sim.timeout(0.25)

        sim.run_until_complete(sim.process(setup()))
        started = time.perf_counter()
        sim.run_until_complete(sim.process(churn()))
        best = min(best, time.perf_counter() - started)
        polls = session.agent.stats["polls"]
        session.close()
    return polls / best


def test_profiler_overhead(benchmark, results_dir):
    """Profiling enabled must stay within a few percent of dark."""
    measurements = {}

    def run_both():
        # Interleave so a noisy scheduling window skews both alike.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            measurements["dark"] = _measure_session(False)
            measurements["profiled"] = _measure_session(True)
        finally:
            if gc_was_enabled:
                gc.enable()

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    ratio = measurements["profiled"] / measurements["dark"]
    text = (
        "Profiler overhead (flat session, 16 members, 400 sim-polls): "
        "profiled %.1f polls/s vs dark %.1f polls/s (%.3fx ratio)"
        % (measurements["profiled"], measurements["dark"], ratio)
    )
    write_result(results_dir, "profiler_overhead.txt", text)
    # The CI floor (floors.json: profiler-overhead >= 0.95) is the real
    # <5% gate; locally only guard against something pathological.
    assert ratio > 0.5
