"""Scale: sharded serving at N=10k — throughput curve, churn, failover.

The single RCB agent is the fleet's throughput ceiling: every poll
funnels through one host loop.  :class:`~repro.core.shard.AgentPool`
converts that path into a pool of serving instances behind a
consistent-hash session directory.  This benchmark measures the three
claims the pool makes at fleet scale:

* **Near-linear serve scaling** — N members resync-polling the pool,
  with each instance's serve work timed in isolation (one CPU hosts the
  whole sim, so per-instance CPU time *is* that host's wall time; the
  fleet finishes when its slowest host does).  Aggregate throughput =
  total serves / bottleneck-instance time; 8 shards must clear 3x the
  single-agent baseline (floor ``shard-scale-n1k``).
* **Coherence under churn** — the full fleet polling through the
  directory with seeded member churn plus a flash-crowd join; p99
  client staleness stays inside the ``staleness_p95`` SLO rule's breach
  threshold.
* **Failover** — an injected shard-host death promotes the designated
  standby; 100% of the dead shard's members must re-attach to the
  promoted instance with no lost ``doc_time`` ordering (floor
  ``failover-recovery``).

``RCB_SCALE_MEMBERS`` scales N (CI smoke runs 1000; nightly the full
10000).  Every random draw comes from per-test fixed-seed generators —
reruns are bit-for-bit reproducible.  Writes ``scale_shard.txt`` (the
floors' input) and ``scale_shard.json`` (the nightly scaling-curve
artifact).
"""

import gc
import json
import os
import random
import re
import time

from repro.browser import Browser
from repro.core import AgentPool, CoBrowsingSession
from repro.html import Text
from repro.http import HttpRequest
from repro.net import LAN_PROFILE, Host, Network
from repro.obs import SHARD_MIGRATE, SHARD_PROMOTE, EventBus
from repro.obs.health import default_rules
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite

from conftest import write_result

N = int(os.environ.get("RCB_SCALE_MEMBERS", "10000"))
SHARD_COUNTS = (1, 4, 8, 16)
POLLS_PER_MEMBER = 2
#: Half a second keeps the two stacked poll hops (member -> shard ->
#: root) well inside the staleness SLO's 5 s breach threshold.
POLL_INTERVAL = 0.5
CHANGE_INTERVAL = 0.5
SEED = 20260807

_DOC_TIME = re.compile(rb"<docTime>(\d+)</docTime>")

PAGE = (
    "<html><head><title>Shard scale</title></head><body>"
    "<div id='tick'>tick 0</div>"
    + "".join("<p id='p%d'>paragraph %d body</p>" % (i, i) for i in range(6))
    + "</body></html>"
)


def build_pool(shards, events=None):
    """One synced world: root agent + ``shards`` relay instances."""
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page("/", PAGE)
    OriginServer(network, "site.com", site.handle)
    host = Browser(
        Host(network, "host-pc", LAN_PROFILE, segment="campus"), name="host"
    )
    session = CoBrowsingSession(
        host, poll_interval=POLL_INTERVAL, transport="poll", events=events
    )
    pool = AgentPool(session, shards=shards)

    def setup():
        yield from pool.start()
        yield from session.host_navigate("http://site.com/")
        # Let every relay's upstream poll adopt the navigated state.
        yield sim.timeout(3.0)

    sim.run_until_complete(sim.process(setup()))
    for relay in pool.relays.values():
        assert relay.doc_time == session.agent.doc_time
    return sim, host, session, pool


def edit_tick(host, tick):
    def mutate(document):
        target = document.get_element_by_id("tick")
        target.remove_all_children()
        target.append_child(Text("tick %d" % tick))

    host.mutate_document(mutate)


def poll_payload(pid, timestamp):
    return json.dumps(
        {"participant": pid, "timestamp": timestamp, "actions": []}
    ).encode()


def _p99(values):
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(0, int(0.99 * len(ordered) + 0.5) - 1)
    return float(ordered[min(rank, len(ordered) - 1)])


# -- phase 1: the serve-throughput scaling curve --------------------------------------


def _measure_curve():
    """Aggregate resync-serve throughput for each shard count."""
    curve = {}
    for shards in SHARD_COUNTS:
        sim, host, session, pool = build_pool(shards)
        members = ["m%05d" % i for i in range(N)]
        per_instance = {}
        for pid in members:
            per_instance.setdefault(pool.directory.place(pid), []).append(pid)

        serves = 0
        slowest = 0.0
        for instance in sorted(per_instance):
            agent = pool.agent_of(instance)
            assigned = per_instance[instance]

            def drive(agent=agent, assigned=assigned):
                for _round in range(POLLS_PER_MEMBER):
                    for pid in assigned:
                        request = HttpRequest(
                            "POST", "/poll", None, poll_payload(pid, 0)
                        )
                        response = yield from agent._poll_response(request, pid)
                        assert _DOC_TIME.search(response.body)

            # Each instance is its own host: time its serve work alone.
            gc.collect()
            gc.disable()
            try:
                started = time.process_time()
                sim.run_until_complete(sim.process(drive()))
                elapsed = time.process_time() - started
            finally:
                gc.enable()
            serves += POLLS_PER_MEMBER * len(assigned)
            slowest = max(slowest, elapsed)
        session.close()
        curve[shards] = {
            "shards": shards,
            "members": N,
            "serves": serves,
            "bottleneck_s": round(slowest, 4),
            "aggregate_serves_per_s": round(serves / slowest, 1),
        }
    baseline = curve[1]["aggregate_serves_per_s"]
    for shards in SHARD_COUNTS:
        curve[shards]["speedup_vs_1"] = round(
            curve[shards]["aggregate_serves_per_s"] / baseline, 2
        )
    return curve


# -- phase 2: churn + flash-crowd coherence -------------------------------------------


def _measure_churn(shards=8, window=8.0, flash_at=4.0, warmup=2.5):
    """p99 client staleness with seeded churn and a flash-crowd join.

    Samples taken during the first ``warmup`` seconds are discarded:
    the idle setup window leaves a multi-second gap in ``doc_time``, so
    right after the first edit a member half a poll interval behind
    would read as seconds "stale" — an artifact of the gap, not of the
    serving path (same convention as the transport ablation's warmup).
    """
    sim, host, session, pool = build_pool(shards)
    started_at = sim.now
    rng = random.Random(SEED)
    acked = {}
    active = set()
    staleness_samples = []
    next_id = [0]

    def member(pid, offset):
        yield sim.timeout(offset)
        acked[pid] = 0
        while pid in active:
            agent = pool.agent_for(pid)
            request = HttpRequest(
                "POST", "/poll", None, poll_payload(pid, acked[pid])
            )
            response = yield from agent._poll_response(request, pid)
            times = _DOC_TIME.findall(response.body)
            if times:
                acked[pid] = int(times[-1])
            yield sim.timeout(POLL_INTERVAL)

    def spawn(count, offset_spread=POLL_INTERVAL):
        for _ in range(count):
            pid = "c%06d" % next_id[0]
            next_id[0] += 1
            active.add(pid)
            pool.directory.place(pid)
            sim.process(member(pid, rng.uniform(0.0, offset_spread)))

    def churn():
        # Every half second a sliver of the fleet leaves and an equal
        # sliver joins; at ``flash_at`` a 20% flash crowd arrives at
        # once (offsets compressed into a tenth of a poll interval).
        flashed = False
        while True:
            yield sim.timeout(0.5)
            turnover = max(1, N // 200)
            for pid in rng.sample(sorted(active), min(turnover, len(active))):
                active.discard(pid)
                pool.directory.release(pid)
                acked.pop(pid, None)
            spawn(turnover)
            if not flashed and sim.now >= flash_at:
                flashed = True
                spawn(N // 5, offset_spread=POLL_INTERVAL / 10.0)

    def changes():
        tick = 0
        while True:
            yield sim.timeout(CHANGE_INTERVAL)
            tick += 1
            edit_tick(host, tick)

    def sampler():
        yield sim.timeout(0.1)  # off-phase with the change grid
        while True:
            yield sim.timeout(0.25)
            if sim.now - started_at < warmup:
                continue
            host_time = session.agent.doc_time
            for pid in active:
                member_time = acked.get(pid, 0)
                if member_time == 0:
                    # Not yet attached: its lag is join latency, not
                    # coherence — measured against join time, not t=0.
                    continue
                staleness_samples.append(float(max(0, host_time - member_time)))

    spawn(N)
    sim.process(churn())
    sim.process(changes())
    sim.process(sampler())
    sim.run(until=sim.now + window)
    peak = len(active)
    active.clear()  # wind down member loops
    session.close()
    return {
        "shards": shards,
        "members": N,
        "peak_active": peak,
        "samples": len(staleness_samples),
        "staleness_p99_ms": round(_p99(staleness_samples), 1),
    }


# -- phase 3: host-death failover -----------------------------------------------------


def _measure_failover(shards=8, fail_at=3.0, window=8.0):
    """Kill the busiest shard host; count recovered members."""
    events = EventBus(max_total_events=4096)
    sim, host, session, pool = build_pool(shards, events=events)
    acked = {}
    recovered = set()
    ordering_violations = [0]
    dead_members = []
    promoted = [None]
    failed = [False]

    members = ["f%05d" % i for i in range(N)]
    for pid in members:
        pool.directory.place(pid)

    def member(pid, offset):
        yield sim.timeout(offset)
        acked[pid] = 0
        while True:
            agent = pool.agent_for(pid)
            request = HttpRequest(
                "POST", "/poll", None, poll_payload(pid, acked[pid])
            )
            response = yield from agent._poll_response(request, pid)
            times = _DOC_TIME.findall(response.body)
            if times:
                landed = int(times[-1])
                if landed < acked[pid]:
                    ordering_violations[0] += 1
                acked[pid] = landed
            if failed[0] and pid in dead_members:
                if pool.shard_of(pid) == promoted[0]:
                    recovered.add(pid)
            yield sim.timeout(POLL_INTERVAL)

    def changes():
        tick = 0
        while True:
            yield sim.timeout(CHANGE_INTERVAL)
            tick += 1
            edit_tick(host, tick)

    def killer():
        yield sim.timeout(fail_at)
        load = pool.directory.load()
        victim = max(pool.relays, key=lambda shard: load.get(shard, 0))
        promoted[0] = pool.directory.successor(victim)
        dead_members.extend(
            pid
            for pid, shard in pool.directory.assignments.items()
            if shard == victim
        )
        pool.fail_shard(victim)
        failed[0] = True

    rng = random.Random(SEED + 1)
    for pid in members:
        sim.process(member(pid, rng.uniform(0.0, POLL_INTERVAL)))
    sim.process(changes())
    sim.process(killer())
    sim.run(until=window)
    session.close()

    assert dead_members, "the failed shard must have owned members"
    recovered_pct = 100.0 * len(recovered) / len(dead_members)
    return {
        "shards": shards,
        "members": N,
        "dead_shard_members": len(dead_members),
        "promoted": promoted[0],
        "recovered_pct": round(recovered_pct, 1),
        "ordering_violations": ordering_violations[0],
        "promote_events": events.total(SHARD_PROMOTE),
        "migrate_events": events.total(SHARD_MIGRATE),
    }


# -- the benchmark --------------------------------------------------------------------


def test_shard_scaling_curve(benchmark, results_dir):
    results = {}

    def run_all():
        results["curve"] = _measure_curve()
        results["churn"] = _measure_churn()
        results["failover"] = _measure_failover()

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    curve = results["curve"]
    churn = results["churn"]
    failover = results["failover"]
    breach_ms = default_rules()[0].breach

    rows = [
        "Sharded serve scaling (N=%d members, %d resync polls each)"
        % (N, POLLS_PER_MEMBER)
    ]
    for shards in SHARD_COUNTS:
        point = curve[shards]
        rows.append(
            "%2d shards: %10.1f serves/s aggregate (%.2fx vs 1 shard, "
            "bottleneck %.3fs)"
            % (
                shards,
                point["aggregate_serves_per_s"],
                point["speedup_vs_1"],
                point["bottleneck_s"],
            )
        )
    rows.append(
        "churn+flash-crowd staleness p99: %.1f ms over %d samples "
        "(SLO staleness_p95 breach at %.0f ms, peak %d active)"
        % (
            churn["staleness_p99_ms"],
            churn["samples"],
            breach_ms,
            churn["peak_active"],
        )
    )
    rows.append(
        "failover: promoted %s, recovered=%.1f%% of %d members, "
        "ordering violations=%d"
        % (
            failover["promoted"],
            failover["recovered_pct"],
            failover["dead_shard_members"],
            failover["ordering_violations"],
        )
    )
    write_result(results_dir, "scale_shard.txt", "\n".join(rows))
    write_result(
        results_dir,
        "scale_shard.json",
        json.dumps(
            {
                "config": {
                    "members": N,
                    "polls_per_member": POLLS_PER_MEMBER,
                    "shard_counts": list(SHARD_COUNTS),
                    "seed": SEED,
                },
                "curve": [curve[shards] for shards in SHARD_COUNTS],
                "churn": churn,
                "failover": failover,
            },
            indent=1,
            sort_keys=True,
        ),
    )

    # Near-linear scaling: 8 shards clear 3x one agent (the CI floor
    # ``shard-scale-n1k`` re-checks this from the written artifact).
    assert curve[8]["speedup_vs_1"] >= 3.0, curve
    assert curve[4]["speedup_vs_1"] > curve[1]["speedup_vs_1"]
    # Coherence: p99 staleness inside the SLO rule's breach threshold.
    assert churn["staleness_p99_ms"] <= breach_ms, churn
    # Failover: everyone on the dead shard re-attached to the promoted
    # instance, and nobody's acknowledged doc_time ever went backwards.
    assert failover["recovered_pct"] == 100.0, failover
    assert failover["ordering_violations"] == 0, failover
    assert failover["promote_events"] == 1
    assert failover["migrate_events"] == failover["dead_shard_members"]
