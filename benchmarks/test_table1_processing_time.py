"""Table 1: homepage size and processing time of the 20 sites.

Columns reproduced: page size (KB), M5 non-cache (response content
generation, Fig. 3), M5 cache, and M6 (participant document update,
Fig. 5).  M5/M6 are real wall-clock measurements of this repository's
implementation, so absolute values differ from the paper's 2009
hardware; the shape claims tested are the paper's observations:

1. larger documents need more processing time (M5 grows with size);
2. M5 cache > M5 non-cache (the extra cache lookup time);
3. content generation is efficient and reusable across participants;
4. M6 is small (well under the paper's one-third of a second on modern
   hardware) for every page.
"""

import time

import pytest

from repro.webserver import TABLE1_SITES

from _rcb_compute import SiteComputeHarness
from conftest import write_result


def _measure(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def test_table1_all_sites(benchmark, results_dir):
    rows = []

    def measure_all():
        for spec in TABLE1_SITES:
            harness = SiteComputeHarness(spec)
            m5_non_cache = _measure(lambda: harness.generate(cache_mode=False))
            m5_cache = _measure(lambda: harness.generate(cache_mode=True))
            snippet = harness.make_participant_snippet()
            m6 = _measure(lambda: harness.apply_update(snippet))
            rows.append((spec, m5_non_cache, m5_cache, m6))
        return rows

    benchmark.pedantic(measure_all, rounds=1, iterations=1)

    lines = [
        "Table 1: homepage size and processing time of 20 sites",
        "%-4s %-16s %10s %14s %12s %10s"
        % ("#", "site", "size (KB)", "M5 non-cache", "M5 cache", "M6"),
    ]
    for spec, m5_nc, m5_c, m6 in rows:
        lines.append(
            "%-4d %-16s %10.1f %13.4fs %11.4fs %9.4fs"
            % (spec.index, spec.host, spec.page_kb, m5_nc, m5_c, m6)
        )
    write_result(results_dir, "table1_processing_time.txt", "\n".join(lines))

    # Claim 1: M5 grows with document size (rank correlation, compared
    # between the small and large halves to tolerate timer noise).
    by_size = sorted(rows, key=lambda r: r[0].page_kb)
    small_half = [r[1] for r in by_size[:10]]
    large_half = [r[1] for r in by_size[10:]]
    assert sum(large_half) / 10 > sum(small_half) / 10

    # Claim 2: cache mode costs more than non-cache mode (extra lookups)
    # in aggregate.
    assert sum(r[2] for r in rows) > sum(r[1] for r in rows)

    # Claim 4: the participant update stays fast for every page.
    assert all(r[3] < 1.0 for r in rows)


@pytest.mark.parametrize(
    "spec",
    [TABLE1_SITES[1], TABLE1_SITES[4], TABLE1_SITES[12]],
    ids=lambda spec: spec.host,
)
def test_m5_generation_non_cache(benchmark, spec):
    harness = SiteComputeHarness(spec)
    benchmark(lambda: harness.generate(cache_mode=False))


@pytest.mark.parametrize(
    "spec",
    [TABLE1_SITES[1], TABLE1_SITES[4], TABLE1_SITES[12]],
    ids=lambda spec: spec.host,
)
def test_m5_generation_cache(benchmark, spec):
    harness = SiteComputeHarness(spec)
    benchmark(lambda: harness.generate(cache_mode=True))


@pytest.mark.parametrize(
    "spec",
    [TABLE1_SITES[1], TABLE1_SITES[4], TABLE1_SITES[12]],
    ids=lambda spec: spec.host,
)
def test_m6_participant_update(benchmark, spec):
    harness = SiteComputeHarness(spec)
    snippet = harness.make_participant_snippet()
    benchmark(lambda: harness.apply_update(snippet))


def test_generation_reused_across_participants(benchmark):
    """§4.1.2: generation runs once per document state; serving N
    participants reuses the XML.  The per-participant marginal cost is
    the splice of their action queue, benchmarked here."""
    from repro.core.agent import RCBAgent
    from repro.core import MouseMoveAction

    harness = SiteComputeHarness(TABLE1_SITES[4])
    xml = harness.generate(cache_mode=False).xml_text

    benchmark(lambda: RCBAgent._splice_actions(xml, [MouseMoveAction(1, 2)]))
