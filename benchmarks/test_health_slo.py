"""Health monitoring benchmark: SLO verdicts and the flight recorder.

Two runs of the same relayed session (k=2 tree, host mutating once per
sim-second):

* **healthy** — every member keeps up; the SLO engine must report OK
  across the board.
* **injected relay death** — a tier-1 relay dies mid-run, its orphans
  go stale while they back off and re-attach; the SLO engine must
  produce a BREACH naming exactly those members, and the flight
  recorder must hold a black box whose events share trace IDs with the
  tracer's spans.

The observability contract rides along: re-running the breach scenario
with the EventBus/monitor/recorder disabled (tracer held constant) must
carry *exactly* the same wire bytes — events and verdicts are
process-local, never protocol.
"""

import json
import os

from repro.core import CoBrowsingSession
from repro.metrics import render_health_summary
from repro.obs import (
    BREACH,
    OK,
    RELAY_DEATH,
    EventBus,
    FlightRecorder,
    HealthMonitor,
    Tracer,
)
from repro.workloads import build_lan

from conftest import write_result

N = 6
BRANCHING = 2
SITE = "msn.com"
DURATION = 20
FAIL_AT = 3


def run_scenario(observed, fail_relay):
    testbed = build_lan(participants=N)
    sim = testbed.sim
    tracer = Tracer()
    events = EventBus() if observed else None
    session = CoBrowsingSession(
        testbed.host_browser, poll_interval=1.0, tracer=tracer, events=events
    )
    session.fanout_tree(branching=BRANCHING)
    recorder = monitor = None
    if observed:
        recorder = FlightRecorder(events, registry=session.metrics, tracer=tracer)
        monitor = HealthMonitor(session, recorder=recorder)
    outcome = {"tracer": tracer, "recorder": recorder, "monitor": monitor}

    def scenario():
        for browser in testbed.participant_browsers:
            yield from session.join(browser)
        yield from session.host_navigate("http://%s/" % SITE)
        yield from session.wait_until_synced(timeout=60)
        if monitor is not None:
            sim.process(monitor.run())
        for tick in range(DURATION):
            if fail_relay and tick == FAIL_AT:
                victim = sorted(session.agent.participants)[0]
                outcome["victim"] = victim
                outcome["orphans"] = list(session._nodes[victim].children)
                session.fail_relay(victim)
            testbed.host_browser.mutate_document(
                lambda document, tick=tick: document.document_element.set_attribute(
                    "data-health-tick", str(tick)
                )
            )
            yield sim.timeout(1.0)
        if monitor is not None:
            monitor.sample()
            outcome["report"] = monitor.check()

    testbed.run(scenario())
    links = [testbed.host_browser.host.link] + [
        browser.host.link for browser in testbed.participant_browsers
    ]
    outcome["wire_bytes"] = sum(
        link.up.bytes_carried + link.down.bytes_carried for link in links
    )
    session.close()
    return outcome


def test_health_slo_and_flight_recorder(benchmark, results_dir):
    def sweep():
        return {
            "healthy": run_scenario(observed=True, fail_relay=False),
            "breach": run_scenario(observed=True, fail_relay=True),
            "dark": run_scenario(observed=False, fail_relay=True),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    healthy, breach, dark = results["healthy"], results["breach"], results["dark"]

    # Healthy run: OK across every rule and subject.
    healthy_report = healthy["report"]
    assert healthy_report.level == OK
    assert healthy["monitor"].worst_level == OK

    # Breach run: the orphaned members (and only session members) breach.
    monitor = breach["monitor"]
    assert monitor.worst_level == BREACH
    breached = set()
    for report_subject in _all_breached_subjects(monitor):
        breached.add(report_subject)
    assert breached & set(breach["orphans"])

    # The flight recorder captured the incident: the injected relay.death
    # triggered a dump whose events share trace IDs with real spans.
    recorder = breach["recorder"]
    assert recorder.dumps, "relay death must trigger a black box"
    box = recorder.dumps[0]
    assert any(
        event["type"] == RELAY_DEATH for event in box["events"]
    )
    assert box["trace_ids"], "retained events must carry trace correlation"
    span_traces = {span.trace_id for span in breach["tracer"].spans}
    assert set(box["trace_ids"]) <= span_traces
    assert box.get("spans"), "the box embeds the correlated spans"

    # Observability is free when off: identical wire traffic either way.
    assert breach["wire_bytes"] == dark["wire_bytes"]

    lines = [
        "Health/SLO benchmark (%s, LAN, N=%d, k=%d, %ds observed)"
        % (SITE, N, BRANCHING, DURATION),
        "healthy run: %s" % healthy_report.level,
        "breach run:  worst=%s, victim=%s, orphans=%s, breached=%s"
        % (
            monitor.worst_level,
            breach["victim"],
            ",".join(breach["orphans"]),
            ",".join(sorted(breached)),
        ),
        "flight recorder: %d dump(s), first reason %r, %d events, %d trace ids"
        % (
            len(recorder.dumps),
            box["reason"],
            len(box["events"]),
            len(box["trace_ids"]),
        ),
        "wire bytes observed=%d dark=%d (must match)"
        % (breach["wire_bytes"], dark["wire_bytes"]),
        "",
        render_health_summary(breach["report"], title="Breach-run final health"),
    ]
    write_result(results_dir, "health_summary.txt", "\n".join(lines))

    with open(os.path.join(results_dir, "flight_recorder.json"), "w") as handle:
        json.dump(box, handle, indent=1, sort_keys=True)
        handle.write("\n")


def _all_breached_subjects(monitor):
    """Subjects the run ever drove into BREACH (hysteresis state keeps
    them listed even after recovery clears the live verdict)."""
    subjects = []
    for (rule, subject), state in monitor._state.items():
        del rule
        if state[0]:
            subjects.append(subject)
    for verdict in monitor.last_report.breaches():
        if verdict.subject not in subjects:
            subjects.append(verdict.subject)
    return subjects
