"""Ablation: cascaded relay fan-out vs the paper's flat topology.

The flat session (every participant polls the host) puts O(N) content
responses and uplink bytes on the host — the wall the fan-out ablation
(`test_ablate_fanout.py`) measures.  The relay tree caps the host's
share at O(branching): the host serves its direct children, and each
tier re-serves the envelope downward.  This benchmark measures both
topologies at N=64 and then kills a tier-1 relay to show every orphan
resumes receiving updates.
"""

from repro.core import CoBrowsingSession
from repro.workloads import build_lan

from conftest import write_result

N = 64
BRANCHING = 4
SITE = "msn.com"  # a mid-size page


def measure(participants, branching=None):
    testbed = build_lan(participants=participants)
    session = CoBrowsingSession(testbed.host_browser, poll_interval=1.0)
    if branching is not None:
        session.fanout_tree(branching=branching)
    sim = testbed.sim
    outcome = {}

    def scenario():
        members = []
        for browser in testbed.participant_browsers:
            member = yield from session.join(browser)
            members.append(member)
        bytes_before = testbed.host_browser.host.link.up.bytes_carried
        yield from session.host_navigate("http://%s/" % SITE)
        started = sim.now
        yield from session.wait_until_synced(timeout=180)
        outcome["all_synced"] = sim.now - started
        outcome["host_upload_bytes"] = (
            testbed.host_browser.host.link.up.bytes_carried - bytes_before
        )
        outcome["host_content_responses"] = session.agent.stats["content_responses"]
        outcome["host_object_requests"] = session.agent.stats["object_requests"]
        outcome["direct_children"] = len(session.agent.participants)
        if branching is not None:
            outcome["summary"] = session.relay_summary()
            yield from _relay_death(session, sim, members, outcome)

    testbed.run(scenario())
    session.close()
    return outcome


def _relay_death(session, sim, members, outcome):
    """Kill one tier-1 relay; every orphan must resume updates."""
    victim = sorted(session.agent.participants)[0]
    orphan_ids = list(session._nodes[victim].children)
    session.fail_relay(victim)
    yield sim.timeout(30)  # orphans detect the death and re-attach
    session.host_browser.mutate_document(
        lambda document: document.document_element.set_attribute("data-poke", "1")
    )
    yield from session.wait_until_synced(timeout=120)
    orphans = [m for m in members if m.relay_id in orphan_ids]
    outcome["orphans"] = len(orphans)
    outcome["orphans_recovered"] = sum(
        1 for m in orphans if m.doc_time >= session.agent.doc_time
    )
    outcome["reattachments"] = sum(m.stats["reattachments"] for m in orphans)


def test_relay_tree_caps_host_load(benchmark, results_dir):
    def sweep():
        return {
            "flat": measure(N),
            "tree": measure(N, branching=BRANCHING),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    flat, tree = results["flat"], results["tree"]
    summary = tree["summary"]

    lines = [
        "Ablation: flat vs cascaded relay fan-out (%s, LAN, N=%d, k=%d)"
        % (SITE, N, BRANCHING),
        "%-10s %16s %14s %18s %12s"
        % ("topology", "host content", "host upload", "host obj requests", "all synced"),
        "%-10s %16d %14d %18d %11.2fs"
        % (
            "flat",
            flat["host_content_responses"],
            flat["host_upload_bytes"],
            flat["host_object_requests"],
            flat["all_synced"],
        ),
        "%-10s %16d %14d %18d %11.2fs"
        % (
            "tree",
            tree["host_content_responses"],
            tree["host_upload_bytes"],
            tree["host_object_requests"],
            tree["all_synced"],
        ),
        "tree depth %d; relays absorbed %d envelope bytes and %d object requests"
        % (
            summary["depth"],
            summary["relay_content_bytes"],
            summary["relay_object_requests"],
        ),
        "relay death: %d orphans, %d recovered, %d re-attachments"
        % (tree["orphans"], tree["orphans_recovered"], tree["reattachments"]),
    ]
    write_result(results_dir, "ablation_relay.txt", "\n".join(lines))

    # O(N) -> O(branching): the host serves exactly its direct children.
    assert flat["host_content_responses"] == N
    assert tree["direct_children"] == BRANCHING
    assert tree["host_content_responses"] == BRANCHING
    # Host uplink bytes drop by ~N/k; demand at least an 8x reduction.
    assert tree["host_upload_bytes"] * 8 < flat["host_upload_bytes"]
    # Per-participant staleness stays bounded: every tier adds at most a
    # poll interval plus transfer, and the tree is depth ~log_k(N).
    assert summary["depth"] <= 4
    assert tree["all_synced"] <= (summary["depth"] + 1) * 2.0
    # Relay death: every orphan re-attached and resumed updates.
    assert tree["orphans"] > 0
    assert tree["orphans_recovered"] == tree["orphans"]
    assert tree["reattachments"] >= tree["orphans"]
