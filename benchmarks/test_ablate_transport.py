"""Ablation: the coherence-vs-load frontier across transports at N=1k.

Bozdag, Mesbah & van Deursen's push-vs-pull comparison frames Ajax data
delivery as a trade between **data coherence** (how stale a client's
view may get) and **server load** (requests the host absorbs).  This
benchmark reproduces that frontier on the RCB stack with a 1000-member
fleet driving the agent's poll endpoint directly (no network substrate,
so the numbers isolate transport policy, not socket mechanics):

* ``poll``      — the paper's choice: cheapest in requests, worst in
                  staleness (bounded by the poll interval).
* ``longpoll``  — comet: staleness collapses to ~0, requests track the
                  change rate.
* ``push``      — streamed multi-envelope push with a linger tuned to
                  batch two changes per stream: requests halve vs
                  long poll while staleness sits between the extremes.
* ``adaptive``  — everyone starts on poll; the
                  :class:`AdaptiveTransportController` escalates members
                  whose sampled ``staleness_p95`` breaches, and the
                  fleet settles near the frontier's knee on its own.

Writes both a rendered table (``ablation_transport.txt``) and the raw
frontier (``ablation_transport.json``) for the nightly comparison.
"""

import json
import re

from repro.browser import Browser
from repro.core import RCBAgent, PushTransport
from repro.core.transport import (
    AdaptiveTransportController,
    TRANSPORT_HEADER,
)
from repro.html import Text
from repro.http import HttpRequest
from repro.net import LAN_PROFILE, Host, Network
from repro.obs import EventBus
from repro.obs.health import HealthMonitor, default_rules
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite

from conftest import write_result

MEMBERS = 1000
WINDOW = 15.0          # measured portion of the run
WARMUP = 5.0           # excluded: adaptive needs time to settle
CHANGE_INTERVAL = 0.5  # host edits twice a second
POLL_INTERVAL = 1.0
SAMPLE_INTERVAL = 0.25

_DOC_TIME = re.compile(rb"<docTime>(\d+)</docTime>")

PAGE = (
    "<html><head><title>Frontier</title></head><body>"
    "<div id='tick'>tick 0</div>"
    + "".join("<p id='p%d'>paragraph %d</p>" % (i, i) for i in range(6))
    + "</body></html>"
)


def build_host(transport):
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("site.com")
    site.add_page("/", PAGE)
    OriginServer(network, "site.com", site.handle)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    browser = Browser(host_pc, name="host")
    agent = RCBAgent(transport=transport, poll_interval=POLL_INTERVAL)
    agent.install(browser)
    sim.run_until_complete(sim.process(browser.navigate("http://site.com/")))
    return sim, browser, agent


class _FleetSession:
    """The slice of CoBrowsingSession the monitor/controller consume."""

    def __init__(self, sim, agent, acked):
        self.sim = sim
        self.agent = agent
        self.metrics = agent.metrics
        self.events = EventBus()
        self.branching = None
        self._acked = acked

    def member_times(self):
        return dict(self._acked)


def drive_fleet(label, transport, adaptive=False):
    """Run one fleet; return {staleness_p95_ms, requests_per_s, ...}."""
    sim, browser, agent = build_host(transport)
    acked = {}
    member_modes = {}
    requests = {"total": 0, "measured": 0}
    staleness_samples = []

    def member(pid, offset):
        yield sim.timeout(offset)
        acked[pid] = 0
        while True:
            payload = json.dumps(
                {"participant": pid, "timestamp": acked[pid], "actions": []}
            ).encode()
            request = HttpRequest("POST", "/poll", None, payload)
            response = yield from agent._poll_response(request, pid)
            requests["total"] += 1
            if sim.now >= WARMUP:
                requests["measured"] += 1
            granted = response.headers.get(TRANSPORT_HEADER)
            if granted is not None:
                member_modes[pid] = granted
            times = _DOC_TIME.findall(response.body)
            if times:
                acked[pid] = int(times[-1])
            if member_modes[pid] == "poll":
                yield sim.timeout(POLL_INTERVAL)
            else:
                # Held transports re-poll immediately: pacing comes from
                # the server parking the empty-handed request.
                yield sim.timeout(0.0)

    def changes():
        tick = 0
        while True:
            yield sim.timeout(CHANGE_INTERVAL)
            tick += 1
            browser.mutate_document(
                lambda doc, tick=tick: (
                    doc.get_element_by_id("tick").remove_all_children(),
                    doc.get_element_by_id("tick").append_child(
                        Text("tick %d" % tick)
                    ),
                )
            )

    def sampler():
        # Phase-shifted off the change grid: sampling co-timed with a
        # change reads the one-tick-behind state of members whose
        # release is still in that instant's FIFO, quantizing staleness
        # to the change interval.
        yield sim.timeout(0.1)
        while True:
            yield sim.timeout(SAMPLE_INTERVAL)
            if sim.now < WARMUP:
                continue
            host_time = agent.doc_time
            for pid, member_time in acked.items():
                staleness_samples.append(float(max(0, host_time - member_time)))

    controller = None
    if adaptive:
        shim = _FleetSession(sim, agent, acked)
        monitor = HealthMonitor(
            shim,
            events=shim.events,
            rules=default_rules()[:1],  # staleness only
            window=3.0,
            sample_interval=SAMPLE_INTERVAL,
        )
        controller = AdaptiveTransportController(
            shim,
            monitor,
            agent=agent,
            check_interval=0.5,
            dwell=5.0,
            escalate_after=2,
            # Below the workload's staleness quantum (one change interval
            # = 500 ms): every poll-mode member breaches and escalates.
            stale_breach_ms=400.0,
            stale_clear_ms=200.0,
            host_poll_budget=4.0 * MEMBERS / POLL_INTERVAL,
        )

        def control_loop():
            yield sim.timeout(0.1)  # same phase shift as the sampler
            while True:
                yield sim.timeout(SAMPLE_INTERVAL)
                monitor.sample()
                if int(sim.now / SAMPLE_INTERVAL) % 2 == 0:
                    controller.check()

        sim.process(control_loop())

    base_mode = agent.transport.mode
    for index in range(MEMBERS):
        pid = "m%04d" % index
        member_modes[pid] = base_mode
        # Stagger arrivals across one poll interval.
        sim.process(member(pid, (index % 100) * (POLL_INTERVAL / 100.0)))
    sim.process(changes())
    sim.process(sampler())
    sim.run(until=WARMUP + WINDOW)

    staleness_samples.sort()
    p95 = (
        staleness_samples[int(0.95 * len(staleness_samples))]
        if staleness_samples
        else 0.0
    )
    return {
        "mode": label,
        "staleness_p95_ms": round(p95, 3),
        "requests_per_s": round(requests["measured"] / WINDOW, 1),
        "held_polls_open": agent.stats["held_polls_open"],
        "push_envelopes_streamed": agent.stats["push_envelopes_streamed"],
        "transport_switches": agent.stats["transport_switches"],
        "controller_switches": len(controller.switches) if controller else 0,
    }


def test_transport_frontier(benchmark, results_dir):
    def frontier():
        return {
            "poll": drive_fleet("poll", "poll"),
            "longpoll": drive_fleet("longpoll", "longpoll"),
            "push": drive_fleet(
                "push",
                # Linger past one change interval so streams batch two
                # changes per response: half long-poll's request rate.
                PushTransport(max_envelopes=2, stream_linger=0.6),
            ),
            "adaptive": drive_fleet("adaptive", "poll", adaptive=True),
        }

    modes = benchmark.pedantic(frontier, rounds=1, iterations=1)

    artifact = {
        "config": {
            "members": MEMBERS,
            "window_s": WINDOW,
            "warmup_s": WARMUP,
            "change_interval_s": CHANGE_INTERVAL,
            "poll_interval_s": POLL_INTERVAL,
        },
        "modes": modes,
    }
    with open(
        "%s/ablation_transport.json" % results_dir, "w"
    ) as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)

    rows = [
        "Ablation: transport coherence-vs-load frontier (N=%d members)" % MEMBERS,
        "%-10s %18s %14s %10s" % ("mode", "staleness p95", "requests/s", "switches"),
    ]
    for name in ("poll", "longpoll", "push", "adaptive"):
        m = modes[name]
        rows.append(
            "%-10s %16.0fms %14.1f %10d"
            % (
                name,
                m["staleness_p95_ms"],
                m["requests_per_s"],
                m["controller_switches"],
            )
        )
    write_result(results_dir, "ablation_transport.txt", "\n".join(rows))

    poll, longpoll, push, adaptive = (
        modes["poll"], modes["longpoll"], modes["push"], modes["adaptive"],
    )
    # Coherence: both held transports beat interval polling.
    assert longpoll["staleness_p95_ms"] < poll["staleness_p95_ms"]
    assert push["staleness_p95_ms"] < poll["staleness_p95_ms"]
    # Load: interval polling is the cheapest in requests.
    assert poll["requests_per_s"] <= longpoll["requests_per_s"]
    assert poll["requests_per_s"] <= push["requests_per_s"]
    # Push batching showed up on the wire.
    assert push["push_envelopes_streamed"] > 0

    # The adaptive fleet settles near the frontier's knee: the static
    # mode minimizing normalized staleness x requests.
    statics = [poll, longpoll, push]
    max_stale = max(m["staleness_p95_ms"] for m in statics) or 1.0
    max_reqs = max(m["requests_per_s"] for m in statics) or 1.0
    knee = min(
        statics,
        key=lambda m: (m["staleness_p95_ms"] / max_stale)
        * (m["requests_per_s"] / max_reqs),
    )
    assert adaptive["staleness_p95_ms"] <= 1.5 * knee["staleness_p95_ms"] + 100.0
    assert adaptive["requests_per_s"] <= 1.5 * knee["requests_per_s"] + 0.5
    # And it got there by actually switching members: essentially the
    # whole fleet escalated off interval polling.
    assert adaptive["controller_switches"] >= 0.9 * MEMBERS
    assert adaptive["transport_switches"] > 0


def test_longpoll_zero_copy_floor(benchmark, results_dir):
    """Held polls released into a broadcast plan still serve zero-copy:
    the perf-gate floors ``wire_bytes_zero_copy`` under long poll."""

    def serve_held():
        sim, browser, agent = build_host("longpoll")
        done = []

        def member(pid):
            acked = 0
            for _ in range(3):
                payload = json.dumps(
                    {"participant": pid, "timestamp": acked, "actions": []}
                ).encode()
                request = HttpRequest("POST", "/poll", None, payload)
                response = yield from agent._poll_response(request, pid)
                times = _DOC_TIME.findall(response.body)
                if times:
                    acked = int(times[-1])
            done.append(pid)

        for index in range(8):
            sim.process(member("h%d" % index))
        for tick in range(3):
            sim.run(until=sim.now + 0.4)
            browser.mutate_document(
                lambda doc, tick=tick: (
                    doc.get_element_by_id("tick").remove_all_children(),
                    doc.get_element_by_id("tick").append_child(
                        Text("held %d" % tick)
                    ),
                )
            )
        sim.run(until=sim.now + 1.0)
        return agent

    agent = benchmark.pedantic(serve_held, rounds=1, iterations=1)
    zero_copy = agent.stats["wire_bytes_zero_copy"]
    batched = agent.stats["serve_batched_polls"]
    text = "\n".join(
        [
            "Held-poll zero-copy serve (8 members, long poll, 3 releases)",
            "wire_bytes_zero_copy=%d" % zero_copy,
            "serve_batched_polls=%d" % batched,
        ]
    )
    write_result(results_dir, "transport_longpoll_serve.txt", text)
    assert zero_copy > 0
    assert batched > 0
