"""Ablation: HMAC request authentication (paper §3.4).

The paper signs every Ajax-Snippet request with an HMAC over a shared
session secret and argues the cost is small because requests are small.
Measured here: the raw signing/verification compute, the per-request
byte overhead, and the end-to-end impact on synchronization latency.
"""

import json

from repro.core import (
    CoBrowsingSession,
    compute_hmac,
    generate_session_secret,
    sign_request_target,
    verify_request_target,
)
from repro.webserver import OriginServer, StaticSite
from repro.workloads import build_lan

from conftest import write_result

SECRET = "benchmark-session-secret"
POLL_BODY = json.dumps(
    {"participant": "alice", "timestamp": 123456789, "actions": []}
).encode()


def test_hmac_sign_poll_request(benchmark):
    benchmark(lambda: sign_request_target(SECRET, "POST", "/poll", POLL_BODY))


def test_hmac_verify_poll_request(benchmark):
    signed = sign_request_target(SECRET, "POST", "/poll", POLL_BODY)
    benchmark(lambda: verify_request_target(SECRET, "POST", signed, POLL_BODY))


def test_hmac_compute_raw(benchmark):
    benchmark(lambda: compute_hmac(SECRET, "POST", "/poll", POLL_BODY))


def _measure_sync(secret):
    testbed = build_lan(deploy_sites=False)
    site = StaticSite("demo.com")
    site.add_page("/", "<html><head><title>D</title></head><body><p>x</p></body></html>")
    OriginServer(testbed.network, "demo.com", site.handle)
    session = CoBrowsingSession(testbed.host_browser, secret=secret)
    outcome = {}

    def scenario():
        snippet = yield from session.join(testbed.participant_browser)
        yield from session.host_navigate("http://demo.com/")
        waited = yield from session.wait_until_synced()
        outcome["sync_wait"] = waited
        outcome["m2"] = snippet.stats.last_sync_seconds
        session.leave(snippet)

    testbed.run(scenario())
    session.close()
    return outcome


def test_hmac_end_to_end_overhead(benchmark, results_dir):
    def both():
        return _measure_sync(None), _measure_sync(generate_session_secret())

    insecure, secure = benchmark.pedantic(both, rounds=1, iterations=1)

    signed = sign_request_target(SECRET, "POST", "/poll", POLL_BODY)
    byte_overhead = len(signed) - len("/poll")

    text = "\n".join(
        [
            "Ablation: HMAC request authentication",
            "per-request URI overhead: %d bytes" % byte_overhead,
            "M2 without auth: %.4fs   with auth: %.4fs" % (insecure["m2"], secure["m2"]),
        ]
    )
    write_result(results_dir, "ablation_hmac.txt", text)

    # The signature parameter is small (hex sha256 + parameter name)...
    assert byte_overhead < 100
    # ...and authentication does not meaningfully slow synchronization
    # (the paper's "efficiently calculated" claim).
    assert secure["m2"] < insecure["m2"] + 0.05
