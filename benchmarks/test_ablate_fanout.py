"""Ablation: multi-participant fan-out (paper §3.3 / §4.1.2).

Each host supports multiple participants, and "the whole response
content generation procedure is executed only once for each new document
content; the generated XML format response content is reusable for
multiple participant browsers".  This sweep verifies the once-per-state
generation claim and measures how upload traffic and sync latency scale
with the participant count.
"""

from repro.core import CoBrowsingSession
from repro.workloads import build_lan

from conftest import write_result

FANOUTS = (1, 2, 4, 8)
SITE = "msn.com"  # a mid-size page


def measure(participants):
    testbed = build_lan(participants=participants)
    session = CoBrowsingSession(testbed.host_browser, poll_interval=1.0)
    sim = testbed.sim
    outcome = {}

    def scenario():
        snippets = []
        for browser in testbed.participant_browsers:
            snippet = yield from session.join(browser)
            snippets.append(snippet)
        bytes_before = testbed.host_browser.host.link.up.bytes_carried
        yield from session.host_navigate("http://%s/" % SITE)
        started = sim.now
        yield from session.wait_until_synced()
        outcome["all_synced"] = sim.now - started
        outcome["upload_bytes"] = (
            testbed.host_browser.host.link.up.bytes_carried - bytes_before
        )
        outcome["generations"] = session.agent.generation_count
        outcome["content_responses"] = session.agent.stats["content_responses"]
        for snippet in snippets:
            session.leave(snippet)

    testbed.run(scenario())
    session.close()
    return outcome


def test_fanout_sweep(benchmark, results_dir):
    def sweep():
        return {n: measure(n) for n in FANOUTS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation: participant fan-out on one host (%s, LAN, cache mode)" % SITE,
        "%5s %12s %16s %14s %16s"
        % ("N", "generations", "content resp.", "all synced", "upload bytes"),
    ]
    for n in FANOUTS:
        outcome = results[n]
        lines.append(
            "%5d %12d %16d %13.3fs %16d"
            % (
                n,
                outcome["generations"],
                outcome["content_responses"],
                outcome["all_synced"],
                outcome["upload_bytes"],
            )
        )
    write_result(results_dir, "ablation_fanout.txt", "\n".join(lines))

    for n in FANOUTS:
        # The paper's reuse claim: one generation regardless of N...
        assert results[n]["generations"] == 1
        # ...but one content response per participant.
        assert results[n]["content_responses"] == n

    # Upload traffic scales roughly linearly with the fan-out.
    assert results[8]["upload_bytes"] > 6 * results[1]["upload_bytes"]
    # On a 100 Mbps LAN even 8 participants sync within the poll cycle.
    assert results[8]["all_synced"] < 3.0
