"""Ablation: cache-mode granularity (paper §4.1.2).

The paper's suggestion is simple: turn cache mode on in LANs.  It also
notes the agent may mix modes per object.  The interesting regime is the
WAN: small objects are latency-bound (the nearby host wins) while large
objects are bandwidth-bound (the origin's 1.5 Mbps downlink beats the
host's 384 Kbps uplink).  A size-threshold policy should therefore beat
both pure modes on mixed pages.
"""

from repro.core import (
    AlwaysCachePolicy,
    CoBrowsingSession,
    NeverCachePolicy,
    SizeThresholdCachePolicy,
)
from repro.webserver import OriginServer, StaticSite
from repro.workloads import build_wan

from conftest import write_result

#: A page mixing many small icons with a few heavy images.
def _deploy_mixed_site(testbed):
    site = StaticSite("mixed.com")
    icons = "".join('<img src="/icon_%02d.png">' % i for i in range(24))
    photos = "".join('<img src="/photo_%d.jpg">' % i for i in range(3))
    site.add_page(
        "/",
        "<html><head><title>Mixed</title></head><body>%s%s</body></html>"
        % (icons, photos),
    )
    for index in range(24):
        site.add("/icon_%02d.png" % index, "image/png", b"i" * 900)
    for index in range(3):
        site.add("/photo_%d.jpg" % index, "image/jpeg", b"p" * 60000)
    OriginServer(
        testbed.network,
        "mixed.com",
        site.handle,
        processing_delay=lambda request: 0.25 if request.path == "/" else 0.12,
    )


def measure(policy):
    testbed = build_wan(deploy_sites=False)
    _deploy_mixed_site(testbed)
    session = CoBrowsingSession(testbed.host_browser, cache_mode=policy)
    outcome = {}

    def scenario():
        snippet = yield from session.join(testbed.participant_browser)
        yield from session.host_navigate("http://mixed.com/")
        yield from session.wait_until_synced(timeout=600)
        outcome["objects_time"] = snippet.stats.last_objects_seconds
        outcome["from_host"] = sum(
            1 for o in testbed.participant_browser.page.objects if "host-pc:3000" in o.url
        )
        outcome["total"] = len(testbed.participant_browser.page.objects)
        session.leave(snippet)

    testbed.run(scenario())
    session.close()
    return outcome


def test_cache_mode_granularity(benchmark, results_dir):
    def sweep():
        return {
            "non-cache": measure(NeverCachePolicy()),
            "cache": measure(AlwaysCachePolicy()),
            "mixed (<=8KB)": measure(SizeThresholdCachePolicy(max_bytes=8000)),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation: cache-mode granularity on a WAN, mixed icons+photos page",
        "%-16s %16s %18s" % ("policy", "objects time", "objects via host"),
    ]
    for name, outcome in results.items():
        lines.append(
            "%-16s %15.3fs %13d of %2d"
            % (name, outcome["objects_time"], outcome["from_host"], outcome["total"])
        )
    write_result(results_dir, "ablation_cache_mode.txt", "\n".join(lines))

    # All three policies fetched the full object set.
    assert all(o["total"] == 27 for o in results.values())
    assert results["non-cache"]["from_host"] == 0
    assert results["cache"]["from_host"] == 27
    assert results["mixed (<=8KB)"]["from_host"] == 24  # icons only

    # The per-object mixed policy beats both global modes on this page.
    mixed = results["mixed (<=8KB)"]["objects_time"]
    assert mixed < results["non-cache"]["objects_time"]
    assert mixed < results["cache"]["objects_time"]
