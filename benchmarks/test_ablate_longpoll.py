"""Ablation: poll-based synchronization vs push emulation (long poll).

The paper chooses plain polling and explicitly sends empty responses
"to avoid hanging requests" (§4.1.1), rejecting push emulation for its
complexity and reliability cost.  This ablation runs the hanging
variant through the real transport layer (``transport="longpoll"``:
the agent parks empty-handed polls until the document changes) and
measures what the decision traded: long polling achieves near-instant
synchronization with far fewer requests, at the cost of held-open
server state — quantifying the latency the paper's simplicity bought.

The full coherence-vs-load frontier (including streamed push and the
adaptive controller) lives in test_ablate_transport.py; this file keeps
the paper-facing two-variant comparison.
"""

from repro.core import CoBrowsingSession
from repro.webserver import OriginServer, StaticSite
from repro.workloads import build_lan

from conftest import write_result

IDLE_WINDOW = 30.0


def _deploy_demo(testbed):
    site = StaticSite("demo.com")
    site.add_page(
        "/", "<html><head><title>D</title></head><body><div id='tick'>0</div></body></html>"
    )
    OriginServer(testbed.network, "demo.com", site.handle)


def measure(long_poll):
    testbed = build_lan(deploy_sites=False)
    _deploy_demo(testbed)
    session = CoBrowsingSession(
        testbed.host_browser,
        poll_interval=1.0,
        transport="longpoll" if long_poll else "poll",
    )
    sim = testbed.sim
    outcome = {}

    def scenario():
        snippet = yield from session.join(testbed.participant_browser)
        yield from session.host_navigate("http://demo.com/")
        yield from session.wait_until_synced()

        polls_before = session.agent.stats["polls"]
        idle_started = sim.now
        # Mutate mid-window; measure both latency and request count.
        yield sim.timeout(IDLE_WINDOW / 2)
        mutated_at = sim.now
        testbed.host_browser.mutate_document(
            lambda doc: setattr(doc.get_element_by_id("tick"), "inner_html", "1")
        )
        yield from session.wait_until_synced()
        outcome["sync_latency"] = sim.now - mutated_at
        yield sim.timeout(IDLE_WINDOW / 2)
        outcome["polls"] = session.agent.stats["polls"] - polls_before
        outcome["window"] = sim.now - idle_started
        session.leave(snippet)

    testbed.run(scenario())
    session.close()
    return outcome


def test_longpoll_vs_polling(benchmark, results_dir):
    def both():
        return measure(long_poll=False), measure(long_poll=True)

    polling, longpoll = benchmark.pedantic(both, rounds=1, iterations=1)

    text = "\n".join(
        [
            "Ablation: poll-based sync (paper's choice) vs long-poll push emulation",
            "%-12s %16s %20s" % ("variant", "sync latency", "requests in window"),
            "%-12s %15.3fs %20d" % ("polling", polling["sync_latency"], polling["polls"]),
            "%-12s %15.3fs %20d" % ("long-poll", longpoll["sync_latency"], longpoll["polls"]),
        ]
    )
    write_result(results_dir, "ablation_longpoll.txt", text)

    # Long polling delivers the change faster than a polling tick...
    assert longpoll["sync_latency"] < polling["sync_latency"]
    # ...and needs fewer requests over the same window.
    assert longpoll["polls"] < polling["polls"]
    # Plain polling's latency is bounded by the interval, so the paper's
    # "simple and reliable" choice costs at most ~one second.
    assert polling["sync_latency"] < 1.5
