"""Tables 3 & 4: the close-ended questionnaire and its summary.

Human opinions cannot be re-measured, so the responses come from a
quota-exact model calibrated to the paper's reported marginals (see
repro.workloads.usability); the *analysis pipeline* — inversion of the
eight negative Likert items, merging with their positive twins, and the
median / mode / percentage summaries — is real and regenerates Table 4.
"""

from repro.workloads import (
    LIKERT_LEVELS,
    TABLE3_QUESTIONS,
    TABLE4_DISTRIBUTIONS,
    analyze_questionnaire,
    generate_questionnaire_responses,
)

from conftest import write_result


def test_table4_questionnaire_summary(benchmark, results_dir):
    def analyze():
        responses = generate_questionnaire_responses()
        return analyze_questionnaire(responses)

    summaries = benchmark.pedantic(analyze, rounds=1, iterations=1)

    header = "%-5s" + "%22s" * 5 + "%10s %8s"
    lines = [
        "Table 4: summary of the responses to the 16 close-ended questions",
        "(negative items inverted about the neutral mark and merged)",
        header % (("Q",) + LIKERT_LEVELS + ("Median", "Mode")),
    ]
    for summary in summaries:
        lines.append(
            ("%-5s" + "%21.1f%%" * 5 + "%10s %8s")
            % ((summary.question,) + summary.percentages + (summary.median, summary.mode))
        )
    write_result(results_dir, "table4_usability.txt", "\n".join(lines))

    assert len(summaries) == 8
    for summary in summaries:
        # Exact reproduction of the paper's reported distributions.
        assert summary.percentages == TABLE4_DISTRIBUTIONS[summary.question]
        # "The median and mode responses are positive Agree for all the
        # questions." (§5.2.3)
        assert summary.median == "Agree"
        assert summary.mode == "Agree"

    # Derived claims quoted in the running text.
    q1 = next(s for s in summaries if s.question == "Q1")
    assert q1.percentages[3] == 52.5 and q1.percentages[4] == 40.0
    q8 = next(s for s in summaries if s.question == "Q8")
    assert q8.percentages[3] == 55.0 and q8.percentages[4] == 30.0


def test_table3_instrument_round_trip(benchmark, results_dir):
    """Table 3's 16 items: every positive question has an inverted
    negative twin, and the inversion analysis is self-consistent."""
    from repro.workloads import invert_negative_response

    def build():
        lines = ["Table 3: the 16 close-ended questions in four groups"]
        for qid, text in TABLE3_QUESTIONS:
            lines.append("%-6s %s" % (qid, text))
        return "\n".join(lines)

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    write_result(results_dir, "table3_questions.txt", text)

    assert len(TABLE3_QUESTIONS) == 16
    for score in range(1, 6):
        assert invert_negative_response(invert_negative_response(score)) == score
