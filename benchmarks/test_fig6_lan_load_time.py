"""Figure 6: HTML document load time (M1 vs M2) in the LAN environment.

Paper claims: on the 100 Mbps campus LAN, M2 (participant syncs the
document from the host) is below 0.4 s for all 20 sites and much smaller
than M1 (host loads it from the origin server).
"""

from repro.metrics import render_figure_m1_m2, run_experiment

from conftest import write_result

REPETITIONS = 5  # the paper averages five repetitions


def test_fig6_lan_m1_vs_m2(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("lan", cache_mode=True, repetitions=REPETITIONS),
        rounds=1,
        iterations=1,
    )
    rows = result.rows
    assert len(rows) == 20

    write_result(results_dir, "fig6_lan_m1_m2.txt", render_figure_m1_m2(rows, "LAN"))

    # Shape claims (paper §5.1.2, Figure 6).
    assert all(row.m2 < 0.4 for row in rows), "LAN M2 must stay under 0.4 s"
    assert all(row.m2 < row.m1 for row in rows), "LAN M2 must beat M1 on every site"
    # "much smaller": at least 3x on average.
    mean_ratio = sum(row.m1 / row.m2 for row in rows) / len(rows)
    assert mean_ratio > 3.0
