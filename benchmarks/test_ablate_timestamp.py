"""Ablation: the timestamp mechanism (paper §4.1.1).

RCB-Agent keeps a timestamp for the latest content and only answers a
poll with content the participant has not seen.  The baseline disables
this (every poll gets the full envelope).  Measured on an idle session
showing a large page: the timestamp protocol collapses steady-state
traffic to empty keep-alive responses.
"""

from repro.core import CoBrowsingSession
from repro.workloads import build_lan

from conftest import write_result

IDLE_WINDOW = 30.0
SITE = "yahoo.com"  # the second-largest page: worst case for resending


def measure(always_resend):
    testbed = build_lan()
    session = CoBrowsingSession(testbed.host_browser, poll_interval=1.0)
    session.agent.always_resend = always_resend
    sim = testbed.sim
    outcome = {}

    def scenario():
        snippet = yield from session.join(testbed.participant_browser)
        yield from session.host_navigate("http://%s/" % SITE)
        yield from session.wait_until_synced()

        bytes_before = testbed.host_browser.host.link.up.bytes_carried
        responses_before = session.agent.stats["content_responses"]
        yield sim.timeout(IDLE_WINDOW)
        outcome["idle_upload_bytes"] = (
            testbed.host_browser.host.link.up.bytes_carried - bytes_before
        )
        outcome["content_responses"] = (
            session.agent.stats["content_responses"] - responses_before
        )
        session.leave(snippet)

    testbed.run(scenario())
    session.close()
    return outcome


def test_timestamp_dedup_vs_resend(benchmark, results_dir):
    def both():
        return measure(always_resend=False), measure(always_resend=True)

    with_timestamp, resend = benchmark.pedantic(both, rounds=1, iterations=1)

    text = "\n".join(
        [
            "Ablation: timestamp inspection vs resend-on-every-poll (idle session, %s)" % SITE,
            "%-18s %20s %20s" % ("variant", "idle upload bytes", "content responses"),
            "%-18s %20d %20d"
            % ("timestamp (paper)", with_timestamp["idle_upload_bytes"], with_timestamp["content_responses"]),
            "%-18s %20d %20d"
            % ("always resend", resend["idle_upload_bytes"], resend["content_responses"]),
            "saving: %.1fx less idle upload traffic"
            % (resend["idle_upload_bytes"] / max(1, with_timestamp["idle_upload_bytes"])),
        ]
    )
    write_result(results_dir, "ablation_timestamp.txt", text)

    # With timestamps, an idle session sends no content at all.
    assert with_timestamp["content_responses"] == 0
    assert resend["content_responses"] >= IDLE_WINDOW / 1.0 - 2
    # The timestamp protocol saves at least an order of magnitude of
    # steady-state upload traffic on a large page.
    assert resend["idle_upload_bytes"] > 10 * with_timestamp["idle_upload_bytes"]
