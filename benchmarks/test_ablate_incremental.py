"""Ablation: incremental vs from-scratch content generation.

The paper's Fig. 3 pipeline re-clones, re-rewrites and re-serializes
the whole document for every change — O(page) per edit.  The
incremental generator keys on DOM version stamps to rebuild only dirty
subtrees, reusing the previous rewritten clone, its serialized
segments, and its payload-encoded segments.

Workload: a large (~1200-element) catalog page; the host edits one text
node per generation.  Three claims are asserted:

* byte-identity — every incremental envelope equals a from-scratch
  generation of the same state, byte for byte;
* speed — warm incremental generation is >= 5x faster than the full
  pipeline for a single-element edit;
* diff locality — version-guided ``diff_trees`` between consecutive
  canonical snapshots visits O(changed region), not O(page), and skips
  the untouched subtrees by identity/version.
"""

import json
import time

from repro.core import ContentGenerator, diff_trees
from repro.html import parse_document
from repro.net import parse_url

from conftest import write_result

ROWS = 400
EDITS = 30
BASE = parse_url("http://catalog.example.com/inventory")

PAGE = (
    "<html><head><title>Inventory</title>"
    "<link rel='stylesheet' href='/css/site.css'>"
    "<script src='/js/app.js'></script></head>"
    "<body><h1>Catalog</h1>"
    + "".join(
        "<div class='row' id='row-%d'><span class='sku'>SKU-%d</span>"
        "<span class='qty'>%d</span><a href='/item/%d'>detail</a></div>" % (i, i, i, i)
        for i in range(ROWS)
    )
    + "</body></html>"
)


def best_of(callable_, repeats):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def run_ablation():
    document = parse_document(PAGE)
    root = document.document_element
    qty_texts = [
        el.child_nodes[0]
        for el in root.descendant_elements()
        if el.get_attribute("class") == "qty"
    ]
    assert len(qty_texts) == ROWS

    incremental = ContentGenerator()
    scratch = ContentGenerator()

    previous = incremental.generate(
        document, BASE, doc_time=0, mode_key="bench", build_canonical=True
    )
    assert previous.mode == "full"

    diff_stats = {"visited": 0, "skipped": 0, "serialized": 0}
    dirty_total = 0
    reuse_ratios = []
    for step in range(1, EDITS + 1):
        qty_texts[(step * 37) % ROWS].data = "qty %d" % step
        result = incremental.generate(
            document, BASE, doc_time=step, mode_key="bench", build_canonical=True
        )
        assert result.mode == "incremental"
        # Byte-identity: the reused-clone envelope equals a from-scratch run.
        fresh = scratch.generate(document, BASE, doc_time=step)
        assert result.xml_text == fresh.xml_text
        diff_trees(previous.canonical_root, result.canonical_root, stats=diff_stats)
        dirty_total += result.dirty_subtrees
        reuse_ratios.append(result.reuse_ratio)
        previous = result

    # Warm timing: single text edit per generation, best of several runs.
    tick = [1000]

    def incremental_once():
        tick[0] += 1
        qty_texts[tick[0] % ROWS].data = "t %d" % tick[0]
        incremental.generate(
            document, BASE, doc_time=tick[0], mode_key="bench", build_canonical=True
        )

    def full_once():
        scratch.generate(document, BASE, doc_time=9999)

    incremental_seconds = best_of(incremental_once, repeats=15)
    full_seconds = best_of(full_once, repeats=15)

    node_count = 1 + sum(1 for _ in root.descendant_elements())
    return {
        "rows": ROWS,
        "edits": EDITS,
        "element_count": node_count,
        "incremental_seconds": incremental_seconds,
        "full_seconds": full_seconds,
        "speedup": full_seconds / incremental_seconds,
        "mean_dirty_subtrees": dirty_total / EDITS,
        "mean_reuse_ratio": sum(reuse_ratios) / len(reuse_ratios),
        "diff_visited": diff_stats["visited"],
        "diff_skipped": diff_stats["skipped"],
        "diff_serialized": diff_stats["serialized"],
        "generation_throughput_ops": 1.0 / incremental_seconds,
    }


def test_incremental_generation_single_edit(benchmark, results_dir):
    outcome = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    speedup = outcome["speedup"]
    text = "\n".join(
        [
            "Ablation: incremental vs from-scratch generation"
            " (%d-row page, %d single-text edits)" % (ROWS, EDITS),
            "%-28s %14s" % ("variant", "seconds/edit"),
            "%-28s %14.5f" % ("full pipeline", outcome["full_seconds"]),
            "%-28s %14.5f" % ("incremental", outcome["incremental_seconds"]),
            "speedup: %.1fx; mean dirty subtrees %.1f of %d elements;"
            " mean reuse ratio %.3f"
            % (
                speedup,
                outcome["mean_dirty_subtrees"],
                outcome["element_count"],
                outcome["mean_reuse_ratio"],
            ),
            "diff over %d edits: visited %d, skipped %d, serialized %d"
            % (
                outcome["edits"],
                outcome["diff_visited"],
                outcome["diff_skipped"],
                outcome["diff_serialized"],
            ),
            "incremental generation throughput: (%.1f operations/s)"
            % outcome["generation_throughput_ops"],
        ]
    )
    write_result(results_dir, "ablation_incremental.txt", text)
    write_result(results_dir, "ablation_incremental.json", json.dumps(outcome, indent=2))

    # Acceptance: >= 5x faster for single-element edits.
    assert speedup >= 5.0
    # The incremental path really did reuse almost everything.
    assert outcome["mean_dirty_subtrees"] < outcome["element_count"] / 50
    assert outcome["mean_reuse_ratio"] > 0.9
    # The version-guided diff visited O(changed region): per edit a
    # handful of parent pairs, nowhere near the page's element count.
    assert outcome["diff_visited"] < outcome["edits"] * 10
    assert outcome["diff_skipped"] > outcome["edits"] * ROWS * 0.5
    assert outcome["diff_serialized"] < outcome["edits"] * 10
