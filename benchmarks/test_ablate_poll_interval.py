"""Ablation: the polling interval (paper fixes it at one second).

The paper argues 1 s is small enough because users' average think time
per page is about ten seconds (§5.1.1).  This sweep quantifies the
trade-off the choice sits on: smaller intervals cut synchronization
latency but multiply request overhead on the host.
"""

from repro.core import CoBrowsingSession
from repro.webserver import OriginServer, StaticSite
from repro.workloads import build_lan

from conftest import write_result

INTERVALS = (0.1, 0.25, 0.5, 1.0, 2.0, 5.0)
IDLE_WINDOW = 30.0


def _deploy_demo(testbed):
    site = StaticSite("demo.com")
    site.add_page(
        "/",
        "<html><head><title>Demo</title></head>"
        "<body><div id='tick'>0</div></body></html>",
    )
    OriginServer(testbed.network, "demo.com", site.handle)


def measure_interval(interval):
    testbed = build_lan(deploy_sites=False)
    _deploy_demo(testbed)
    session = CoBrowsingSession(testbed.host_browser, poll_interval=interval)
    sim = testbed.sim
    outcome = {}

    def scenario():
        snippet = yield from session.join(testbed.participant_browser)
        yield from session.host_navigate("http://demo.com/")
        yield from session.wait_until_synced()

        # Request overhead: polls during an idle window.
        polls_before = session.agent.stats["polls"]
        yield sim.timeout(IDLE_WINDOW)
        outcome["polls_per_minute"] = (
            (session.agent.stats["polls"] - polls_before) * 60.0 / IDLE_WINDOW
        )

        # Sync latency: host mutates, how long until the participant has it.
        mutated_at = sim.now
        testbed.host_browser.mutate_document(
            lambda doc: setattr(doc.get_element_by_id("tick"), "inner_html", "1")
        )
        yield from session.wait_until_synced()
        outcome["sync_latency"] = sim.now - mutated_at
        session.leave(snippet)

    testbed.run(scenario())
    session.close()
    return outcome


def test_poll_interval_sweep(benchmark, results_dir):
    def sweep():
        return {interval: measure_interval(interval) for interval in INTERVALS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation: Ajax-Snippet polling interval (paper default: 1.0 s)",
        "%10s %16s %18s" % ("interval", "sync latency", "polls per minute"),
    ]
    for interval in INTERVALS:
        outcome = results[interval]
        lines.append(
            "%9.2fs %15.3fs %18.1f"
            % (interval, outcome["sync_latency"], outcome["polls_per_minute"])
        )
    write_result(results_dir, "ablation_poll_interval.txt", "\n".join(lines))

    # Latency grows with the interval...
    assert results[5.0]["sync_latency"] > results[0.1]["sync_latency"]
    # ...and is bounded by roughly one interval plus transfer time.
    for interval in INTERVALS:
        assert results[interval]["sync_latency"] <= interval + 0.5
    # Overhead shrinks as the interval grows.
    assert results[0.1]["polls_per_minute"] > 5 * results[1.0]["polls_per_minute"]
    # The paper's 1 s default keeps sub-second-ish latency at ~1 poll/s.
    assert results[1.0]["sync_latency"] < 1.5
    assert results[1.0]["polls_per_minute"] < 70
