"""Helpers for benchmarking RCB's real compute paths (M5 / M6).

M5 (response content generation) and M6 (participant document update)
are wall-clock metrics of the actual Python implementation, measured on
the same synthetic Table-1 homepages the network experiments use.
"""

from repro.browser import Browser, BrowserCache
from repro.browser.page import Page
from repro.core import AjaxSnippet, ContentGenerator, parse_envelope
from repro.html import parse_document
from repro.net import LAN_PROFILE, Host, Network, parse_url
from repro.sim import Simulator
from repro.webserver import generate_table1_site


class SiteComputeHarness:
    """Everything needed to run generation/update for one site, offline."""

    def __init__(self, spec):
        self.spec = spec
        self.site = generate_table1_site(spec)
        self.base_url = parse_url("http://www.%s/" % spec.host)
        self.document = parse_document(self.site.html)
        self.cache = BrowserCache()
        for path, (content_type, data) in self.site.objects.items():
            self.cache.store(str(self.base_url.replace(path=path)), content_type, data)
        self.generator = ContentGenerator()
        self._envelope = self.generate(cache_mode=False).xml_text

    def generate(self, cache_mode):
        return self.generator.generate(
            self.document,
            self.base_url,
            doc_time=1,
            cache_session=self.cache.open_read_session(),
            cache_mode=cache_mode,
        )

    def make_participant_snippet(self):
        """A snippet wired to a throwaway browser showing the initial page."""
        sim = Simulator()
        network = Network(sim)
        host = Host(network, "bench-host-%d" % id(sim), LAN_PROFILE)
        browser = Browser(host, name="bench-participant")
        initial = parse_document(
            "<html><head><script id='ajax-snippet'></script></head>"
            "<body><p>waiting</p></body></html>"
        )
        browser.page = Page(parse_url("http://agent:3000/"), initial)
        snippet = AjaxSnippet(
            browser, "http://agent:3000/", poll_interval=1.0, fetch_objects=False
        )
        return snippet

    def apply_update(self, snippet):
        """One M6 unit of work: parse the envelope, update the document."""
        content = parse_envelope(self._envelope)
        snippet._apply_update(content)
