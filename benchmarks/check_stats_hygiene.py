#!/usr/bin/env python3
"""Stats-hygiene lint for the CI pipeline.

Every component's statistics live in the central metrics registry
(``repro.obs.registry``) behind :class:`StatsFacade` views.  Disciplined
mutation goes through the facade's ``inc``/``set``/``observe`` methods
(or the instruments directly) — never through dict pokes like::

    self.stats["polls"] += 1          # forbidden
    self.stats["last_sync"] = 0.2     # forbidden
    self.stats.update({...})          # forbidden

Those bypass the registry's typed instruments: the counter still counts,
but histograms are never fed, labels drift, and the next exporter change
silently misses the metric.  This script scans the source tree for such
mutations and exits 1 when any exist outside the facade implementation
itself.

Usage::

    python check_stats_hygiene.py [ROOT]

``ROOT`` defaults to ``src/repro`` next to the repository's benchmarks
directory.  Tests are exempt (they may poke stats to fake states); so is
``repro/obs`` (the facade implements the mapping protocol it guards).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import List, Tuple

#: ``something.stats[...] +=`` / ``-=`` / ``*=`` / plain ``= value``
#: (a lone ``==`` comparison must not match).
MUTATION_PATTERN = re.compile(
    r"\.stats\s*\[[^\]]+\]\s*(\+=|-=|\*=|/=|//=|=(?!=))"
)
#: Bulk dict-style assignment through the facade.
UPDATE_PATTERN = re.compile(r"\.stats\s*\.\s*update\s*\(")

#: Directories (relative to the scanned root) exempt from the lint.
EXEMPT_PARTS = ("obs",)


class HygieneError(Exception):
    """The scanned tree contains direct stats-dict mutations."""


def scan_source(text: str) -> List[Tuple[int, str]]:
    """``(line_number, line)`` for every violating line in ``text``."""
    violations: List[Tuple[int, str]] = []
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("#"):
            continue
        if MUTATION_PATTERN.search(line) or UPDATE_PATTERN.search(line):
            violations.append((number, stripped))
    return violations


def scan_tree(root: str) -> List[str]:
    """Human-readable violation records for every ``.py`` under ``root``."""
    records: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        relative = os.path.relpath(dirpath, root)
        parts = [] if relative == "." else relative.split(os.sep)
        if any(part in EXEMPT_PARTS for part in parts):
            dirnames[:] = []
            continue
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path) as handle:
                text = handle.read()
            for number, line in scan_source(text):
                records.append("%s:%d: %s" % (path, number, line))
    return records


def default_root() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(os.path.dirname(here), "src", "repro")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "root",
        nargs="?",
        default=None,
        help="source tree to scan (default: src/repro next to benchmarks/)",
    )
    args = parser.parse_args(argv)
    root = args.root if args.root is not None else default_root()
    if not os.path.isdir(root):
        print("stats hygiene: no such directory %r" % root, file=sys.stderr)
        return 1
    records = scan_tree(root)
    if records:
        print(
            "stats hygiene: %d direct stats mutation(s) bypass the metrics "
            "registry facade (use stats.inc/set/observe):" % len(records),
            file=sys.stderr,
        )
        for record in records:
            print("  " + record, file=sys.stderr)
        return 1
    print("stats hygiene: clean (%s)" % root)
    return 0


if __name__ == "__main__":
    sys.exit(main())
