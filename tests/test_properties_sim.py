"""Property-based tests: kernel ordering, link model, protocol invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.net import LAN_PROFILE, WAN_HOME_PROFILE, Host, Network
from repro.net.link import DirectionalChannel
from repro.sim import Simulator, Store


# -- kernel ordering -------------------------------------------------------------


@settings(max_examples=100)
@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=30))
def test_events_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []

    def waiter(delay):
        yield sim.timeout(delay)
        fired.append(sim.now)

    for delay in delays:
        sim.process(waiter(delay))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(max_examples=100)
@given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=30))
def test_fifo_among_equal_times(delays):
    """Processes scheduled for the same instant run in creation order."""
    sim = Simulator()
    fired = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        fired.append((sim.now, tag))

    for tag, delay in enumerate(delays):
        sim.process(waiter(float(delay), tag))
    sim.run()
    for time_value in set(delay for delay in delays):
        tags_at = [tag for when, tag in fired if when == float(time_value)]
        assert tags_at == sorted(tags_at)


@settings(max_examples=60)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_simulation_is_deterministic(seed):
    """Two runs of the same randomized process graph produce identical
    event traces."""

    def build_and_run():
        rng = random.Random(seed)
        sim = Simulator()
        trace = []

        def worker(worker_id):
            for step in range(rng.randint(1, 5)):
                yield sim.timeout(rng.uniform(0, 10))
                trace.append((round(sim.now, 9), worker_id, step))

        for worker_id in range(rng.randint(1, 6)):
            sim.process(worker(worker_id))
        sim.run()
        return trace

    assert build_and_run() == build_and_run()


@settings(max_examples=100)
@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=40))
def test_store_preserves_fifo_order(items):
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer():
        for item in items:
            yield store.put(("item", item))

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value[1])

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == list(items)


# -- link model ---------------------------------------------------------------------


@settings(max_examples=100)
@given(
    st.integers(min_value=0, max_value=10**7),
    st.integers(min_value=0, max_value=10**7),
)
def test_serialization_delay_monotone_in_size(a, b):
    small, large = sorted((a, b))
    sim_one = Simulator()
    channel_one = DirectionalChannel(sim_one, 1e6)
    sim_two = Simulator()
    channel_two = DirectionalChannel(sim_two, 1e6)
    assert channel_one.serialization_delay(small) <= channel_two.serialization_delay(large)


@settings(max_examples=100)
@given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=10))
def test_queued_transfers_sum_exactly(sizes):
    """Back-to-back sends on one channel serialize: total busy time is
    exactly the sum of individual serialization times."""
    sim = Simulator()
    channel = DirectionalChannel(sim, 1e6)
    total = 0.0
    for size in sizes:
        total = channel.serialization_delay(size)
    expected = sum(size * 8.0 / 1e6 for size in sizes)
    assert abs(total - expected) < 1e-9
    assert channel.bytes_carried == sum(sizes)


@settings(max_examples=60)
@given(st.integers(min_value=1, max_value=10**6))
def test_transfer_delay_at_least_bottleneck(nbytes):
    sim = Simulator()
    network = Network(sim)
    a = Host(network, "a", WAN_HOME_PROFILE, segment="home-a")
    b = Host(network, "b", WAN_HOME_PROFILE, segment="home-b")
    delay = network.transfer_delay(a, b, nbytes)
    bottleneck = nbytes * 8.0 / WAN_HOME_PROFILE.up_bps
    assert delay >= bottleneck
    assert delay >= network.propagation_latency(a, b)


# -- protocol invariant: participant converges to host state ---------------------------


@settings(max_examples=15, deadline=None)
@given(st.lists(st.sampled_from(["mutate", "wait", "navigate"]), min_size=1, max_size=8),
       st.integers(min_value=0, max_value=2**31 - 1))
def test_participant_converges_after_any_operation_sequence(operations, seed):
    """Whatever interleaving of host mutations, navigations, and idle
    waits occurs, once the host settles the participant's rendered text
    equals the host's (the timestamp protocol never wedges)."""
    from repro.browser import Browser
    from repro.core import CoBrowsingSession
    from repro.webserver import OriginServer, StaticSite

    rng = random.Random(seed)
    sim = Simulator()
    network = Network(sim)
    site = StaticSite("s.com")
    site.add_page("/", "<html><head><title>A</title></head><body><p id='x'>0</p></body></html>")
    site.add_page("/b", "<html><head><title>B</title></head><body><p id='x'>b</p></body></html>")
    OriginServer(network, "s.com", site.handle)
    hb = Browser(Host(network, "h", LAN_PROFILE, segment="lan"), name="h")
    pb = Browser(Host(network, "p", LAN_PROFILE, segment="lan"), name="p")
    session = CoBrowsingSession(hb, poll_interval=0.2)

    def scenario():
        yield from session.join(pb)
        yield from session.host_navigate("http://s.com/")
        for operation in operations:
            if operation == "mutate":
                value = rng.randint(0, 999)
                hb.mutate_document(
                    lambda doc, value=value: setattr(
                        doc.get_element_by_id("x"), "inner_html", str(value)
                    )
                )
            elif operation == "navigate":
                target = rng.choice(["http://s.com/", "http://s.com/b"])
                yield from session.host_navigate(target)
            else:
                yield sim.timeout(rng.uniform(0, 0.5))
        yield from session.wait_until_synced()

    sim.run_until_complete(sim.process(scenario()), limit=1e6)
    assert pb.page.document.body.text_content == hb.page.document.body.text_content
    assert pb.page.document.title == hb.page.document.title
    session.close()
