"""Tests for the M1-M6 metrics, experiment harness, and report rendering."""

import pytest

from repro.metrics import (
    ExperimentResult,
    SiteMeasurement,
    average_measurements,
    bar,
    render_figure_m1_m2,
    render_figure_m3_m4,
    render_relay_summary,
    render_shape_checks,
    render_table1,
    render_trace_summary,
    run_experiment,
    run_round,
)
from repro.obs import MetricsRegistry, Tracer
from repro.webserver import TABLE1_SITES


def row(site="a.com", m1=1.0, m2=0.5, m3=None, m4=0.1, m5=0.01, m6=0.02, cache=True, kb=50.0):
    return SiteMeasurement(site, kb, m1, m2, m3, m4, m5, m6, cache)


class TestAveraging:
    def test_average_of_identical_rows(self):
        averaged = average_measurements([row(), row()])
        assert averaged.m1 == 1.0
        assert averaged.m4 == 0.1

    def test_average_mixes_values(self):
        averaged = average_measurements([row(m1=1.0), row(m1=3.0)])
        assert averaged.m1 == 2.0

    def test_none_metrics_skipped(self):
        averaged = average_measurements([row(m3=None), row(m3=None)])
        assert averaged.m3 is None

    def test_mixed_sites_rejected(self):
        with pytest.raises(ValueError):
            average_measurements([row(site="a.com"), row(site="b.com")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_measurements([])

    def test_as_dict(self):
        data = row().as_dict()
        assert data["site"] == "a.com"
        assert data["m1"] == 1.0


SAMPLE_SITES = TABLE1_SITES[:3]


class TestHarness:
    def test_round_produces_row_per_site(self):
        rows = run_round("lan", cache_mode=True, sites=SAMPLE_SITES)
        assert [r.site for r in rows] == [s.host for s in SAMPLE_SITES]
        for r in rows:
            assert r.m1 > 0
            assert r.m2 > 0
            assert r.m4 is not None and r.m4 > 0
            assert r.m3 is None
            assert r.m5 > 0
            assert r.m6 > 0

    def test_non_cache_round_records_m3(self):
        rows = run_round("lan", cache_mode=False, sites=SAMPLE_SITES)
        for r in rows:
            assert r.m3 is not None and r.m3 > 0
            assert r.m4 is None

    def test_unknown_environment_rejected(self):
        with pytest.raises(ValueError):
            run_round("satellite", sites=SAMPLE_SITES)

    def test_lan_m2_beats_m1(self):
        rows = run_round("lan", cache_mode=True, sites=SAMPLE_SITES)
        assert all(r.m2 < r.m1 for r in rows)

    def test_wan_slower_than_lan(self):
        lan = run_round("lan", cache_mode=True, sites=SAMPLE_SITES)
        wan = run_round("wan", cache_mode=True, sites=SAMPLE_SITES)
        for lan_row, wan_row in zip(lan, wan):
            assert wan_row.m2 > lan_row.m2
            assert wan_row.m1 > lan_row.m1

    def test_rounds_are_deterministic(self):
        first = run_round("lan", cache_mode=True, sites=SAMPLE_SITES)
        second = run_round("lan", cache_mode=True, sites=SAMPLE_SITES)
        for a, b in zip(first, second):
            assert a.m1 == b.m1
            assert a.m2 == b.m2
            assert a.m4 == b.m4

    def test_experiment_result_helpers(self):
        rows = run_round("lan", cache_mode=True, sites=SAMPLE_SITES)
        result = ExperimentResult("lan", True, rows)
        assert set(result.by_site()) == {s.host for s in SAMPLE_SITES}
        assert result.sites_where(lambda r: r.m2 < r.m1) == [r.site for r in rows]

    def test_distribution_without_registry_is_none(self):
        result = ExperimentResult("lan", True, [row()])
        assert result.distribution("m5_seconds") is None

    def test_experiment_registry_keeps_raw_m5_m6_observations(self):
        result = run_experiment(
            "lan", cache_mode=True, repetitions=2, sites=SAMPLE_SITES
        )
        m5 = result.distribution("m5_seconds")
        m6 = result.distribution("m6_seconds")
        # One raw observation per site per round survives the averaging.
        assert m5.count == len(SAMPLE_SITES) * 2
        assert m6.count == len(SAMPLE_SITES) * 2
        assert 0.0 < m5.p50 <= m5.p99
        assert result.distribution("no_such_metric") is None

    def test_experiment_accepts_a_session_tracer(self):
        tracer = Tracer()
        run_experiment("lan", cache_mode=True, repetitions=1, sites=SAMPLE_SITES[:1], tracer=tracer)
        names = {span.name for span in tracer.spans}
        assert "host.generate" in names
        assert "snippet.apply" in names


class TestReportRendering:
    def test_bar_scales(self):
        assert bar(1.0, 1.0, width=10) == "#" * 10
        assert bar(0.5, 1.0, width=10) == "#" * 5
        assert bar(5.0, 1.0, width=10) == "#" * 10  # clamped

    def test_figure_m1_m2_contains_sites(self):
        rows = [row(site="x.com"), row(site="y.com", m1=2.0)]
        text = render_figure_m1_m2(rows, "lan")
        assert "x.com" in text and "y.com" in text
        assert "M2 < M1 on 2 of 2 sites" in text

    def test_figure_m3_m4_gain(self):
        non_cache = [row(site="x.com", m3=1.0, m4=None, cache=False)]
        cache = [row(site="x.com", m3=None, m4=0.25)]
        text = render_figure_m3_m4(non_cache, cache, "lan")
        assert "4.00x" in text
        assert "M4 < M3 on 1 of 1 sites" in text

    def test_table1_lists_sizes(self):
        non_cache = [row(m3=1.0, m4=None, cache=False, kb=130.3)]
        cache = [row(kb=130.3)]
        text = render_table1(non_cache, cache)
        assert "130.3" in text
        assert "M5 non-cache" in text

    def test_shape_checks_pass_fail(self):
        text = render_shape_checks({"claim a": True, "claim b": False})
        assert "[PASS] claim a" in text
        assert "[FAIL] claim b" in text

    def test_table1_distribution_block(self):
        non_cache = [row(m3=1.0, m4=None, cache=False)]
        cache = [row()]
        histogram = MetricsRegistry().histogram("m5_seconds")
        for value in (0.01, 0.02, 0.1):
            histogram.observe(value)
        text = render_table1(
            non_cache, cache, {"M5 non-cache": histogram, "M6": None}
        )
        assert "Distributions over raw per-site observations" in text
        assert "p95" in text and "p99" in text
        assert "0.0200s" in text  # the p50 of the three observations
        assert "M6" not in text.split("Distributions")[1]  # None rows skipped

    def test_table1_without_distributions_is_unchanged(self):
        non_cache = [row(m3=1.0, m4=None, cache=False)]
        text = render_table1(non_cache, [row()])
        assert "Distributions" not in text

    def test_relay_summary_tier_percentile_columns(self):
        summary = {
            "members": 3,
            "branching": 2,
            "depth": 1,
            "host_polls": 40,
            "host_content_bytes": 1000,
            "relay_content_bytes": 3000,
            "tiers": {
                1: {
                    "nodes": 3,
                    "polls": 40,
                    "content_bytes": 4000,
                    "mean_sync_seconds": 0.2,
                    "sync_p50": 0.150,
                    "sync_p95": 0.950,
                    "sync_p99": 0.990,
                }
            },
        }
        text = render_relay_summary(summary)
        assert "p50 (s)" in text and "p95 (s)" in text and "p99 (s)" in text
        assert "0.150" in text
        assert "0.950" in text
        assert "0.990" in text

    def test_trace_summary_renders_tree_and_stage_percentiles(self):
        tracer = Tracer()
        root = tracer.start_span("host.generate", t=0.0, node="bob")
        root.finish(0.0)
        serve = tracer.start_span(
            "host.serve", t=0.1, parent=root, node="bob", kind="full"
        )
        serve.finish(0.3)
        tracer.start_span("snippet.apply", t=0.4, parent=serve, node="p0").finish(0.5)
        text = render_trace_summary(tracer)
        lines = text.splitlines()
        assert "Trace summary: 3 spans in 1 traces" in lines[0]
        generate_line = next(i for i, l in enumerate(lines) if "host.generate" in l)
        serve_line = next(i for i, l in enumerate(lines) if "host.serve" in l)
        # Children render indented beneath their parents.
        indent = lambda i: len(lines[i]) - len(lines[i].lstrip())  # noqa: E731
        assert generate_line < serve_line
        assert indent(serve_line) > indent(generate_line)
        assert "Per-stage sim-time durations:" in text
        assert "snippet.apply" in text.split("Per-stage")[1]

    def test_trace_summary_handles_empty_and_overflow(self):
        assert render_trace_summary([]) == "Trace summary: no spans recorded"
        tracer = Tracer()
        for _ in range(4):
            tracer.start_span("host.generate", t=0.0, node="bob").finish(0.0)
        text = render_trace_summary(tracer, max_traces=2)
        assert "2 more traces not shown" in text

    def test_trace_summary_accepts_a_plain_span_iterable(self):
        tracer = Tracer()
        tracer.start_span("host.generate", t=0.0, node="bob").finish(0.0)
        assert "host.generate" in render_trace_summary(tracer.spans)
