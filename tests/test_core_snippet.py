"""Unit tests for Ajax-Snippet details: update semantics, handlers,
action queueing, presence, and hostile-input robustness."""

import pytest

from repro.browser import Browser
from repro.browser.page import Page
from repro.core import (
    AjaxSnippet,
    ClickAction,
    CoBrowsingSession,
    HeadChild,
    MouseMoveAction,
    NewContent,
    PresenceAction,
    SubmitAction,
    TopElement,
)
from repro.html import Element, parse_document
from repro.net import LAN_PROFILE, Host, Network, parse_url
from repro.sim import Simulator
from repro.webserver import OriginServer, StaticSite


def offline_snippet(browser_type="firefox"):
    sim = Simulator()
    network = Network(sim)
    host = Host(network, "p-pc", LAN_PROFILE)
    browser = Browser(host, name="p")
    browser.page = Page(
        parse_url("http://agent:3000/"),
        parse_document(
            "<html><head><script id='ajax-snippet'></script></head>"
            "<body><p>waiting</p></body></html>"
        ),
    )
    snippet = AjaxSnippet(
        browser, "http://agent:3000/", poll_interval=1.0,
        browser_type=browser_type, fetch_objects=False,
    )
    snippet._register_handlers()
    return browser, snippet


def content(head=None, tops=None, **kwargs):
    return NewContent(100, head or [], tops or [], **kwargs)


class TestApplyUpdate:
    def test_snippet_script_always_survives(self):
        browser, snippet = offline_snippet()
        snippet._apply_update(
            content(
                head=[HeadChild("title", [], "New")],
                tops=[TopElement("body", [], "<p>new body</p>")],
            )
        )
        script = browser.page.document.get_element_by_id("ajax-snippet")
        assert script is not None
        assert script.parent.tag == "head"
        assert browser.page.document.title == "New"

    def test_snippet_script_recreated_if_missing(self):
        browser, snippet = offline_snippet()
        # A hostile host page update could have removed the marker.
        for node in list(browser.page.document.head.child_nodes):
            browser.page.document.head.remove_child(node)
        snippet._apply_update(content(tops=[TopElement("body", [], "x")]))
        assert browser.page.document.get_element_by_id("ajax-snippet") is not None

    def test_body_attributes_replaced_not_merged(self):
        browser, snippet = offline_snippet()
        snippet._apply_update(
            content(tops=[TopElement("body", [("class", "first"), ("id", "b1")], "x")])
        )
        snippet._apply_update(content(tops=[TopElement("body", [("class", "second")], "y")]))
        body = browser.page.document.body
        assert body.get_attribute("class") == "second"
        assert body.get_attribute("id") is None

    def test_ie_mode_produces_same_document_as_firefox(self):
        update = content(
            head=[
                HeadChild("title", [], "T"),
                HeadChild("style", [("type", "text/css")], "p { color: red }"),
            ],
            tops=[TopElement("body", [("class", "c")], "<div id='d'>v</div>")],
        )
        firefox_browser, firefox_snippet = offline_snippet("firefox")
        ie_browser, ie_snippet = offline_snippet("ie")
        firefox_snippet._apply_update(update)
        ie_snippet._apply_update(update)
        from repro.html import serialize_document

        assert serialize_document(firefox_browser.page.document) == serialize_document(
            ie_browser.page.document
        )

    def test_version_bumped(self):
        browser, snippet = offline_snippet()
        before = browser.page.version
        snippet._apply_update(content(tops=[TopElement("body", [], "x")]))
        assert browser.page.version == before + 1

    def test_invalid_browser_type_rejected(self):
        browser, _snippet = offline_snippet()
        with pytest.raises(ValueError):
            AjaxSnippet(browser, "http://agent:3000/", browser_type="netscape")

    def test_relative_agent_url_rejected(self):
        browser, _snippet = offline_snippet()
        with pytest.raises(ValueError):
            AjaxSnippet(browser, "/relative")


class TestHandlers:
    def test_rcb_submit_queues_and_cancels(self):
        browser, snippet = offline_snippet()
        form = Element("form", {"data-rcbref": "form:0", "onsubmit": "return rcbSubmit(this)"})
        field = Element("input", {"type": "text", "name": "q", "value": "laptop"})
        form.append_child(field)
        browser.page.document.body.append_child(form)
        outcome = browser.page.scripts.invoke_attribute("return rcbSubmit(this)", form)
        assert outcome is False
        assert snippet._outgoing == [SubmitAction("form:0", {"q": "laptop"})]

    def test_rcb_click_queues_and_cancels(self):
        browser, snippet = offline_snippet()
        anchor = Element("a", {"data-rcbref": "a:2", "href": "http://x.com/"})
        browser.page.document.body.append_child(anchor)
        outcome = browser.page.scripts.invoke_attribute("return rcbClick(this)", anchor)
        assert outcome is False
        assert snippet._outgoing == [ClickAction("a:2")]

    def test_rcb_input_uses_enclosing_form_ref(self):
        browser, snippet = offline_snippet()
        form = Element("form", {"data-rcbref": "form:1"})
        field = Element("input", {"type": "text", "name": "city", "value": "NY"})
        form.append_child(field)
        browser.page.document.body.append_child(form)
        browser.page.scripts.invoke_attribute("rcbInput(this)", field)
        (action,) = snippet._outgoing
        assert action.form_ref == "form:1"
        assert action.fields == {"city": "NY"}

    def test_rcb_input_outside_form_is_noop(self):
        browser, snippet = offline_snippet()
        field = Element("input", {"type": "text", "name": "orphan"})
        browser.page.document.body.append_child(field)
        browser.page.scripts.invoke_attribute("rcbInput(this)", field)
        assert snippet._outgoing == []

    def test_click_without_ref_is_noop(self):
        browser, snippet = offline_snippet()
        anchor = Element("a", {"href": "/x"})
        browser.page.document.body.append_child(anchor)
        browser.page.scripts.invoke_attribute("return rcbClick(this)", anchor)
        assert snippet._outgoing == []

    def test_report_helpers_queue(self):
        _browser, snippet = offline_snippet()
        snippet.report_mouse_move(3, 4)
        snippet.report_scroll(120)
        assert len(snippet._outgoing) == 2


class TestPresenceEndToEnd:
    def test_participants_receive_roster_updates(self):
        sim = Simulator()
        network = Network(sim)
        site = StaticSite("s.com")
        site.add_page("/", "<html><head><title>S</title></head><body>x</body></html>")
        OriginServer(network, "s.com", site.handle)
        hb = Browser(Host(network, "h-pc", LAN_PROFILE, segment="lan"), name="h")
        first_pb = Browser(Host(network, "p1-pc", LAN_PROFILE, segment="lan"), name="p1")
        second_pb = Browser(Host(network, "p2-pc", LAN_PROFILE, segment="lan"), name="p2")
        session = CoBrowsingSession(hb)
        session.agent.announce_presence = True

        def scenario():
            first = yield from session.join(first_pb, participant_id="p1")
            yield from session.host_navigate("http://s.com/")
            yield from session.wait_until_synced()
            second = yield from session.join(second_pb, participant_id="p2")
            yield sim.timeout(3)
            return first, second

        first, _second = sim.run_until_complete(sim.process(scenario()))
        presences = [
            a for a in first.stats.actions_received if isinstance(a, PresenceAction)
        ]
        assert presences, "first participant never heard about the second"
        assert presences[-1].participants == ["p1", "p2"]

    def test_presence_from_participant_is_ignored(self):
        """A hostile participant cannot spoof roster updates through the
        action channel — the agent drops non-appliable kinds."""
        sim = Simulator()
        network = Network(sim)
        site = StaticSite("s.com")
        site.add_page("/", "<html><head></head><body>x</body></html>")
        OriginServer(network, "s.com", site.handle)
        hb = Browser(Host(network, "h-pc", LAN_PROFILE, segment="lan"), name="h")
        pb = Browser(Host(network, "p-pc", LAN_PROFILE, segment="lan"), name="p")
        session = CoBrowsingSession(hb)

        def scenario():
            snippet = yield from session.join(pb, participant_id="p")
            yield from session.host_navigate("http://s.com/")
            yield from session.wait_until_synced()
            snippet.queue_action(PresenceAction(["fake", "roster"]))
            yield from snippet.flush()
            yield sim.timeout(1)

        sim.run_until_complete(sim.process(scenario()))
        assert session.agent.stats["action_errors"] == 1
        assert session.agent.roster() == ["p"]

    def test_stale_reference_does_not_crash_agent(self):
        sim = Simulator()
        network = Network(sim)
        site = StaticSite("s.com")
        site.add_page("/", "<html><head></head><body><a href='/x'>l</a></body></html>")
        OriginServer(network, "s.com", site.handle)
        hb = Browser(Host(network, "h-pc", LAN_PROFILE, segment="lan"), name="h")
        pb = Browser(Host(network, "p-pc", LAN_PROFILE, segment="lan"), name="p")
        session = CoBrowsingSession(hb)

        def scenario():
            snippet = yield from session.join(pb, participant_id="p")
            yield from session.host_navigate("http://s.com/")
            yield from session.wait_until_synced()
            snippet.queue_action(ClickAction("a:99"))  # stale/bogus
            yield from snippet.flush()
            yield sim.timeout(1)
            # Session still works.
            hb.mutate_document(lambda doc: doc.body.append_child(doc.create_element("div")))
            yield from session.wait_until_synced()

        sim.run_until_complete(sim.process(scenario()))
        assert session.agent.stats["action_errors"] == 1


class TestActionOnlyEnvelopes:
    def test_action_only_update_does_not_touch_dom(self):
        sim = Simulator()
        network = Network(sim)
        site = StaticSite("s.com")
        site.add_page("/", "<html><head><title>S</title></head><body>stable</body></html>")
        OriginServer(network, "s.com", site.handle)
        hb = Browser(Host(network, "h-pc", LAN_PROFILE, segment="lan"), name="h")
        first_pb = Browser(Host(network, "p1-pc", LAN_PROFILE, segment="lan"), name="p1")
        second_pb = Browser(Host(network, "p2-pc", LAN_PROFILE, segment="lan"), name="p2")
        session = CoBrowsingSession(hb)

        def scenario():
            first = yield from session.join(first_pb, participant_id="p1")
            second = yield from session.join(second_pb, participant_id="p2")
            yield from session.host_navigate("http://s.com/")
            yield from session.wait_until_synced()
            version_before = second_pb.page.version
            first.report_mouse_move(9, 9)
            yield from first.flush()
            yield sim.timeout(3)
            return second, version_before

        second, version_before = sim.run_until_complete(sim.process(scenario()))
        moves = [a for a in second.stats.actions_received if isinstance(a, MouseMoveAction)]
        assert moves
        # The mirror arrived via an action-only envelope: no DOM churn.
        assert second_pb.page.version == version_before
        assert second.stats.action_only_updates >= 1
