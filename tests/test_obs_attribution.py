"""Tests for wire-byte cost attribution: records, rollups, rendering."""

import json

from repro.obs import (
    PAYLOAD_BUCKETS,
    ByteAttribution,
    render_attribution_table,
)


class TestResponseAttribution:
    def test_framing_is_the_residual(self):
        sink = ByteAttribution()
        record = sink.begin("host", "m1", "full", 3, {"head": 40, "body": 100})
        assert record.payload_bytes == 140
        record.finalize(5.0, 200)
        assert record.buckets["framing"] == 60
        assert sum(record.buckets.values()) == record.shipped == 200

    def test_zero_framing_adds_no_bucket(self):
        sink = ByteAttribution()
        record = sink.begin("host", "m1", "delta", 4, {"delta": 64})
        record.finalize(1.0, 64)
        assert "framing" not in record.buckets

    def test_empty_response_is_pure_framing(self):
        sink = ByteAttribution()
        record = sink.begin("host", "m1", "empty", 4)
        record.finalize(1.0, 87)
        assert record.buckets == {"framing": 87}

    def test_finalize_feeds_the_sink(self):
        sink = ByteAttribution()
        sink.begin("host", "m1", "full", 1, {"body": 10}).finalize(1.0, 30)
        assert sink.responses == 1
        assert sink.total_bytes == 30
        assert sink.totals == {"body": 10, "framing": 20}


class TestByteAttributionRollups:
    def feed(self, sink):
        sink.begin("host", "m1", "full", 1, {"head": 5, "body": 20}).finalize(1.0, 40)
        sink.begin("host", "m1", "delta", 2, {"delta": 8}).finalize(2.0, 20)
        sink.begin("r1", "m2", "full", 2, {"head": 5, "body": 20}).finalize(2.0, 40)

    def test_per_member_and_totals(self):
        sink = ByteAttribution()
        self.feed(sink)
        assert sink.member_bytes("m1") == 60
        assert sink.member_bytes("m2") == 40
        assert sink.total_bytes == 100
        assert sink.totals["head"] == 10
        assert sink.per_kind == {"full": 80, "delta": 20}

    def test_per_doc_state(self):
        sink = ByteAttribution()
        self.feed(sink)
        assert sum(sink.per_doc_state[2].values()) == 60

    def test_tier_resolution(self):
        tiers = {"m1": 1, "m2": 2}
        sink = ByteAttribution(tier_of=tiers.get)
        self.feed(sink)
        assert sum(sink.per_tier["tier:1"].values()) == 60
        assert sum(sink.per_tier["tier:2"].values()) == 40

    def test_unresolvable_member_lands_in_unknown_tier(self):
        sink = ByteAttribution(tier_of=lambda member: None)
        self.feed(sink)
        assert set(sink.per_tier) == {"?"}

    def test_top_members_ranking_and_tie_break(self):
        sink = ByteAttribution()
        sink.begin("host", "b", "full", 1, {}).finalize(1.0, 50)
        sink.begin("host", "a", "full", 1, {}).finalize(1.0, 50)
        sink.begin("host", "c", "full", 1, {}).finalize(1.0, 99)
        assert sink.top_members(2) == [("c", 99), ("a", 50)]
        assert sink.top_members() == [("c", 99), ("a", 50), ("b", 50)]

    def test_top_tiers(self):
        tiers = {"m1": 1, "m2": 2}
        sink = ByteAttribution(tier_of=tiers.get)
        self.feed(sink)
        assert sink.top_tiers() == [("tier:1", 60), ("tier:2", 40)]

    def test_to_dict_is_json_ready(self):
        sink = ByteAttribution()
        self.feed(sink)
        document = json.loads(json.dumps(sink.to_dict()))
        assert document["responses"] == 3
        assert document["total_bytes"] == 100
        assert document["per_member"]["m1"]["delta"] == 8
        assert document["per_doc_state"]["2"]


class TestMemberRates:
    def test_rates_cover_only_the_window(self):
        sink = ByteAttribution(window=10.0)
        sink.begin("host", "m1", "full", 1, {}).finalize(1.0, 1000)  # outside
        sink.begin("host", "m1", "full", 2, {}).finalize(95.0, 300)
        sink.begin("host", "m1", "full", 3, {}).finalize(99.0, 200)
        rates = sink.member_rates(100.0)
        assert rates["m1"] == 50.0  # (300 + 200) / 10s

    def test_idle_member_rate_decays_to_zero(self):
        sink = ByteAttribution(window=10.0)
        sink.begin("host", "m1", "full", 1, {}).finalize(1.0, 500)
        assert sink.member_rates(100.0) == {"m1": 0.0}


class TestRenderTable:
    def test_empty_sink(self):
        assert "(no attributed responses)" in render_attribution_table(ByteAttribution())

    def test_table_has_total_row_and_used_buckets_only(self):
        sink = ByteAttribution()
        sink.begin("host", "m1", "full", 1, {"head": 5, "body": 20}).finalize(1.0, 40)
        text = render_attribution_table(sink)
        lines = text.splitlines()
        header = lines[2]
        assert "head" in header and "body" in header and "framing" in header
        assert "delta" not in header  # unused payload buckets stay hidden
        assert lines[-1].startswith("TOTAL")
        assert "40" in lines[-1]

    def test_limit_caps_member_rows(self):
        sink = ByteAttribution()
        for index in range(8):
            sink.begin("host", "m%d" % index, "full", 1, {}).finalize(1.0, 10 + index)
        text = render_attribution_table(sink, limit=3)
        lines = text.splitlines()
        member_rows = lines[3:-1]  # between the header and the TOTAL row
        assert len(member_rows) == 3
        assert member_rows[0].startswith("m7")  # costliest first

    def test_payload_bucket_taxonomy_is_stable(self):
        assert PAYLOAD_BUCKETS == ("head", "body", "delta", "userActions", "docCookies")
