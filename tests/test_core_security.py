"""Tests for session secrets and HMAC request authentication."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AuthError,
    HMAC_PARAM,
    compute_hmac,
    generate_session_secret,
    sign_request_target,
    strip_hmac_param,
    verify_request_target,
)


class TestSecretGeneration:
    def test_default_length(self):
        assert len(generate_session_secret()) == 20

    def test_deterministic_with_seeded_rng(self):
        a = generate_session_secret(rng=random.Random(42))
        b = generate_session_secret(rng=random.Random(42))
        assert a == b

    def test_distinct_without_seed_collision(self):
        a = generate_session_secret(rng=random.Random(1))
        b = generate_session_secret(rng=random.Random(2))
        assert a != b

    def test_minimum_length_enforced(self):
        with pytest.raises(ValueError):
            generate_session_secret(length=4)


class TestSignVerify:
    SECRET = "topsecret-session-key"

    def test_sign_appends_param(self):
        signed = sign_request_target(self.SECRET, "POST", "/poll", b"{}")
        assert signed.startswith("/poll?" + HMAC_PARAM + "=")

    def test_sign_uses_ampersand_when_query_present(self):
        signed = sign_request_target(self.SECRET, "GET", "/obj?key=x")
        assert "&" + HMAC_PARAM + "=" in signed

    def test_verify_round_trip(self):
        signed = sign_request_target(self.SECRET, "POST", "/poll", b"body")
        unsigned = verify_request_target(self.SECRET, "POST", signed, b"body")
        assert unsigned == "/poll"

    def test_verify_preserves_original_query(self):
        signed = sign_request_target(self.SECRET, "GET", "/obj?key=abc")
        assert verify_request_target(self.SECRET, "GET", signed) == "/obj?key=abc"

    def test_missing_signature_rejected(self):
        with pytest.raises(AuthError):
            verify_request_target(self.SECRET, "GET", "/poll")

    def test_wrong_secret_rejected(self):
        signed = sign_request_target(self.SECRET, "POST", "/poll", b"x")
        with pytest.raises(AuthError):
            verify_request_target("other-secret-key", "POST", signed, b"x")

    def test_tampered_body_rejected(self):
        signed = sign_request_target(self.SECRET, "POST", "/poll", b"original")
        with pytest.raises(AuthError):
            verify_request_target(self.SECRET, "POST", signed, b"tampered")

    def test_tampered_target_rejected(self):
        signed = sign_request_target(self.SECRET, "GET", "/obj?key=a")
        tampered = signed.replace("key=a", "key=b")
        with pytest.raises(AuthError):
            verify_request_target(self.SECRET, "GET", tampered)

    def test_tampered_method_rejected(self):
        signed = sign_request_target(self.SECRET, "GET", "/obj?key=a")
        with pytest.raises(AuthError):
            verify_request_target(self.SECRET, "POST", signed)

    def test_single_byte_signature_flip_rejected(self):
        signed = sign_request_target(self.SECRET, "POST", "/poll", b"x")
        flipped = signed[:-1] + ("0" if signed[-1] != "0" else "1")
        with pytest.raises(AuthError):
            verify_request_target(self.SECRET, "POST", flipped, b"x")

    def test_strip_hmac_param(self):
        assert strip_hmac_param("/p") == ("/p", None)
        assert strip_hmac_param("/p?a=1") == ("/p?a=1", None)
        target, sig = strip_hmac_param("/p?a=1&%s=deadbeef" % HMAC_PARAM)
        assert target == "/p?a=1"
        assert sig == "deadbeef"

    def test_hmac_is_deterministic(self):
        first = compute_hmac(self.SECRET, "GET", "/x", b"b")
        second = compute_hmac(self.SECRET, "GET", "/x", b"b")
        assert first == second
        assert len(first) == 64  # hex sha256

    @settings(max_examples=100)
    @given(
        st.text(min_size=8, max_size=30, alphabet="abcdefgh0123"),
        st.sampled_from(["GET", "POST"]),
        st.text(min_size=1, max_size=40, alphabet="abcdef/?=&_"),
        st.binary(max_size=100),
    )
    def test_verify_sign_property(self, secret, method, target, body):
        target = "/" + target.lstrip("/")
        signed = sign_request_target(secret, method, target, body)
        # Signing then verifying recovers the original target exactly
        # (modulo empty-query normalisation, which our targets avoid).
        unsigned = verify_request_target(secret, method, signed, body)
        stripped, _sig = strip_hmac_param(signed)
        assert unsigned == stripped
