"""Unit tests for URL parsing and relative resolution."""

import pytest

from repro.net import UrlError, parse_url, resolve_url


class TestParsing:
    def test_absolute_http(self):
        url = parse_url("http://example.com/index.html")
        assert url.scheme == "http"
        assert url.host == "example.com"
        assert url.port is None
        assert url.effective_port == 80
        assert url.path == "/index.html"
        assert url.is_absolute

    def test_https_default_port(self):
        url = parse_url("https://secure.example.com/")
        assert url.scheme == "https"
        assert url.effective_port == 443

    def test_explicit_port(self):
        url = parse_url("http://host-pc:3000/")
        assert url.host == "host-pc"
        assert url.port == 3000
        assert url.effective_port == 3000

    def test_query_and_fragment(self):
        url = parse_url("http://a.com/search?q=laptop&page=2#results")
        assert url.path == "/search"
        assert url.query == "q=laptop&page=2"
        assert url.fragment == "results"

    def test_request_target_includes_query(self):
        url = parse_url("http://a.com/search?q=x")
        assert url.request_target() == "/search?q=x"

    def test_request_target_defaults_to_root(self):
        assert parse_url("http://a.com").request_target() == "/"

    def test_relative_path(self):
        url = parse_url("images/logo.png")
        assert not url.is_absolute
        assert url.scheme is None
        assert url.host is None
        assert url.path == "images/logo.png"

    def test_root_relative_path(self):
        url = parse_url("/css/site.css")
        assert not url.is_absolute
        assert url.path == "/css/site.css"

    def test_network_path_reference(self):
        url = parse_url("//cdn.example.com/lib.js")
        assert url.scheme is None
        assert url.host == "cdn.example.com"
        assert url.path == "/lib.js"

    def test_host_is_lowercased(self):
        assert parse_url("http://EXAMPLE.com/A").host == "example.com"

    def test_case_preserved_in_path(self):
        assert parse_url("http://example.com/A/B").path == "/A/B"

    def test_bad_port_rejected(self):
        with pytest.raises(UrlError):
            parse_url("http://a.com:notaport/")
        with pytest.raises(UrlError):
            parse_url("http://a.com:99999/")

    def test_empty_host_rejected(self):
        with pytest.raises(UrlError):
            parse_url("http:///path")

    def test_unsupported_scheme_rejected(self):
        with pytest.raises(UrlError):
            parse_url("ftp:stuff")

    def test_non_string_rejected(self):
        with pytest.raises(UrlError):
            parse_url(None)

    def test_str_round_trip(self):
        for text in [
            "http://example.com/",
            "http://example.com/a/b?x=1#frag",
            "https://h:8443/p",
            "/relative/path?q=2",
            "images/x.png",
        ]:
            assert str(parse_url(text)) == text

    def test_default_port_elided_in_str(self):
        assert str(parse_url("http://a.com:80/x")) == "http://a.com/x"

    def test_origin(self):
        assert parse_url("http://a.com/x").origin == "http://a.com"
        assert parse_url("http://a.com:3000/x").origin == "http://a.com:3000"
        with pytest.raises(UrlError):
            parse_url("/x").origin


class TestEquality:
    def test_equal_ignoring_default_port(self):
        assert parse_url("http://a.com/x") == parse_url("http://a.com:80/x")

    def test_unequal_paths(self):
        assert parse_url("http://a.com/x") != parse_url("http://a.com/y")

    def test_hashable(self):
        urls = {parse_url("http://a.com/x"), parse_url("http://a.com:80/x")}
        assert len(urls) == 1

    def test_replace(self):
        url = parse_url("http://a.com/x")
        replaced = url.replace(path="/y")
        assert replaced.path == "/y"
        assert replaced.host == "a.com"
        assert url.path == "/x"  # original untouched


class TestResolution:
    BASE = parse_url("http://a.com/b/c/d?q=1")

    def resolve(self, reference):
        return str(resolve_url(self.BASE, parse_url(reference)))

    def test_absolute_reference_wins(self):
        assert self.resolve("http://x.org/p") == "http://x.org/p"

    def test_simple_relative(self):
        assert self.resolve("g") == "http://a.com/b/c/g"

    def test_relative_with_subdir(self):
        assert self.resolve("g/h") == "http://a.com/b/c/g/h"

    def test_root_relative(self):
        assert self.resolve("/g") == "http://a.com/g"

    def test_network_path(self):
        assert self.resolve("//other.com/g") == "http://other.com/g"

    def test_query_only(self):
        assert self.resolve("?y=2") == "http://a.com/b/c/d?y=2"

    def test_fragment_only(self):
        assert self.resolve("#frag") == "http://a.com/b/c/d?q=1#frag"

    def test_dot_segment(self):
        assert self.resolve("./g") == "http://a.com/b/c/g"

    def test_dotdot_segment(self):
        assert self.resolve("../g") == "http://a.com/b/g"

    def test_double_dotdot(self):
        assert self.resolve("../../g") == "http://a.com/g"

    def test_dotdot_beyond_root_clamps(self):
        assert self.resolve("../../../../g") == "http://a.com/g"

    def test_trailing_slash_preserved(self):
        assert self.resolve("g/") == "http://a.com/b/c/g/"

    def test_empty_reference_keeps_base(self):
        assert self.resolve("") == "http://a.com/b/c/d?q=1"

    def test_base_must_be_absolute(self):
        with pytest.raises(UrlError):
            resolve_url(parse_url("/rel"), parse_url("x"))

    def test_resolution_result_is_absolute(self):
        resolved = resolve_url(self.BASE, parse_url("../img/logo.png"))
        assert resolved.is_absolute
        assert resolved.origin == "http://a.com"
