"""Tests for the cookie-replication extension (paper §4.1.2 extension)."""


from repro.browser import Browser
from repro.core import CoBrowsingSession, NewContent, build_envelope, parse_envelope
from repro.net import LAN_PROFILE, Host, Network
from repro.sim import Simulator
from repro.webserver import SHOP_HOST, ShopService


def build_world():
    sim = Simulator()
    network = Network(sim)
    shop = ShopService(network)
    host_pc = Host(network, "host-pc", LAN_PROFILE, segment="campus")
    part_pc = Host(network, "part-pc", LAN_PROFILE, segment="campus")
    hb = Browser(host_pc, name="bob")
    pb = Browser(part_pc, name="alice")
    return sim, network, shop, hb, pb


def run(sim, generator):
    return sim.run_until_complete(sim.process(generator))


class TestEnvelopeCookies:
    def test_round_trip(self):
        content = NewContent(
            5,
            cookies_json='[{"name": "s", "value": "1", "host": "a.com", "path": "/"}]',
        )
        parsed = parse_envelope(build_envelope(content))
        assert parsed.cookies_json == content.cookies_json

    def test_empty_cookies_elided(self):
        xml = build_envelope(NewContent(5))
        assert "docCookies" not in xml
        assert parse_envelope(xml).cookies_json == "[]"

    def test_old_envelopes_still_parse(self):
        xml = (
            "<newContent><docTime>1</docTime><docContent><docHead></docHead>"
            "</docContent><userActions><![CDATA[%5B%5D]]></userActions></newContent>"
        )
        assert parse_envelope(xml).cookies_json == "[]"


class TestReplicationOff:
    def test_default_does_not_replicate(self):
        sim, _network, _shop, hb, pb = build_world()
        session = CoBrowsingSession(hb)

        def scenario():
            yield from session.join(pb)
            yield from session.host_navigate("http://%s/" % SHOP_HOST)
            yield from session.wait_until_synced()

        run(sim, scenario())
        assert hb.cookie_jar.get(SHOP_HOST, "shopsession") is not None
        assert pb.cookie_jar.get(SHOP_HOST, "shopsession") is None


class TestReplicationOn:
    def test_participant_receives_host_session_cookie(self):
        sim, _network, shop, hb, pb = build_world()
        session = CoBrowsingSession(hb)
        session.agent.replicate_cookies = True

        def scenario():
            yield from session.join(pb)
            yield from session.host_navigate("http://%s/" % SHOP_HOST)
            yield from session.wait_until_synced()

        run(sim, scenario())
        host_cookie = hb.cookie_jar.get(SHOP_HOST, "shopsession")
        assert host_cookie is not None
        assert pb.cookie_jar.get(SHOP_HOST, "shopsession") == host_cookie

    def test_replicated_session_shared_at_origin(self):
        """With replication, the participant's own origin fetches ride
        the host's shop session — the shop sees one session even when the
        participant contacts it directly (non-cache mode)."""
        sim, _network, shop, hb, pb = build_world()
        session = CoBrowsingSession(hb, cache_mode=False)
        session.agent.replicate_cookies = True

        def scenario():
            yield from session.join(pb)
            yield from session.host_navigate("http://%s/item/mba-13-128" % SHOP_HOST)
            yield from session.wait_until_synced()
            # The participant now hits the shop directly with the cookie.
            page = yield from pb.navigate("http://%s/" % SHOP_HOST)
            return page

        run(sim, scenario())
        assert shop.session_count() == 1

    def test_malformed_cookie_payload_ignored(self):
        from repro.core import AjaxSnippet
        from repro.browser.page import Page
        from repro.html import parse_document
        from repro.net import parse_url

        sim = Simulator()
        network = Network(sim)
        host = Host(network, "x-pc", LAN_PROFILE)
        browser = Browser(host, name="x")
        browser.page = Page(
            parse_url("http://agent:3000/"),
            parse_document("<html><head><script id='ajax-snippet'></script></head><body></body></html>"),
        )
        snippet = AjaxSnippet(browser, "http://agent:3000/", poll_interval=1.0)
        for bad in ("{not json", '["no-dict"]', '[{"name": "n"}]'):
            snippet._apply_replicated_cookies(NewContent(1, cookies_json=bad))
        assert len(browser.cookie_jar) == 0
